"""Structured errors for the mining API.

Every error the public API raises deliberately derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause.  Each class *also* inherits the closest stdlib
exception (``ValueError`` for bad parameters, ``TypeError`` for bad
engine options), so code written against the pre-1.1 API — which raised
plain ``ValueError`` — keeps working unchanged.

Hierarchy::

    ReproError (Exception)
    ├── InvalidConfigError (+ ValueError)     bad MiningConfig field
    │   └── InvalidSupportError               bad support / confidence value
    ├── UnknownAlgorithmError (+ ValueError)  name not in the registry
    ├── EngineOptionError (+ TypeError)       option the engine rejects
    ├── TransportError                        partition-transport layer
    │   └── PartitionFormatError (+ ValueError)  descriptor version mismatch
    ├── StateError                            incremental mining state
    │   ├── StateVersionError (+ ValueError)  on-disk state version skew
    │   └── StateMismatchError (+ ValueError) state does not cover the run
    ├── QueryError                            MINE query front-end
    │   ├── QueryParseError (+ ValueError)    syntax/semantic error with position
    │   └── PlanError (+ ValueError)          no executable plan for the query
    └── ServeError                            mining-as-a-service layer
        ├── ProtocolError (+ ValueError)      malformed serve request
        ├── UnknownDatasetError (+ LookupError)  dataset not hosted
        ├── ServerBusyError                   request queue at capacity
        ├── ServerDrainingError               server is shutting down
        ├── RequestTimeoutError (+ TimeoutError)  per-request deadline hit
        └── WorkerCrashError                  work lost to a crashed worker

The serve family carries a ``status`` attribute — the HTTP-ish status
code the protocol layer answers with — so the transport never has to
maintain its own exception-to-status table.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "EngineOptionError",
    "IngestError",
    "InvalidConfigError",
    "InvalidSupportError",
    "PartitionFormatError",
    "PlanError",
    "ProtocolError",
    "QueryError",
    "QueryParseError",
    "ReproError",
    "RequestTimeoutError",
    "ServeError",
    "ServerBusyError",
    "ServerDrainingError",
    "StateError",
    "StateMismatchError",
    "StateVersionError",
    "TransportError",
    "UnknownAlgorithmError",
    "UnknownDatasetError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of every error raised by the repro mining API."""


class InvalidConfigError(ReproError, ValueError):
    """A :class:`~repro.config.MiningConfig` field failed validation."""


class InvalidSupportError(InvalidConfigError):
    """Minimum support or confidence is outside its legal range.

    Attributes
    ----------
    parameter:
        ``"minimum_support"`` or ``"minimum_confidence"``.
    value:
        The offending value, verbatim.
    """

    def __init__(self, parameter: str, value: object, requirement: str) -> None:
        self.parameter = parameter
        self.value = value
        super().__init__(f"{parameter} must be {requirement}; got {value!r}")


class IngestError(ReproError, ValueError):
    """Streaming ingest rejected the input (see :mod:`repro.data.ingest`).

    Raised when a chunked source violates the streaming contract —
    rows not grouped by ascending ``trans_id``, a ``trans_id`` group
    reappearing after it was flushed — conditions the whole-file
    readers tolerate (they buffer everything and can regroup) but a
    bounded-memory single pass cannot.  The message names the
    offending ``trans_id`` and points at the whole-file path as the
    fallback for unsorted data.
    """


class UnknownAlgorithmError(ReproError, ValueError):
    """The requested algorithm name is not in the engine registry.

    Attributes
    ----------
    algorithm:
        The unknown name as requested.
    known:
        The registered engine names at the time of the lookup.
    """

    def __init__(self, algorithm: str, known: Iterable[str]) -> None:
        self.algorithm = algorithm
        self.known = tuple(sorted(known))
        choices = ", ".join(self.known)
        super().__init__(
            f"unknown algorithm {algorithm!r}; choose from: {choices}"
        )


class EngineOptionError(ReproError, TypeError):
    """An engine was handed an option it does not accept.

    Raised *before* the engine runs, so a typo never costs a mining pass.

    Attributes
    ----------
    engine:
        Name of the engine that rejected the options.
    options:
        The rejected option names.
    accepted:
        The option names the engine does accept.
    """

    def __init__(
        self,
        engine: str,
        options: Iterable[str],
        accepted: Iterable[str],
    ) -> None:
        self.engine = engine
        self.options = tuple(sorted(options))
        self.accepted = tuple(sorted(accepted))
        rejected = ", ".join(self.options)
        legal = ", ".join(self.accepted) or "(none)"
        super().__init__(
            f"engine {engine!r} does not accept option(s) {rejected}; "
            f"accepted options: {legal}"
        )


class TransportError(ReproError):
    """A partition-transport failure (shared memory, mmap, descriptors)."""


class PartitionFormatError(TransportError, ValueError):
    """A :class:`~repro.core.partitioning.Partition` pickle carried an
    unknown descriptor version.

    Raised *instead of* a garbled unpickle when work units from a
    different library version land in a mixed-version worker pool —
    the receiving side refuses the state outright and names both
    versions, so the operator sees a deployment-skew problem, not a
    corrupt-data one.

    Attributes
    ----------
    expected:
        The descriptor version this process writes and reads.
    found:
        The version carried by the rejected pickle (``None`` when the
        state predates versioning entirely).
    """

    def __init__(self, expected: int, found: object) -> None:
        self.expected = expected
        self.found = found
        origin = (
            "a pre-versioning release"
            if found is None
            else f"descriptor version {found!r}"
        )
        super().__init__(
            f"Partition pickle from {origin} cannot be read by this "
            f"process (expects version {expected}); all pool members "
            "must run the same library version"
        )


class StateError(ReproError):
    """A failure in the materialized incremental-mining state layer
    (:mod:`repro.core.incremental`)."""


class StateVersionError(StateError, ValueError):
    """A saved :class:`~repro.core.incremental.MiningState` carried an
    unknown on-disk format version.

    Raised *instead of* a garbled load when state written by a different
    library version is opened — the reader refuses outright and names
    both versions, so the operator sees a deployment-skew problem (clear
    or rebuild the state directory), not a corrupt-data one.

    Attributes
    ----------
    expected:
        The state format version this process writes and reads.
    found:
        The version carried by the rejected state (``None`` when the
        manifest predates versioning entirely).
    """

    def __init__(self, expected: int, found: object) -> None:
        self.expected = expected
        self.found = found
        origin = (
            "a pre-versioning release"
            if found is None
            else f"state version {found!r}"
        )
        super().__init__(
            f"mining state from {origin} cannot be read by this process "
            f"(expects version {expected}); clear the state directory to "
            "rebuild it from scratch"
        )


class StateMismatchError(StateError, ValueError):
    """Saved mining state does not cover the requested delta run.

    Raised when the dataset is not an append-extension of the dataset
    the state was mined from (fewer transactions, a diverging base
    prefix, items missing from the catalog) or when the run's config
    identity (support threshold semantics, ``max_length``) differs from
    the one the state was built under.  Delta counts merged across
    mismatched runs would be silently wrong, so the engine refuses;
    clearing the state directory forces a full re-mine that rebuilds it.
    """


class QueryError(ReproError):
    """A failure in the ``MINE`` query front-end (:mod:`repro.query`).

    Both concrete subclasses carry ``status = 400``: a query that does
    not parse or cannot be planned is always the *request's* fault, so
    the serve layer answers it as a client error.
    """

    status = 400


class QueryParseError(QueryError, ValueError):
    """A ``MINE`` query failed to lex, parse, or validate.

    Every parser-side failure — an unexpected character, a misplaced
    token, a semantic violation like ``lhs HAS`` on an ``ITEMSETS``
    query — raises exactly this class, carrying the offending position,
    so callers (and the grammar fuzzer) never see a bare exception.

    Attributes
    ----------
    position:
        0-based character offset of the offending token in the query
        text (``None`` only when the query text itself was missing).
    line, column:
        1-based position of the same spot, as rendered in the message.
    found:
        What the parser actually saw there, as a short display string
        (e.g. ``"'WHERE'"`` or ``"end of query"``).
    """

    def __init__(
        self,
        message: str,
        *,
        position: int | None = None,
        line: int | None = None,
        column: int | None = None,
        found: str | None = None,
    ) -> None:
        self.position = position
        self.line = line
        self.column = column
        self.found = found
        where = (
            f" at line {line}, column {column}"
            if line is not None and column is not None
            else ""
        )
        super().__init__(f"{message}{where}")


class PlanError(QueryError, ValueError):
    """A parsed ``MINE`` query admits no executable plan.

    Raised by the planner — never mid-mine — when the query names an
    unknown dataset or engine, or demands a capability combination no
    registered engine provides.  The message names what was required
    and what the registry offers.
    """


class ServeError(ReproError):
    """Base class of mining-as-a-service errors (:mod:`repro.serve`).

    Attributes
    ----------
    status:
        The HTTP status code the protocol layer maps this error to.
    """

    status = 500


class ProtocolError(ServeError, ValueError):
    """A serve request was structurally malformed (not a mining failure)."""

    status = 400


class UnknownDatasetError(ServeError, LookupError):
    """The requested dataset is not hosted by this server.

    Attributes
    ----------
    dataset:
        The unknown dataset name as requested.
    known:
        The dataset names the server does host.
    """

    status = 404

    def __init__(self, dataset: str, known: Iterable[str] = ()) -> None:
        self.dataset = dataset
        self.known = tuple(sorted(known))
        hosted = ", ".join(self.known) or "(none)"
        super().__init__(
            f"unknown dataset {dataset!r}; hosted datasets: {hosted}"
        )


class ServerBusyError(ServeError):
    """The bounded request queue is full — admission control rejected.

    This is back-pressure, not failure: the client should retry later
    (or against a replica).  ``queue_depth`` is the configured bound the
    request bounced off.
    """

    status = 429

    def __init__(
        self, message: str | None = None, *, queue_depth: int | None = None
    ) -> None:
        self.queue_depth = queue_depth
        if message is None:
            bound = "" if queue_depth is None else f" (depth {queue_depth})"
            message = f"server busy: request queue is full{bound}"
        super().__init__(message)


class ServerDrainingError(ServeError):
    """The server is draining: finishing in-flight work, accepting nothing."""

    status = 503

    def __init__(self, message: str | None = None) -> None:
        super().__init__(
            message or "server is draining and not accepting new requests"
        )


class RequestTimeoutError(ServeError, TimeoutError):
    """A request exceeded its (per-request or server-default) deadline."""

    status = 504

    def __init__(
        self,
        message: str | None = None,
        *,
        timeout_seconds: float | None = None,
    ) -> None:
        self.timeout_seconds = timeout_seconds
        if message is None:
            deadline = (
                "" if timeout_seconds is None else f" of {timeout_seconds:g}s"
            )
            message = f"request exceeded its deadline{deadline}"
        super().__init__(message)


class WorkerCrashError(ServeError):
    """A request was lost to crashed workers even after requeueing.

    Attributes
    ----------
    attempts:
        How many executions were attempted before giving up.
    """

    status = 500

    def __init__(
        self, message: str | None = None, *, attempts: int | None = None
    ) -> None:
        self.attempts = attempts
        if message is None:
            tries = "" if attempts is None else f" after {attempts} attempts"
            message = f"request failed on crashed workers{tries}"
        super().__init__(message)
