"""Structured errors for the mining API.

Every error the public API raises deliberately derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause.  Each class *also* inherits the closest stdlib
exception (``ValueError`` for bad parameters, ``TypeError`` for bad
engine options), so code written against the pre-1.1 API — which raised
plain ``ValueError`` — keeps working unchanged.

Hierarchy::

    ReproError (Exception)
    ├── InvalidConfigError (+ ValueError)     bad MiningConfig field
    │   └── InvalidSupportError               bad support / confidence value
    ├── UnknownAlgorithmError (+ ValueError)  name not in the registry
    └── EngineOptionError (+ TypeError)       option the engine rejects
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "EngineOptionError",
    "InvalidConfigError",
    "InvalidSupportError",
    "ReproError",
    "UnknownAlgorithmError",
]


class ReproError(Exception):
    """Base class of every error raised by the repro mining API."""


class InvalidConfigError(ReproError, ValueError):
    """A :class:`~repro.config.MiningConfig` field failed validation."""


class InvalidSupportError(InvalidConfigError):
    """Minimum support or confidence is outside its legal range.

    Attributes
    ----------
    parameter:
        ``"minimum_support"`` or ``"minimum_confidence"``.
    value:
        The offending value, verbatim.
    """

    def __init__(self, parameter: str, value: object, requirement: str) -> None:
        self.parameter = parameter
        self.value = value
        super().__init__(f"{parameter} must be {requirement}; got {value!r}")


class UnknownAlgorithmError(ReproError, ValueError):
    """The requested algorithm name is not in the engine registry.

    Attributes
    ----------
    algorithm:
        The unknown name as requested.
    known:
        The registered engine names at the time of the lookup.
    """

    def __init__(self, algorithm: str, known: Iterable[str]) -> None:
        self.algorithm = algorithm
        self.known = tuple(sorted(known))
        choices = ", ".join(self.known)
        super().__init__(
            f"unknown algorithm {algorithm!r}; choose from: {choices}"
        )


class EngineOptionError(ReproError, TypeError):
    """An engine was handed an option it does not accept.

    Raised *before* the engine runs, so a typo never costs a mining pass.

    Attributes
    ----------
    engine:
        Name of the engine that rejected the options.
    options:
        The rejected option names.
    accepted:
        The option names the engine does accept.
    """

    def __init__(
        self,
        engine: str,
        options: Iterable[str],
        accepted: Iterable[str],
    ) -> None:
        self.engine = engine
        self.options = tuple(sorted(options))
        self.accepted = tuple(sorted(accepted))
        rejected = ", ".join(self.options)
        legal = ", ".join(self.accepted) or "(none)"
        super().__init__(
            f"engine {engine!r} does not accept option(s) {rejected}; "
            f"accepted options: {legal}"
        )
