"""A bounded request queue with admission control and crash requeue.

The scheduler is the serve layer's back-pressure valve.  Client handler
threads :meth:`~RequestScheduler.submit` callables; a fixed set of
worker threads drains the queue.  Three deliberate policies:

* **Admission control** — the queue is bounded (``queue_depth``).  A
  request arriving while the queue is full is rejected *immediately*
  with :class:`~repro.errors.ServerBusyError` rather than queued
  unboundedly: under overload the server sheds load instead of growing
  latency (and memory) without bound.
* **Deadlines** — every submission carries a timeout (per-request or
  the server default).  A submitter whose deadline passes gets
  :class:`~repro.errors.RequestTimeoutError`; the task itself is marked
  abandoned so a later crash of it is not retried on nobody's behalf.
* **Requeue-or-fail** — a task that fails with a *retryable* exception
  (the service classifies dead-pool signatures; ``pool_map`` evicts the
  broken pool, so the retry builds a fresh one) is put back on the
  queue exactly once.  A second failure — or a full queue at requeue
  time — resolves the task with
  :class:`~repro.errors.WorkerCrashError` carrying the original cause.

Mining work itself runs in ``setm_parallel``'s *process* pools; these
workers are threads that mostly wait on them, so a handful suffices.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable
from typing import Any

from repro.errors import (
    InvalidConfigError,
    RequestTimeoutError,
    ServerBusyError,
    ServerDrainingError,
    WorkerCrashError,
)

__all__ = ["RequestScheduler"]

#: Sentinel a worker interprets as "stop".
_STOP = object()

#: submit()'s "no per-request timeout given" marker (None is meaningful:
#: it disables the deadline).
_UNSET = object()


class _Task:
    """One queued unit of work plus its completion signalling."""

    __slots__ = ("fn", "done", "result", "error", "attempts", "abandoned")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.attempts = 0
        self.abandoned = False


class RequestScheduler:
    """Bounded-queue executor with admission control and crash requeue.

    Parameters
    ----------
    queue_depth:
        Maximum number of *waiting* requests (in-flight work does not
        count against it).  Requests beyond it are rejected with
        :class:`ServerBusyError`.
    workers:
        Worker threads draining the queue.
    default_timeout:
        Deadline in seconds applied when a submission does not carry its
        own; ``None`` disables the default deadline.
    max_attempts:
        Total executions allowed per task (first run plus requeues).
    retryable:
        Predicate deciding whether an exception is worth a requeue
        (e.g. a dead worker pool).  ``None`` disables requeueing.
    """

    def __init__(
        self,
        *,
        queue_depth: int = 16,
        workers: int = 2,
        default_timeout: float | None = None,
        max_attempts: int = 2,
        retryable: Callable[[BaseException], bool] | None = None,
    ) -> None:
        for name, value, floor in (
            ("queue_depth", queue_depth, 1),
            ("workers", workers, 1),
            ("max_attempts", max_attempts, 1),
        ):
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < floor
            ):
                raise InvalidConfigError(
                    f"{name} must be an integer >= {floor}; got {value!r}"
                )
        if default_timeout is not None and (
            isinstance(default_timeout, bool)
            or not isinstance(default_timeout, (int, float))
            or default_timeout <= 0
        ):
            raise InvalidConfigError(
                "default_timeout must be a positive number or None; "
                f"got {default_timeout!r}"
            )
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._queue_depth = queue_depth
        self._workers = workers
        self._default_timeout = default_timeout
        self._max_attempts = max_attempts
        self._retryable = retryable
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._draining = False
        self._stopped = False
        self._in_flight = 0
        self._accepted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._requeued = 0
        self._timed_out = 0

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> "RequestScheduler":
        """Spawn the worker threads (idempotent); returns self."""
        with self._lock:
            if self._stopped:
                raise ServerDrainingError("scheduler already drained")
            if self._threads:
                return self
            self._threads = [
                threading.Thread(
                    target=self._run,
                    name=f"repro-serve-worker-{i}",
                    daemon=True,
                )
                for i in range(self._workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def drain(self) -> None:
        """Stop admissions, finish every queued task, stop the workers.

        Idempotent.  Blocks until the queue is empty, all in-flight work
        has completed (successfully or not), and every worker thread has
        exited.
        """
        with self._lock:
            self._draining = True
            started = bool(self._threads)
            already = self._stopped
            self._stopped = True
        if already or not started:
            return
        self._queue.join()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission -----------------------------------------------------------------

    def submit(
        self, fn: Callable[[], Any], *, timeout: object = _UNSET
    ) -> Any:
        """Run ``fn`` through the queue; block for its result.

        Raises
        ------
        ServerDrainingError
            The scheduler is draining (or was never started).
        ServerBusyError
            The queue is at ``queue_depth``.
        RequestTimeoutError
            The deadline passed before the task completed.  The task is
            marked abandoned; if it later fails retryably it will *not*
            be requeued.
        WorkerCrashError
            The task kept failing retryably until ``max_attempts`` (or
            could not be requeued); ``__cause__`` holds the last error.
        """
        with self._lock:
            if self._draining or not self._threads:
                raise ServerDrainingError()
        task = _Task(fn)
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            with self._lock:
                self._rejected += 1
            raise ServerBusyError(queue_depth=self._queue_depth) from None
        with self._lock:
            self._accepted += 1
        deadline = (
            self._default_timeout if timeout is _UNSET else timeout
        )
        if not task.done.wait(deadline):
            task.abandoned = True
            with self._lock:
                self._timed_out += 1
            raise RequestTimeoutError(timeout_seconds=deadline)
        if task.error is not None:
            raise task.error
        return task.result

    # -- worker body ----------------------------------------------------------------

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                self._queue.task_done()
                return
            with self._lock:
                self._in_flight += 1
            try:
                self._execute(task)
            finally:
                with self._lock:
                    self._in_flight -= 1
                self._queue.task_done()

    def _execute(self, task: _Task) -> None:
        task.attempts += 1
        try:
            task.result = task.fn()
        except BaseException as exc:  # noqa: BLE001 - resolved into the task
            if self._should_requeue(task, exc):
                try:
                    # Bypassing put_nowait admission would be wrong: a
                    # requeue competes for queue space like any arrival.
                    self._queue.put_nowait(task)
                except queue.Full:
                    task.error = WorkerCrashError(attempts=task.attempts)
                    task.error.__cause__ = exc
                else:
                    with self._lock:
                        self._requeued += 1
                    return  # not done yet: the requeued run will finish it
            elif (
                self._retryable is not None
                and self._retryable(exc)
                and task.attempts >= self._max_attempts
            ):
                task.error = WorkerCrashError(attempts=task.attempts)
                task.error.__cause__ = exc
            else:
                task.error = exc
            with self._lock:
                self._failed += 1
        else:
            task.error = None
            with self._lock:
                self._completed += 1
        task.done.set()

    def _should_requeue(self, task: _Task, exc: BaseException) -> bool:
        if task.abandoned or task.attempts >= self._max_attempts:
            return False
        return self._retryable is not None and self._retryable(exc)

    # -- introspection --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A point-in-time snapshot of queue state and lifetime counters."""
        with self._lock:
            return {
                "queue_depth": self._queue_depth,
                "workers": self._workers,
                "depth": self._queue.qsize(),
                "in_flight": self._in_flight,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "requeued": self._requeued,
                "timed_out": self._timed_out,
                "draining": self._draining,
            }
