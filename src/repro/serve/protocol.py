"""The serve layer's JSON vocabulary: requests, payloads, error mapping.

One request is one JSON object with an ``op``:

=============  ==================================================  =========
op             fields                                              queued?
=============  ==================================================  =========
``ping``       —                                                   no
``stats``      —                                                   no
``drain``      —                                                   no
``mine``       ``dataset``, ``config``, ``include_rules``          yes
``patterns``   ``dataset``, ``config``, ``length``, ``containing``,
               ``min_count``                                       yes
``support_of`` ``dataset``, ``config``, ``items``                  yes
``rules_about``  ``dataset``, ``config``, ``item``, ``confidence``  yes
``append``     ``dataset``, ``path``, ``input_format``,
               ``chunk_rows``                                      yes
``refresh``    ``dataset``, ``config``, ``include_rules``          yes
``query``      ``query`` (a ``MINE`` statement), ``explain``       yes
=============  ==================================================  =========

``query`` carries a :mod:`repro.query` ``MINE`` statement instead of a
``config``: the statement itself names the hosted dataset (``FROM``)
and every threshold/option, and the server's planner picks the engine.
The statement is parsed *here*, so a malformed query fails typed
(:class:`~repro.errors.QueryParseError`, HTTP 400, with the token
position) before touching the queue; ``explain: true`` returns the
rendered plan without mining.

``append`` stream-encodes a *server-visible* file onto a hosted
dataset registered in stream-encoded form (bumping its generation);
``refresh`` re-mines through the incremental engine so only the
appended delta is counted (the response carries the
``extra["incremental"]`` telemetry).  Both are queued: appends
serialize against in-flight mining of the same dataset.

``config`` carries :class:`~repro.config.MiningConfig` fields verbatim
(``support``, ``confidence``, ``algorithm``, ``max_length``,
``options``, ``input_format``, ``chunk_rows``, ``state_dir``); every
queued op may also carry ``timeout`` seconds.

Responses are ``{"ok": true, "op": ..., ...}`` or ``{"ok": false,
"error": {...}}`` where the error payload names the *type* from the
:class:`~repro.errors.ReproError` hierarchy, so a client can re-raise
the same exception class the server raised
(:func:`rebuild_error` does exactly that).

:func:`result_payload` is deliberately **deterministic**: it contains
no timings and no host-dependent extras, so a response is byte-for-byte
identical to serializing a direct :class:`~repro.miner.Miner` run of
the same config — the serve conformance tests hold the server to that.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from typing import Any

from repro import errors as _errors
from repro.config import MiningConfig
from repro.core.result import MiningResult
from repro.core.rules import Rule
from repro.errors import ProtocolError, ReproError, ServeError

__all__ = [
    "QUEUED_OPS",
    "Request",
    "config_from_payload",
    "error_payload",
    "parse_request",
    "rebuild_error",
    "result_payload",
    "rules_payload",
]

#: Ops that go through the bounded queue (they may mine); the rest are
#: control-plane and answered inline even when the queue is saturated.
QUEUED_OPS = frozenset(
    {
        "mine",
        "patterns",
        "support_of",
        "rules_about",
        "append",
        "refresh",
        "query",
    }
)

#: Control-plane ops handled without touching the queue.
INLINE_OPS = frozenset({"ping", "stats", "drain"})

#: Keys a ``config`` payload may carry — exactly MiningConfig's fields.
_CONFIG_KEYS = frozenset(
    {
        "support",
        "confidence",
        "algorithm",
        "max_length",
        "options",
        "input_format",
        "chunk_rows",
        "state_dir",
    }
)

#: Per-op request keys beyond ``op`` itself.
_REQUEST_KEYS = {
    "ping": frozenset(),
    "stats": frozenset(),
    "drain": frozenset(),
    "mine": frozenset({"dataset", "config", "include_rules", "timeout"}),
    "patterns": frozenset(
        {"dataset", "config", "length", "containing", "min_count", "timeout"}
    ),
    "support_of": frozenset({"dataset", "config", "items", "timeout"}),
    "rules_about": frozenset(
        {"dataset", "config", "item", "confidence", "timeout"}
    ),
    "append": frozenset(
        {"dataset", "path", "input_format", "chunk_rows", "timeout"}
    ),
    "refresh": frozenset({"dataset", "config", "include_rules", "timeout"}),
    "query": frozenset({"query", "explain", "timeout"}),
}


class Request:
    """A parsed, structurally validated serve request."""

    __slots__ = ("op", "dataset", "config", "timeout", "params")

    def __init__(
        self,
        op: str,
        *,
        dataset: str | None = None,
        config: MiningConfig | None = None,
        timeout: float | None = None,
        params: dict[str, Any] | None = None,
    ) -> None:
        self.op = op
        self.dataset = dataset
        self.config = config
        self.timeout = timeout
        self.params = params or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Request(op={self.op!r}, dataset={self.dataset!r})"


def config_from_payload(payload: object) -> MiningConfig:
    """A validated :class:`MiningConfig` from a request's ``config`` object.

    Missing fields take ``MiningConfig``'s defaults; unknown fields are
    a :class:`ProtocolError` (a typo must not silently mine the default
    config).  Field-level validation is ``MiningConfig``'s own.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"config must be a JSON object; got {type(payload).__name__}"
        )
    unknown = set(payload) - _CONFIG_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown config field(s) {', '.join(sorted(unknown))}; "
            f"accepted: {', '.join(sorted(_CONFIG_KEYS))}"
        )
    return MiningConfig(**payload)


def _parse_timeout(value: object) -> float | None:
    if value is None:
        return None
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or value <= 0
    ):
        raise ProtocolError(
            f"timeout must be a positive number of seconds; got {value!r}"
        )
    return float(value)


def parse_request(payload: object) -> Request:
    """Validate a decoded JSON request into a :class:`Request`.

    Structural problems (missing op, unknown op, unknown fields, bad
    field types) raise :class:`ProtocolError`; config-value problems
    raise the config's own :class:`~repro.errors.InvalidConfigError`
    family — both land in the same structured error envelope.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object; got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op not in _REQUEST_KEYS:
        known = ", ".join(sorted(_REQUEST_KEYS))
        raise ProtocolError(
            f"unknown op {op!r}; expected one of: {known}"
        )
    unknown = set(payload) - _REQUEST_KEYS[op] - {"op"}
    if unknown:
        raise ProtocolError(
            f"op {op!r} does not accept field(s) "
            f"{', '.join(sorted(unknown))}"
        )
    if op in INLINE_OPS:
        return Request(op)
    if op == "query":
        return _parse_query_request(payload)

    dataset = payload.get("dataset")
    if not isinstance(dataset, str) or not dataset:
        raise ProtocolError(
            f"op {op!r} needs a non-empty string 'dataset'; "
            f"got {dataset!r}"
        )
    config = config_from_payload(payload.get("config"))
    timeout = _parse_timeout(payload.get("timeout"))
    params = {
        key: payload[key]
        for key in _REQUEST_KEYS[op] - {"dataset", "config", "timeout"}
        if key in payload
    }
    _validate_params(op, params)
    return Request(
        op, dataset=dataset, config=config, timeout=timeout, params=params
    )


def _parse_query_request(payload: dict[str, Any]) -> Request:
    """A ``query`` request: the MINE statement is parsed server-side.

    The routing dataset comes out of the statement's ``FROM`` clause,
    so a syntax error (typed, positioned) or a path-valued ``FROM``
    fails before the request ever reaches the queue.  The parsed AST
    rides along in ``params`` so the service does not re-parse.
    """
    text = payload.get("query")
    if not isinstance(text, str) or not text.strip():
        raise ProtocolError(
            f"op 'query' needs a non-empty string 'query'; got {text!r}"
        )
    explain = payload.get("explain")
    if explain is not None and not isinstance(explain, bool):
        raise ProtocolError(
            f"query 'explain' must be a boolean; got {explain!r}"
        )
    # Lazy: repro.query's executor imports this module for the payload
    # builders, so a top-level import here would be circular.
    from repro.query.parser import parse_query

    ast = parse_query(text)
    if ast.dataset_is_path:
        raise _errors.PlanError(
            f"FROM {ast.dataset!r} names a file path, but the server only "
            "serves hosted datasets; use a dataset name"
        )
    return Request(
        "query",
        dataset=ast.dataset,
        timeout=_parse_timeout(payload.get("timeout")),
        params={"query": text, "explain": bool(explain), "ast": ast},
    )


def _validate_params(op: str, params: dict[str, Any]) -> None:
    """Structural checks for the op-specific fields."""
    if op == "support_of":
        items = params.get("items")
        if not isinstance(items, list) or not items:
            raise ProtocolError(
                "support_of needs a non-empty 'items' list; "
                f"got {items!r}"
            )
    if op == "rules_about" and "item" not in params:
        raise ProtocolError("rules_about needs an 'item' field")
    if op == "patterns":
        length = params.get("length")
        if length is not None and (
            isinstance(length, bool)
            or not isinstance(length, int)
            or length < 1
        ):
            raise ProtocolError(
                f"patterns 'length' must be a positive integer; got {length!r}"
            )
        containing = params.get("containing")
        if containing is not None and not isinstance(containing, list):
            raise ProtocolError(
                f"patterns 'containing' must be a list; got {containing!r}"
            )
        min_count = params.get("min_count")
        if min_count is not None and (
            isinstance(min_count, bool) or not isinstance(min_count, int)
        ):
            raise ProtocolError(
                f"patterns 'min_count' must be an integer; got {min_count!r}"
            )
    if op in ("mine", "refresh"):
        include_rules = params.get("include_rules")
        if include_rules is not None and not isinstance(include_rules, bool):
            raise ProtocolError(
                f"{op} 'include_rules' must be a boolean; "
                f"got {include_rules!r}"
            )
    if op == "append":
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError(
                f"append needs a non-empty server-visible 'path'; got {path!r}"
            )
        input_format = params.get("input_format")
        if input_format is not None and not isinstance(input_format, str):
            raise ProtocolError(
                f"append 'input_format' must be a string; got {input_format!r}"
            )
        chunk_rows = params.get("chunk_rows")
        if chunk_rows is not None and (
            isinstance(chunk_rows, bool)
            or not isinstance(chunk_rows, int)
            or chunk_rows < 1
        ):
            raise ProtocolError(
                f"append 'chunk_rows' must be a positive integer; "
                f"got {chunk_rows!r}"
            )


# -- response payloads ---------------------------------------------------------------

def result_payload(result: MiningResult) -> dict[str, Any]:
    """The deterministic JSON document for one :class:`MiningResult`.

    Contains everything two runs of the same config must agree on —
    patterns, counts, iteration statistics — and *nothing* they may
    legitimately differ on (timings, memory, per-host extras).  The
    serve conformance tests compare these documents byte-for-byte
    against direct ``Miner`` runs.
    """
    return {
        "algorithm": result.algorithm,
        "num_transactions": result.num_transactions,
        "minimum_support": result.minimum_support,
        "support_threshold": result.support_threshold,
        "num_patterns": sum(
            len(rel) for rel in result.count_relations.values()
        ),
        "max_pattern_length": result.max_pattern_length,
        "patterns": [
            {"items": list(pattern), "count": count}
            for pattern, count in result.iter_patterns()
        ],
        "iterations": [
            {
                "k": stats.k,
                "candidate_instances": stats.candidate_instances,
                "supported_instances": stats.supported_instances,
                "candidate_patterns": stats.candidate_patterns,
                "supported_patterns": stats.supported_patterns,
            }
            for stats in result.iterations
        ],
    }


def rules_payload(rules: Iterable[Rule]) -> list[dict[str, Any]]:
    """Rules as JSON objects plus the paper's rendering, deterministically."""
    return [
        {
            "antecedent": list(rule.antecedent),
            "consequent": list(rule.consequent),
            "support_count": rule.support_count,
            "support": rule.support,
            "confidence": rule.confidence,
            "lift": rule.lift,
            "text": rule.as_paper_line(),
        }
        for rule in rules
    ]


# -- error mapping -------------------------------------------------------------------

#: Context attributes worth forwarding to clients, per error family.
_ERROR_ATTRS = (
    "parameter",
    "algorithm",
    "known",
    "engine",
    "options",
    "accepted",
    "dataset",
    "queue_depth",
    "timeout_seconds",
    "attempts",
    "expected",
    "found",
    "position",
    "line",
    "column",
)


def _json_safe(value: Any) -> Any:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return repr(value)
    return value


def error_status(error: ReproError) -> int:
    """The HTTP status code for one API error."""
    status = getattr(error, "status", None)
    if isinstance(status, int):
        return status
    if isinstance(error, _errors.UnknownAlgorithmError):
        return 404
    if isinstance(
        error, (_errors.InvalidConfigError, _errors.EngineOptionError)
    ):
        return 400
    return 500


def error_payload(error: ReproError) -> tuple[int, dict[str, Any]]:
    """``(status, document)`` for one error of the ReproError hierarchy.

    The document carries the concrete ``type`` name, the message, and
    any recognized context attributes (``queue_depth``, ``algorithm``,
    ...) in JSON-safe form.
    """
    status = error_status(error)
    document: dict[str, Any] = {
        "type": type(error).__name__,
        "status": status,
        "message": str(error),
    }
    for attr in _ERROR_ATTRS:
        value = getattr(error, attr, None)
        if value is not None:
            document[attr] = _json_safe(value)
    return status, document


def _error_types() -> dict[str, type[ReproError]]:
    return {
        name: value
        for name, value in vars(_errors).items()
        if isinstance(value, type) and issubclass(value, ReproError)
    }


def rebuild_error(document: dict[str, Any]) -> ReproError:
    """The client-side inverse of :func:`error_payload`.

    Rebuilds the *same exception class* the server raised (falling back
    to :class:`ServeError` for unknown names) without running the
    class's constructor — the message is already rendered, and the
    context attributes are restored verbatim, so ``except
    ServerBusyError`` works identically on both sides of the wire.
    """
    cls = _error_types().get(str(document.get("type")), ServeError)
    error = cls.__new__(cls)
    Exception.__init__(error, str(document.get("message", "serve error")))
    for attr in _ERROR_ATTRS:
        if attr in document:
            try:
                setattr(error, attr, document[attr])
            except AttributeError:  # pragma: no cover - slotted subclass
                pass
    return error
