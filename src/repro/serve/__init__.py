"""Mining as a service: a long-lived process in front of the miners.

The paper's thesis is that association-rule mining belongs *inside* the
database system rather than in one-shot batch programs; this package
finishes the thought operationally — a resident service that owns the
shared dictionary-encoded :class:`~repro.core.transactions.TransactionDatabase`,
the per-config :class:`~repro.miner.Miner` session caches, and the warm
``setm_parallel`` worker pools, and answers small targeted questions
(``mine`` / ``patterns`` / ``support_of`` / ``rules_about``) cheaply
enough to serve interactively.

Layering (each module usable on its own):

* :mod:`repro.serve.protocol` — the JSON request/response vocabulary and
  the mapping from the :class:`~repro.errors.ReproError` hierarchy to
  structured error payloads;
* :mod:`repro.serve.scheduler` — a bounded request queue with admission
  control, per-request deadlines, and requeue-or-fail semantics over
  crashed workers;
* :mod:`repro.serve.service` — the transport-agnostic core: datasets,
  miners, stats, graceful drain;
* :mod:`repro.serve.server` — the stdlib-HTTP transport
  (``repro serve`` runs this);
* :mod:`repro.serve.client` — a stdlib client that raises the same
  typed errors the server answered with.
"""

from repro.serve.client import ServeClient
from repro.serve.scheduler import RequestScheduler
from repro.serve.server import MiningServer
from repro.serve.service import MiningService

__all__ = [
    "MiningServer",
    "MiningService",
    "RequestScheduler",
    "ServeClient",
]
