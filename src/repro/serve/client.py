"""A stdlib client for ``repro serve`` — same exceptions, over the wire.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` JSON
vocabulary and, on an ``ok: false`` response, re-raises the *same typed
exception* the server raised (via
:func:`~repro.serve.protocol.rebuild_error`), so calling code handles a
remote miner exactly like a local one::

    client = ServeClient(port=8937)
    try:
        document = client.mine("quest", support=0.05, confidence=0.7)
    except ServerBusyError:
        ...back off and retry...
    except UnknownDatasetError as error:
        print(error.known)

One HTTP connection per request: the server speaks HTTP/1.0 and the
interesting state (pools, caches, queue) all lives server-side, so a
client is just a stateless address.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from repro.errors import ProtocolError
from repro.serve.protocol import rebuild_error

__all__ = ["ServeClient"]


class ServeClient:
    """A client bound to one ``repro serve`` address.

    Parameters
    ----------
    host, port:
        Where the server listens (the ``listening on HOST:PORT`` line).
    timeout:
        Socket timeout in seconds for each request.  This bounds the
        *transport*; the server-side per-request deadline is the
        ``timeout`` field of the request itself.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8937,
        *,
        timeout: float | None = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST one protocol request; return the ``ok`` document.

        Raises the rebuilt typed error on an ``ok: false`` response and
        :class:`ProtocolError` on a response that is not protocol JSON.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                "/",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            body = connection.getresponse().read()
        finally:
            connection.close()
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ProtocolError(
                f"server answered non-JSON ({body[:80]!r})"
            ) from None
        if not isinstance(document, dict):
            raise ProtocolError(
                f"server answered non-object JSON ({document!r})"
            )
        if not document.get("ok"):
            raise rebuild_error(document.get("error") or {})
        return document

    # -- ops ------------------------------------------------------------------------

    @staticmethod
    def _config_payload(
        config: dict[str, Any] | None, fields: dict[str, Any]
    ) -> dict[str, Any]:
        merged = dict(config or {})
        merged.update(fields)
        return merged

    def mine(
        self,
        dataset: str,
        *,
        config: dict[str, Any] | None = None,
        include_rules: bool | None = None,
        timeout: float | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Run ``mine``: the full deterministic result document.

        Config fields may be given as a ``config`` dict, as keyword
        arguments (``support=0.05``), or both (keywords win).
        """
        payload: dict[str, Any] = {
            "op": "mine",
            "dataset": dataset,
            "config": self._config_payload(config, fields),
        }
        if include_rules is not None:
            payload["include_rules"] = include_rules
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)

    def patterns(
        self,
        dataset: str,
        *,
        config: dict[str, Any] | None = None,
        length: int | None = None,
        containing: list[Any] | None = None,
        min_count: int | None = None,
        timeout: float | None = None,
        **fields: Any,
    ) -> list[dict[str, Any]]:
        """Run ``patterns``: the filtered pattern list."""
        payload: dict[str, Any] = {
            "op": "patterns",
            "dataset": dataset,
            "config": self._config_payload(config, fields),
        }
        for key, value in (
            ("length", length),
            ("containing", containing),
            ("min_count", min_count),
            ("timeout", timeout),
        ):
            if value is not None:
                payload[key] = value
        return self.request(payload)["patterns"]

    def support_of(
        self,
        dataset: str,
        items: list[Any],
        *,
        config: dict[str, Any] | None = None,
        timeout: float | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Run ``support_of``: ``{"items", "count", "support"}``."""
        payload: dict[str, Any] = {
            "op": "support_of",
            "dataset": dataset,
            "config": self._config_payload(config, fields),
            "items": list(items),
        }
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)

    def rules_about(
        self,
        dataset: str,
        item: Any,
        *,
        config: dict[str, Any] | None = None,
        confidence: float | None = None,
        timeout: float | None = None,
        **fields: Any,
    ) -> list[dict[str, Any]]:
        """Run ``rules_about``: rules mentioning ``item`` on either side."""
        payload: dict[str, Any] = {
            "op": "rules_about",
            "dataset": dataset,
            "config": self._config_payload(config, fields),
            "item": item,
        }
        if confidence is not None:
            payload["confidence"] = confidence
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)["rules"]

    def query(
        self,
        text: str,
        *,
        explain: bool = False,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Run a declarative ``MINE`` statement (:mod:`repro.query`).

        The statement names the hosted dataset (``FROM``) and every
        threshold itself; the server's planner picks the engine.  With
        ``explain=True`` the document carries the rendered plan under
        ``"explain"`` and nothing is mined.  A malformed statement
        re-raises the server's positioned
        :class:`~repro.errors.QueryParseError`.
        """
        payload: dict[str, Any] = {"op": "query", "query": text}
        if explain:
            payload["explain"] = True
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)

    def ping(self) -> dict[str, Any]:
        """Liveness: server status, version, hosted datasets."""
        return self.request({"op": "ping"})["result"]

    def stats(self) -> dict[str, Any]:
        """Introspection: queue, caches, pools, per-engine traffic."""
        return self.request({"op": "stats"})["result"]

    def drain(self) -> dict[str, Any]:
        """Gracefully drain the server; returns the drain report."""
        return self.request({"op": "drain"})["result"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServeClient({self.host}:{self.port})"
