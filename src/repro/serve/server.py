"""The stdlib-HTTP transport in front of a :class:`MiningService`.

Deliberately boring: ``http.server.ThreadingHTTPServer`` (one handler
thread per connection — the *real* concurrency bound is the service's
scheduler, not the socket layer), JSON bodies both ways, no streaming,
no dependencies.  The transport knows nothing about mining; it decodes
the body, hands the object to :meth:`MiningService.handle`, and writes
back whatever ``(status, document)`` comes out.

Two conveniences on top of the POST protocol:

* ``GET /health`` and ``GET /stats`` answer the ``ping`` / ``stats``
  ops for curl-shaped monitoring;
* an ``ok`` drain response triggers server shutdown *after* the
  response is written — ``repro serve`` exits cleanly when a client
  drains it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, TextIO

from repro.serve.service import MiningService

__all__ = ["MiningServer", "run_server"]


class _Handler(BaseHTTPRequestHandler):
    """One JSON request per connection (HTTP/1.0 keeps this simple)."""

    server: "MiningServer"

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/", "/request"):
            self._respond(
                404,
                {
                    "ok": False,
                    "error": {
                        "type": "ProtocolError",
                        "status": 404,
                        "message": f"no such endpoint {self.path!r}; "
                        "POST requests go to /",
                    },
                },
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._respond(
                400,
                {
                    "ok": False,
                    "error": {
                        "type": "ProtocolError",
                        "status": 400,
                        "message": "request body is not valid JSON",
                    },
                },
            )
            return
        status, document = self.server.service.handle(payload)
        self._respond(status, document)
        if document.get("ok") and document.get("op") == "drain":
            self.server.initiate_shutdown()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        op = {"/health": "ping", "/stats": "stats"}.get(self.path)
        if op is None:
            self._respond(
                404,
                {
                    "ok": False,
                    "error": {
                        "type": "ProtocolError",
                        "status": 404,
                        "message": f"no such endpoint {self.path!r}; "
                        "GET endpoints: /health, /stats",
                    },
                },
            )
            return
        status, document = self.server.service.handle({"op": op})
        self._respond(status, document)

    def _respond(self, status: int, document: dict[str, Any]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default: the CLI owns stdout, and per-request access
        # logging belongs to the stats op, not stderr.
        pass


class MiningServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`MiningService`.

    ``serve_forever`` runs until a client's drain request (or
    :meth:`initiate_shutdown`) stops it.  Handler threads are
    *non-daemon* and ``server_close`` joins them, so the process never
    exits with a response half-written.
    """

    daemon_threads = False
    # Accept queue beyond the scheduler bound: admission control must
    # get the chance to answer 429, not the kernel to drop SYNs.
    request_queue_size = 32

    def __init__(
        self,
        service: MiningService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self._shutdown_lock = threading.Lock()
        self._shutdown_thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def initiate_shutdown(self) -> None:
        """Stop ``serve_forever`` from a handler thread (idempotent).

        ``shutdown()`` blocks until the serve loop exits, so a handler
        must not call it directly — it would deadlock waiting for
        itself.  A one-shot helper thread does the blocking part.
        """
        with self._shutdown_lock:
            if self._shutdown_thread is not None:
                return
            self._shutdown_thread = threading.Thread(
                target=self.shutdown, name="repro-serve-shutdown", daemon=True
            )
            self._shutdown_thread.start()


def run_server(
    service: MiningService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    out: TextIO | None = None,
) -> int:
    """Serve until drained; returns 0.

    Prints (and flushes) ``listening on HOST:PORT`` once the socket is
    bound — with ``port=0`` the line is how callers learn the real
    port, so it must hit the pipe before the first request can be sent.
    """
    with MiningServer(service, host, port) as server:
        if out is not None:
            print(f"listening on {server.host}:{server.port}", file=out)
            out.flush()
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass
    # Belt and braces: a drain request already did this; an interrupt
    # (or a test closing the socket) has not.
    service.drain()
    return 0
