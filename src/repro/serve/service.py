"""The transport-agnostic serve core: datasets, miners, stats, drain.

A :class:`MiningService` owns, per hosted dataset, **one**
dictionary-encoded :class:`~repro.core.transactions.TransactionDatabase`
(encoded once at startup; every concurrent request mines the same
object) and **one** :class:`~repro.miner.Miner` whose bounded per-config
result cache makes repeated questions about the same config free.
Query-shaped requests — ``mine``, ``patterns``, ``support_of``,
``rules_about``, and the declarative ``query`` op (a
:mod:`repro.query` ``MINE`` statement planned server-side) — run
through the bounded :class:`~repro.serve.scheduler.RequestScheduler`;
control-plane requests (``ping``, ``stats``, ``drain``) are answered
inline so a saturated queue can still be observed and drained.

Datasets registered in stream-encoded form
(:class:`~repro.data.ingest.EncodedDataset`) stay *live*: the ``append``
op stream-encodes a server-visible file onto them (bumping the
generation every result cache keys on) and ``refresh`` re-mines through
the incremental engine (:mod:`repro.core.incremental`), counting only
the appended delta against the service-owned per-dataset state — rules
refresh as data lands instead of re-encoding + re-mining.

Spill discipline: the service owns a spill root directory and injects it
(as *namespaced* engine options, so non-spilling engines never see it)
into every request config.  Graceful drain finishes in-flight work,
terminates the shared worker pools via
:func:`~repro.core.setm_parallel.shutdown_worker_pools`, and reports the
number of leftover spill files *and* leftover shared-memory segments
(the zero-copy transport's namespace) — zero of each, unless an engine
leaked.

Responses are decoded back to the datasets' original item labels before
serialization, so they are byte-for-byte what a direct
:class:`~repro.miner.Miner` over the raw data would serialize to.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from collections import Counter, OrderedDict
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.config import MiningConfig, _validate_confidence
from repro.core.result import MiningResult
from repro.core.rules import generate_rules
from repro.core.setm_parallel import pool_stats, shutdown_worker_pools
from repro.core.transport import (
    cleanup_segments,
    leaked_segment_names,
    transport_totals,
)
from repro.core.transactions import ItemCatalog, TransactionDatabase
from repro.errors import (
    InvalidConfigError,
    ProtocolError,
    ReproError,
    UnknownDatasetError,
)
from repro.miner import Miner
from repro.registry import available_engines
from repro.serve.protocol import (
    Request,
    error_payload,
    parse_request,
    result_payload,
    rules_payload,
)
from repro.serve.scheduler import RequestScheduler

__all__ = ["MiningService", "pool_crash_signature"]

#: Engines that honour a ``spill_dir`` option; the service pins them to
#: its own spill root (namespaced, so other engines never see the key).
_SPILL_ENGINES = ("setm-columnar-disk", "setm-spill-parallel")


def pool_crash_signature(error: BaseException) -> bool:
    """Whether an exception smells like a dead/broken worker pool.

    ``pool_map`` evicts a dead pool from its cache when the dispatch
    fails, so a retry transparently builds a fresh pool — these are the
    failures worth exactly one requeue.  Genuine mining errors (bad
    data, engine bugs) do not match and fail fast.
    """
    if isinstance(
        error, (BrokenPipeError, ConnectionResetError, EOFError)
    ):
        return True
    return "Pool not running" in str(error)


class _HostedDataset:
    """One dataset: its shared encoded database, catalog, and miner."""

    __slots__ = (
        "name",
        "database",
        "catalog",
        "miner",
        "decoded",
        "ingest",
        "encoded_dataset",
        "lock",
    )

    def __init__(
        self,
        name: str,
        database: TransactionDatabase,
        catalog: ItemCatalog,
        miner: Miner,
        *,
        ingest: dict[str, Any] | None = None,
        encoded_dataset=None,
    ) -> None:
        self.name = name
        self.database = database
        self.catalog = catalog
        self.miner = miner
        # Streaming-ingest telemetry when the dataset was registered as
        # an EncodedDataset; None for whole-file registrations.
        self.ingest = ingest
        # The live EncodedDataset when registered stream-encoded — kept
        # (not just materialized away) so the ``append`` op can extend
        # it in place and the miner sees every generation bump.
        self.encoded_dataset = encoded_dataset
        # Serializes dataset mutation (append) against in-flight mining
        # of the same dataset; different datasets stay concurrent.
        self.lock = threading.RLock()
        # Decoded views of cached results, keyed by id(result).  The
        # strong reference to the result keeps the id stable; entries
        # are bounded alongside the miner's own cache.
        self.decoded: OrderedDict[
            int, tuple[MiningResult, MiningResult]
        ] = OrderedDict()


class MiningService:
    """The serve layer's core: request execution over shared sessions.

    Parameters
    ----------
    datasets:
        ``{name: TransactionDatabase}`` — each is dictionary-encoded
        once and shared by every request addressing it.  A value may
        also be a stream-encoded
        :class:`~repro.data.ingest.EncodedDataset` (see
        :func:`repro.data.ingest.load_dataset`): its catalog and
        encoded columns are adopted directly — the whole-dataset
        labelled database is never materialized at startup — and its
        ingest telemetry is surfaced in :meth:`stats`.
    queue_depth:
        Bound of the request queue (admission control rejects beyond
        it with a typed ``ServerBusyError``).
    workers:
        Scheduler worker threads (the mining itself may additionally
        fan out to ``setm_parallel``'s process pools).
    default_timeout:
        Per-request deadline in seconds when the request carries none;
        ``None`` disables the default deadline.
    cache_entries:
        Bound of each dataset's per-config :class:`Miner` result cache.
    spill_root:
        Directory the out-of-core engines spill under (default: a fresh
        temporary directory owned — and removed at drain — by the
        service).
    """

    def __init__(
        self,
        datasets: Mapping[str, TransactionDatabase],
        *,
        queue_depth: int = 16,
        workers: int = 2,
        default_timeout: float | None = 60.0,
        cache_entries: int = 32,
        spill_root: str | Path | None = None,
    ) -> None:
        if not datasets:
            raise InvalidConfigError("a server needs at least one dataset")
        self._datasets: dict[str, _HostedDataset] = {}
        for name, database in datasets.items():
            if not isinstance(name, str) or not name:
                raise InvalidConfigError(
                    f"dataset names must be non-empty strings; got {name!r}"
                )
            ingest = None
            if isinstance(database, TransactionDatabase):
                encoded, catalog = database.encoded()
                self._datasets[name] = _HostedDataset(
                    name,
                    encoded,
                    catalog,
                    Miner(encoded, cache_entries=cache_entries),
                    ingest=ingest,
                )
            else:
                # A stream-encoded EncodedDataset stays live: its
                # catalog travels with it, the miner binds the dataset
                # itself (so the ``append`` op's generation bumps
                # invalidate cached results), and engines without the
                # streaming capability materialize on demand.
                catalog = database.catalog
                stats = database.stats
                ingest = stats.as_dict() if stats is not None else None
                self._datasets[name] = _HostedDataset(
                    name,
                    database,
                    catalog,
                    Miner(database, cache_entries=cache_entries),
                    ingest=ingest,
                    encoded_dataset=database,
                )
        self._owns_spill_root = spill_root is None
        self._spill_root = Path(
            tempfile.mkdtemp(prefix="repro-serve-spill-")
            if spill_root is None
            else spill_root
        )
        self._spill_root.mkdir(parents=True, exist_ok=True)
        # Per-dataset incremental mining state (``refresh`` op) lives
        # outside the spill root so the drain audit's leftover-spill
        # count stays meaningful; always service-owned.
        self._state_root = Path(tempfile.mkdtemp(prefix="repro-serve-state-"))
        self._scheduler = RequestScheduler(
            queue_depth=queue_depth,
            workers=workers,
            default_timeout=default_timeout,
            retryable=pool_crash_signature,
        ).start()
        self._lock = threading.Lock()
        self._by_op: Counter[str] = Counter()
        self._by_engine: Counter[str] = Counter()
        self._started_monotonic = time.monotonic()
        self._drain_lock = threading.Lock()
        self._drain_report: dict[str, Any] | None = None

    # -- request entry point --------------------------------------------------------

    @property
    def scheduler(self) -> RequestScheduler:
        return self._scheduler

    @property
    def spill_root(self) -> Path:
        return self._spill_root

    def dataset_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._datasets))

    def handle(self, payload: object) -> tuple[int, dict[str, Any]]:
        """Answer one decoded JSON request: ``(http_status, document)``.

        Never raises for request-shaped problems — every error of the
        :class:`ReproError` hierarchy becomes a structured ``ok: false``
        envelope with the matching status code.
        """
        op = payload.get("op") if isinstance(payload, dict) else None
        try:
            request = parse_request(payload)
            if request.op == "ping":
                document: dict[str, Any] = {"result": self._ping()}
            elif request.op == "stats":
                document = {"result": self.stats()}
            elif request.op == "drain":
                document = {"result": self.drain()}
            else:
                if request.timeout is None:
                    document = self._scheduler.submit(
                        lambda: self._execute(request)
                    )
                else:
                    document = self._scheduler.submit(
                        lambda: self._execute(request),
                        timeout=request.timeout,
                    )
                document["dataset"] = request.dataset
            with self._lock:
                self._by_op[request.op] += 1
            return 200, {"ok": True, "op": request.op, **document}
        except ReproError as error:
            status, document = error_payload(error)
            return status, {"ok": False, "op": op, "error": document}
        except Exception as error:  # pragma: no cover - defensive: bugs
            return 500, {
                "ok": False,
                "op": op,
                "error": {
                    "type": "InternalError",
                    "status": 500,
                    "message": f"{type(error).__name__}: {error}",
                },
            }

    # -- op execution (scheduler worker threads) ------------------------------------

    def _execute(self, request: Request) -> dict[str, Any]:
        hosted = self._datasets.get(request.dataset)
        if hosted is None:
            raise UnknownDatasetError(request.dataset, self._datasets)
        if request.op == "append":
            return self._op_append(request, hosted)
        if request.op == "query":
            return self._op_query(request, hosted)
        config = self._pin_spill_dir(request.config)
        if request.op == "refresh":
            config = self._pin_state_dir(request.dataset, config)
        hosted.miner.engine_spec(config)  # fail typed before any work
        cache_info_before = hosted.miner.cache_info()
        with hosted.lock:
            if request.op == "refresh":
                result = hosted.miner.mine_delta(config)
            else:
                result = hosted.miner.frequent_itemsets(config)
        # Stream-encoded datasets mine in label space already (their
        # kernels decode through the live catalog); only whole-file
        # registrations need the id-to-label pass.
        if hosted.encoded_dataset is not None:
            decoded = result
        else:
            decoded = self._decoded(hosted, result)
        engine_name = result.extra.get("session", {}).get(
            "engine", config.algorithm
        )
        with self._lock:
            self._by_engine[engine_name] += 1
        handler = getattr(self, f"_op_{request.op}")
        document = handler(request, config, decoded)
        if request.op == "refresh":
            document["incremental"] = result.extra.get("incremental")
        document["server"] = {
            "engine": engine_name,
            "cache_hit": (
                hosted.miner.cache_info()["hits"]
                > cache_info_before["hits"]
            ),
        }
        return document

    def _op_mine(
        self,
        request: Request,
        config: MiningConfig,
        decoded: MiningResult,
    ) -> dict[str, Any]:
        include_rules = request.params.get("include_rules")
        if include_rules is None:
            include_rules = config.confidence is not None
        rules = None
        if include_rules:
            if config.confidence is None:
                raise InvalidConfigError(
                    "mine with include_rules needs config.confidence"
                )
            rules = rules_payload(
                generate_rules(decoded, config.confidence)
            )
        return {"result": result_payload(decoded), "rules": rules}

    def _op_patterns(
        self,
        request: Request,
        config: MiningConfig,
        decoded: MiningResult,
    ) -> dict[str, Any]:
        length = request.params.get("length")
        containing = request.params.get("containing")
        min_count = request.params.get("min_count")
        wanted = set(containing) if containing is not None else None
        patterns = []
        for pattern, count in decoded.iter_patterns():
            if length is not None and len(pattern) != length:
                continue
            if wanted is not None and not wanted.issubset(pattern):
                continue
            if min_count is not None and count < min_count:
                continue
            patterns.append({"items": list(pattern), "count": count})
        return {"patterns": patterns}

    def _op_support_of(
        self,
        request: Request,
        config: MiningConfig,
        decoded: MiningResult,
    ) -> dict[str, Any]:
        items = tuple(request.params["items"])
        try:
            count = decoded.support_count(items)
        except TypeError:
            raise ProtocolError(
                f"items {items!r} are not mutually comparable"
            ) from None
        return {
            "items": list(items),
            "count": count,
            "support": (
                count / decoded.num_transactions
                if count is not None
                else None
            ),
        }

    def _op_rules_about(
        self,
        request: Request,
        config: MiningConfig,
        decoded: MiningResult,
    ) -> dict[str, Any]:
        confidence = request.params.get("confidence")
        if confidence is None:
            confidence = config.confidence
        if confidence is None:
            raise InvalidConfigError(
                "rules_about needs a confidence threshold (request "
                "'confidence' or config.confidence)"
            )
        _validate_confidence(confidence)
        item = request.params["item"]
        rules = [
            rule
            for rule in generate_rules(decoded, confidence)
            if item in rule.pattern
        ]
        return {"item": item, "rules": rules_payload(rules)}

    def _op_append(
        self, request: Request, hosted: _HostedDataset
    ) -> dict[str, Any]:
        """Stream-encode a server-visible file onto a hosted dataset.

        Only datasets registered in stream-encoded form can grow; the
        append bumps the dataset generation, so every cached result
        goes stale at once (the next ``refresh`` counts just the delta).
        """
        if hosted.encoded_dataset is None:
            raise InvalidConfigError(
                f"dataset {hosted.name!r} was loaded whole-file and cannot "
                "be appended to; host it stream-encoded "
                "(serve --input-format/--chunk-rows) to enable appends"
            )
        # Imported here, like the rest of the data layer: the serve core
        # stays importable without the optional decoders.
        from repro.data.formats import open_chunk_source

        source = open_chunk_source(
            request.params["path"],
            input_format=request.params.get("input_format") or "auto",
            chunk_rows=request.params.get("chunk_rows"),
        )
        with hosted.lock:
            info = hosted.encoded_dataset.append_chunks(source)
            stats = hosted.encoded_dataset.stats
            if stats is not None:
                hosted.ingest = stats.as_dict()
        return {"result": info}

    def _op_query(
        self, request: Request, hosted: _HostedDataset
    ) -> dict[str, Any]:
        """Plan and (unless ``explain``) execute one ``MINE`` statement.

        The protocol layer already parsed the statement (the AST rides
        in ``params``); here the hosted dataset is measured, the planner
        picks the engine, and the plan's config runs through the same
        shared :class:`Miner` every other op uses — so results stay
        byte-identical to a direct run of the planned config.
        """
        # Lazy, like the data layer: the serve core stays importable
        # without dragging the query front-end in for servers that
        # never see a ``query`` request.
        from repro.query import build_document, dataset_stats, plan_query
        from repro.query.plan import render_plan

        ast = request.params["ast"]
        cache_info_before = hosted.miner.cache_info()
        with hosted.lock:
            stats = dataset_stats(
                hosted.database,
                name=hosted.name,
                state_dir=ast.option("state"),
            )
            plan = plan_query(ast, stats)
            if request.params.get("explain"):
                return {"explain": render_plan(plan), "engine": plan.engine}
            # Spill pinning happens *after* the explain short-circuit so
            # rendered plans never leak the service's temp directories.
            plan.config = self._pin_spill_dir(plan.config)
            result = hosted.miner.frequent_itemsets(plan.config)
        if hosted.encoded_dataset is not None:
            decoded = result
        else:
            decoded = self._decoded(hosted, result)
        rules = None
        if ast.target == "rules":
            rules = generate_rules(decoded, plan.config.confidence)
        document = build_document(plan, decoded, rules)
        with self._lock:
            self._by_engine[plan.engine] += 1
        document["server"] = {
            "engine": plan.engine,
            "cache_hit": (
                hosted.miner.cache_info()["hits"]
                > cache_info_before["hits"]
            ),
        }
        return document

    _op_refresh = _op_mine

    # -- shared mining plumbing -----------------------------------------------------

    def _pin_state_dir(self, name: str, config: MiningConfig) -> MiningConfig:
        """Default ``refresh`` runs to the service's per-dataset state dir.

        A client-chosen ``state_dir`` always wins; the service-owned
        default lives under a private root removed at drain.
        """
        if config.state_dir is not None:
            return config
        return config.replace(state_dir=str(self._state_root / name))

    def _pin_spill_dir(self, config: MiningConfig) -> MiningConfig:
        """Point the out-of-core engines at the service's spill root.

        Uses *namespaced* options so engines without a ``spill_dir``
        option never see the key, and never overrides a spill_dir the
        client chose explicitly (plain or namespaced).
        """
        if "spill_dir" in config.options:
            return config
        options = dict(config.options)
        changed = False
        for engine in _SPILL_ENGINES:
            key = f"{engine}.spill_dir"
            if key not in options:
                options[key] = str(self._spill_root)
                changed = True
        return config.replace(options=options) if changed else config

    def _decoded(
        self, hosted: _HostedDataset, result: MiningResult
    ) -> MiningResult:
        """The label-decoded view of an (encoded-item) mining result.

        Cached per result object so post-hoc queries against a cached
        run never pay the decode twice; bounded alongside the miner's
        result cache (the strong result reference keeps ``id(result)``
        stable while the entry lives).
        """
        with self._lock:
            entry = hosted.decoded.get(id(result))
            if entry is not None:
                hosted.decoded.move_to_end(id(result))
                return entry[1]
        decode = hosted.catalog.label_of
        decoded = MiningResult(
            algorithm=result.algorithm,
            num_transactions=result.num_transactions,
            minimum_support=result.minimum_support,
            support_threshold=result.support_threshold,
            count_relations={
                k: {
                    tuple(decode(item) for item in pattern): count
                    for pattern, count in relation.items()
                }
                for k, relation in result.count_relations.items()
            },
            unfiltered_item_counts={
                decode(item): count
                for item, count in result.unfiltered_item_counts.items()
            },
            iterations=list(result.iterations),
            elapsed_seconds=result.elapsed_seconds,
        )
        with self._lock:
            hosted.decoded[id(result)] = (result, decoded)
            bound = max(1, hosted.miner.cache_info()["max_entries"])
            while len(hosted.decoded) > bound:
                hosted.decoded.popitem(last=False)
        return decoded

    # -- control plane --------------------------------------------------------------

    def _ping(self) -> dict[str, Any]:
        from repro import __version__

        return {
            "status": "draining" if self._scheduler.draining else "ok",
            "version": __version__,
            "datasets": list(self.dataset_names()),
        }

    def stats(self) -> dict[str, Any]:
        """Introspection: queue, caches, pools, per-engine traffic."""
        from repro import __version__

        cache_totals = {"entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        per_dataset: dict[str, Any] = {}
        for name, hosted in sorted(self._datasets.items()):
            info = hosted.miner.cache_info()
            for key in cache_totals:
                cache_totals[key] += info[key]
            current_catalog = (
                hosted.encoded_dataset.catalog
                if hosted.encoded_dataset is not None
                else hosted.catalog
            )
            per_dataset[name] = {
                "transactions": hosted.database.num_transactions,
                "sales_rows": hosted.database.num_sales_rows,
                "distinct_items": len(current_catalog),
                # The append counter result caches key on; None for
                # whole-file registrations (which cannot grow).
                "generation": getattr(
                    hosted.encoded_dataset, "generation", None
                ),
                "cache": info,
                "ingest": hosted.ingest,
            }
        lookups = cache_totals["hits"] + cache_totals["misses"]
        with self._lock:
            by_op = dict(sorted(self._by_op.items()))
            by_engine = dict(sorted(self._by_engine.items()))
        return {
            "server": {
                "version": __version__,
                "uptime_seconds": round(
                    time.monotonic() - self._started_monotonic, 3
                ),
                "datasets": per_dataset,
                "engines": list(available_engines()),
            },
            "queue": self._scheduler.stats(),
            "requests": {
                "total": sum(by_op.values()),
                "by_op": by_op,
                "by_engine": by_engine,
            },
            "cache": {
                **cache_totals,
                "hit_rate": (
                    round(cache_totals["hits"] / lookups, 4)
                    if lookups
                    else None
                ),
            },
            "pools": pool_stats(),
            "transport": transport_totals(),
        }

    def drain(self) -> dict[str, Any]:
        """Graceful shutdown: finish in-flight work, release every pool.

        Admission closes immediately (new submissions get the typed
        draining error); queued and in-flight requests complete and
        their waiting clients are answered; the shared worker pools are
        terminated; the spill root *and* the shared-memory namespace
        are audited (the report carries both leftover counts — zero
        unless an engine leaked) and, when service-owned, the spill
        root is removed; any leaked segments are unlinked after being
        counted.  Idempotent: repeat drains return the first report.
        """
        with self._drain_lock:
            if self._drain_report is not None:
                return self._drain_report
            self._scheduler.drain()
            shutdown_worker_pools()
            leftover = 0
            if self._spill_root.exists():
                leftover = sum(
                    1
                    for path in self._spill_root.rglob("*")
                    if path.is_file()
                )
                if self._owns_spill_root:
                    shutil.rmtree(self._spill_root, ignore_errors=True)
            # Incremental state is expected to persist between requests;
            # it is service-owned and simply removed, never counted as
            # a leak.
            shutil.rmtree(self._state_root, ignore_errors=True)
            leftover_segments = len(leaked_segment_names())
            if leftover_segments:  # count honestly, then still clean up
                cleanup_segments()
            self._drain_report = {
                "drained": True,
                "queue": self._scheduler.stats(),
                "leftover_spill_files": leftover,
                "leftover_shm_segments": leftover_segments,
                "pools": pool_stats(),
            }
            return self._drain_report

    close = drain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(self.dataset_names())
        return f"MiningService(datasets=[{names}])"
