"""Comparison algorithms: AIS (the paper's [4]), Apriori, brute force."""

from repro.baselines.ais import ais
from repro.baselines.apriori import apriori, generate_candidates
from repro.baselines.bruteforce import bruteforce
from repro.baselines.hashtree import HashTree

__all__ = ["HashTree", "ais", "apriori", "bruteforce", "generate_candidates"]
