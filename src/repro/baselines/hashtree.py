"""The Apriori hash tree for candidate support counting.

Agrawal & Srikant (VLDB '94, Section 2.1.2) count candidate itemsets per
transaction with a *hash tree*: interior nodes hash the next item of the
candidate; leaves hold small buckets of candidates.  Counting a
transaction walks the tree once per item position instead of testing
every candidate — the data structure that made Apriori practical and the
fair way to benchmark it against SETM.

The classic recursive structure:

* a **leaf** stores up to ``leaf_capacity`` candidates (with their
  counters); overflowing leaves split into interior nodes — unless the
  node is deeper than the itemset length, in which case the leaf just
  grows (candidates sharing a full prefix cannot be split apart);
* an **interior node** at depth ``d`` hashes item ``d`` of a candidate
  into one of ``fanout`` children;
* counting a transaction descends: at depth ``d`` every transaction item
  past the already-matched prefix is hashed and the subtree explored;
  at a leaf, each stored candidate is verified against the transaction.

All candidates in one tree must share one length ``k`` (Apriori counts
one level at a time).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.result import Pattern

__all__ = ["HashTree"]


class _Node:
    __slots__ = ("children", "candidates")

    def __init__(self) -> None:
        # Leaf until it splits: candidates is the bucket, children the
        # hash table (None while the node is a leaf).
        self.children: dict[int, _Node] | None = None
        self.candidates: list[Pattern] = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class HashTree:
    """A hash tree over equal-length candidate itemsets.

    Parameters
    ----------
    candidates:
        The candidate ``k``-itemsets (lexicographically ordered tuples,
        all the same length).
    fanout:
        Hash-table width of interior nodes.
    leaf_capacity:
        Bucket size before a leaf splits.
    """

    def __init__(
        self,
        candidates: Iterable[Pattern],
        *,
        fanout: int = 8,
        leaf_capacity: int = 16,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        if leaf_capacity < 1:
            raise ValueError(
                f"leaf_capacity must be positive, got {leaf_capacity}"
            )
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self._counts: dict[Pattern, int] = {}
        self.k = 0
        self._root = _Node()
        for candidate in candidates:
            candidate = tuple(candidate)
            if not candidate:
                raise ValueError("candidates must be non-empty")
            if self.k == 0:
                self.k = len(candidate)
            elif len(candidate) != self.k:
                raise ValueError(
                    f"mixed candidate lengths: {self.k} and {len(candidate)}"
                )
            if candidate not in self._counts:
                self._counts[candidate] = 0
                self._insert(self._root, candidate, depth=0)

    # -- construction ---------------------------------------------------------------

    def _hash(self, item) -> int:
        return hash(item) % self.fanout

    def _insert(self, node: _Node, candidate: Pattern, depth: int) -> None:
        while not node.is_leaf:
            assert node.children is not None
            node = node.children.setdefault(
                self._hash(candidate[depth]), _Node()
            )
            depth += 1
        node.candidates.append(candidate)
        # Split overflowing leaves while there is still an item to hash.
        if len(node.candidates) > self.leaf_capacity and depth < self.k:
            spilled = node.candidates
            node.candidates = []
            node.children = {}
            for entry in spilled:
                child = node.children.setdefault(
                    self._hash(entry[depth]), _Node()
                )
                child.candidates.append(entry)
            # A skewed hash may overflow one child; recurse on those.
            for child in node.children.values():
                if (
                    len(child.candidates) > self.leaf_capacity
                    and depth + 1 < self.k
                ):
                    regrow = child.candidates
                    child.candidates = []
                    for entry in regrow:
                        self._insert(child, entry, depth + 1)

    # -- counting --------------------------------------------------------------------

    def count_transaction(self, items: Sequence) -> None:
        """Add 1 to every candidate contained in ``items`` (sorted).

        A leaf can be reached through several hash paths of one
        transaction, so matches are gathered into a set first and each
        candidate is incremented at most once per transaction.
        """
        if not self.k or len(items) < self.k:
            return
        matched: set[Pattern] = set()
        self._collect(self._root, items, start=0, depth=0, matched=matched)
        for candidate in matched:
            self._counts[candidate] += 1

    def _collect(
        self,
        node: _Node,
        items: Sequence,
        start: int,
        depth: int,
        matched: set[Pattern],
    ) -> None:
        if node.is_leaf:
            for candidate in node.candidates:
                if candidate not in matched and self._contains(
                    items, candidate
                ):
                    matched.add(candidate)
            return
        assert node.children is not None
        # Hash each remaining item that could still leave enough items
        # to complete a k-candidate.
        remaining_needed = self.k - depth
        last_start = len(items) - remaining_needed
        for position in range(start, last_start + 1):
            child = node.children.get(self._hash(items[position]))
            if child is not None:
                self._collect(child, items, position + 1, depth + 1, matched)

    @staticmethod
    def _contains(items: Sequence, candidate: Pattern) -> bool:
        """Subset test of a sorted candidate against sorted items."""
        position = 0
        for item in candidate:
            while position < len(items) and items[position] < item:
                position += 1
            if position >= len(items) or items[position] != item:
                return False
            position += 1
        return True

    # -- results ---------------------------------------------------------------------

    def counts(self) -> dict[Pattern, int]:
        """Support counters accumulated so far (a copy)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)
