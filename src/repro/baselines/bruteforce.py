"""Exhaustive-enumeration oracle for differential testing.

Counts *every* itemset of every transaction up to ``max_length`` and keeps
those meeting minimum support.  Exponential in transaction length, so only
usable on small databases — which is exactly its job: the hypothesis-based
property tests compare SETM, AIS, Apriori, the nested-loop evaluator, the
SQL engines and the disk engine against this oracle on randomly generated
small inputs.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine

__all__ = ["bruteforce"]


@register_engine(
    "bruteforce",
    description="exhaustive oracle for differential testing (small inputs)",
)
def bruteforce(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
) -> MiningResult:
    """Enumerate all itemsets of all transactions and filter by support."""
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)

    longest = max((len(txn) for txn in database), default=0)
    if max_length is not None:
        longest = min(longest, max_length)

    counts: dict[Pattern, int] = {}
    for txn in database:
        for k in range(1, min(len(txn), longest) + 1):
            for subset in combinations(txn.items, k):
                counts[subset] = counts.get(subset, 0) + 1

    count_relations: dict[int, dict[Pattern, int]] = {}
    for pattern, count in counts.items():
        if count >= threshold:
            count_relations.setdefault(len(pattern), {})[pattern] = count

    iterations = [
        IterationStats(
            k=k,
            candidate_instances=sum(
                count for p, count in counts.items() if len(p) == k
            ),
            supported_instances=sum(count_relations.get(k, {}).values()),
            candidate_patterns=sum(1 for p in counts if len(p) == k),
            supported_patterns=len(count_relations.get(k, {})),
        )
        for k in range(1, longest + 1)
    ]

    return MiningResult(
        algorithm="bruteforce",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts=database.item_counts(),
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
    )
