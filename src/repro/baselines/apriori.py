"""Apriori baseline (Agrawal & Srikant, VLDB 1994).

Apriori is the algorithm that historically superseded SETM; the paper
under reproduction predates it by months and compares against AIS instead,
but no modern evaluation of SETM is credible without the Apriori
comparison, so the benchmark harness includes it as an ablation.

The implementation is the textbook level-wise scheme:

1. ``L_1`` = frequent items.
2. **Candidate generation**: join ``L_{k-1}`` with itself on the first
   ``k-2`` items (both in lexicographic order), then **prune** candidates
   with any infrequent ``(k-1)``-subset — the downward-closure step SETM
   lacks.
3. **Support counting**: one pass over the transactions per level.

Returned :class:`~repro.core.result.MiningResult` objects carry candidate
counts per level in ``extra["candidates_per_level"]`` so benchmarks can
show *why* Apriori wins: it counts far fewer candidates than SETM
materializes instances.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Literal

from repro.baselines.hashtree import HashTree
from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine

__all__ = ["apriori", "generate_candidates"]


def generate_candidates(frequent: set[Pattern], k: int) -> set[Pattern]:
    """Apriori-gen: join ``L_{k-1}`` with itself, then prune.

    Parameters
    ----------
    frequent:
        ``L_{k-1}`` as a set of lexicographically ordered tuples.
    k:
        Target candidate length (``len(pattern) + 1`` for every pattern in
        ``frequent``).
    """
    ordered = sorted(frequent)
    candidates: set[Pattern] = set()
    for i, left in enumerate(ordered):
        for right in ordered[i + 1 :]:
            # Join step: equal first k-2 items; ordered tails.
            if left[: k - 2] != right[: k - 2]:
                break  # sorted order: no further right shares the prefix
            candidate = left + (right[-1],)
            # Prune step: every (k-1)-subset must be frequent.
            if all(
                subset in frequent
                for subset in combinations(candidate, k - 1)
            ):
                candidates.add(candidate)
    return candidates


def _count_with_hash_tree(
    database: TransactionDatabase, candidates: set[Pattern], k: int
) -> dict[Pattern, int]:
    """One transaction pass over a hash tree (VLDB '94, §2.1.2)."""
    tree = HashTree(candidates)
    for txn in database:
        tree.count_transaction(txn.items)
    return {
        pattern: count for pattern, count in tree.counts().items() if count
    }


def _count_with_scan(
    database: TransactionDatabase, candidates: set[Pattern], k: int
) -> dict[Pattern, int]:
    """Naive per-transaction candidate scan (the structure-free baseline)."""
    counts: dict[Pattern, int] = {}
    for txn in database:
        item_set = set(txn.items)
        if len(item_set) < k:
            continue
        for candidate in candidates:
            if all(item in item_set for item in candidate):
                counts[candidate] = counts.get(candidate, 0) + 1
    return counts


@register_engine(
    "apriori",
    description="Apriori baseline (VLDB '94)",
    accepted_options=("counting",),
)
def apriori(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    counting: Literal["hashtree", "scan"] = "hashtree",
) -> MiningResult:
    """Mine frequent patterns with Apriori; result is SETM-comparable.

    ``counting`` selects the support-counting pass: ``"hashtree"`` (the
    original paper's data structure, default) or ``"scan"`` (test every
    candidate against every transaction — the strawman the hash tree
    exists to beat).  Both produce identical counts.
    """
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)
    counter = (
        _count_with_hash_tree if counting == "hashtree" else _count_with_scan
    )

    unfiltered_c1 = database.item_counts()
    l_current: dict[Pattern, int] = {
        (item,): count
        for item, count in unfiltered_c1.items()
        if count >= threshold
    }
    count_relations: dict[int, dict[Pattern, int]] = {1: dict(l_current)}
    candidates_per_level: dict[int, int] = {1: len(unfiltered_c1)}
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=database.num_sales_rows,
            supported_instances=database.num_sales_rows,
            candidate_patterns=len(unfiltered_c1),
            supported_patterns=len(l_current),
        )
    ]

    k = 1
    while l_current:
        k += 1
        if max_length is not None and k > max_length:
            break
        candidates = generate_candidates(set(l_current), k)
        candidates_per_level[k] = len(candidates)
        counts: dict[Pattern, int] = {}
        if candidates:
            counts = counter(database, candidates, k)
        instances = sum(counts.values())
        l_next = {
            pattern: count
            for pattern, count in counts.items()
            if count >= threshold
        }
        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=instances,
                supported_instances=sum(l_next.values()),
                candidate_patterns=len(candidates),
                supported_patterns=len(l_next),
            )
        )
        if l_next:
            count_relations[k] = l_next
        l_current = l_next

    return MiningResult(
        algorithm="apriori",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts=unfiltered_c1,
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
        extra={
            "candidates_per_level": candidates_per_level,
            "counting": counting,
        },
    )
