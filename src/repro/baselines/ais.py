"""AIS baseline — the algorithm of the paper's reference [4].

Agrawal, Imielinski & Swami, *Mining Association Rules Between Sets of
Items in Large Databases*, SIGMOD 1993.  This is the "tuple-oriented"
algorithm the SETM paper positions itself against ("the algorithm in [4]
still has a tuple-oriented flavor ... and is rather complex").

AIS makes one pass over the transactions per level.  During pass ``k``,
for every transaction it finds the frequent ``(k-1)``-patterns contained
in the transaction (the *frontier*), and extends each with every
lexicographically later item *of the transaction* — like SETM, without
Apriori's candidate pruning; unlike SETM, counting happens in per-pass
in-memory counters rather than materialized relations.

The original paper also describes an *estimation* step that skips
extensions unlikely to be frequent; like most reimplementations we take
the deterministic core (count everything, filter at end of pass), which
preserves AIS's candidate-explosion behaviour — the property benchmarks
care about.
"""

from __future__ import annotations

import time

from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine

__all__ = ["ais"]


@register_engine(
    "ais",
    description="AIS baseline (SIGMOD '93, the paper's reference [4])",
)
def ais(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
) -> MiningResult:
    """Mine frequent patterns with AIS; result is SETM-comparable."""
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)

    unfiltered_c1 = database.item_counts()
    frontier: dict[Pattern, int] = {
        (item,): count
        for item, count in unfiltered_c1.items()
        if count >= threshold
    }
    count_relations: dict[int, dict[Pattern, int]] = {1: dict(frontier)}
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=database.num_sales_rows,
            supported_instances=database.num_sales_rows,
            candidate_patterns=len(unfiltered_c1),
            supported_patterns=len(frontier),
        )
    ]

    k = 1
    while frontier:
        k += 1
        if max_length is not None and k > max_length:
            break
        counters: dict[Pattern, int] = {}
        instances = 0
        frontier_set = set(frontier)
        for txn in database:
            items = txn.items
            if len(items) < k:
                continue
            item_set = set(items)
            # Frontier patterns contained in this transaction...
            for pattern in frontier_set:
                if not all(item in item_set for item in pattern):
                    continue
                last = pattern[-1]
                # ...extended by every later item of the transaction.
                for item in items:
                    if item > last:
                        extended = pattern + (item,)
                        counters[extended] = counters.get(extended, 0) + 1
                        instances += 1
        l_next = {
            pattern: count
            for pattern, count in counters.items()
            if count >= threshold
        }
        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=instances,
                supported_instances=sum(l_next.values()),
                candidate_patterns=len(counters),
                supported_patterns=len(l_next),
            )
        )
        if l_next:
            count_relations[k] = l_next
        frontier = l_next

    return MiningResult(
        algorithm="ais",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts=unfiltered_c1,
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
    )
