"""The hypothetical retailing database of the Section 3.2 analysis.

    "There are 1000 different items that can be sold.  The data consists
    of 200,000 customer transactions.  The average number of items sold
    in a transaction is 10.  Thus, the relation SALES contains about
    2 million tuples.  To make the analysis tractable, we assume that the
    items have approximately equal probability of being sold."

Both the nested-loop analysis (Section 3.2) and the sort-merge analysis
(Section 4.3) are computed over this database.  The closed-form cost
models in :mod:`repro.analysis.cost_model` take its parameters directly;
:func:`generate_hypothetical_database` materializes actual transactions —
items uniform, exactly ``items_per_transaction`` per basket — so the
*empirical* disk experiments can validate the models on scaled-down
instances (the full 2M-tuple instance exists too, for the patient).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.transactions import TransactionDatabase

__all__ = [
    "HypotheticalConfig",
    "PAPER_HYPOTHETICAL",
    "generate_hypothetical_database",
]


@dataclass(frozen=True)
class HypotheticalConfig:
    """Parameters of the Section 3.2 hypothetical database."""

    num_items: int = 1_000
    num_transactions: int = 200_000
    items_per_transaction: int = 10
    seed: int = 32  # section number

    @property
    def num_sales_rows(self) -> int:
        """Tuples of SALES (the paper's "about 2 million")."""
        return self.num_transactions * self.items_per_transaction

    @property
    def item_probability(self) -> float:
        """Chance an item appears in a transaction ("1%" in the paper)."""
        return self.items_per_transaction / self.num_items

    def scaled(self, factor: float) -> "HypotheticalConfig":
        """Shrink transactions and catalogue together.

        Transaction length stays fixed at the paper's 10 items, so the
        per-transaction candidate blow-up (``C(10, k)`` subsets) — the
        quantity both analyses hinge on — is preserved at laptop size.
        The catalogue never shrinks below twice the basket size so
        transactions remain drawable without replacement.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return HypotheticalConfig(
            num_items=max(
                self.items_per_transaction * 2,
                round(self.num_items * factor),
            ),
            num_transactions=max(1, round(self.num_transactions * factor)),
            items_per_transaction=self.items_per_transaction,
            seed=self.seed,
        )


#: The exact configuration the paper analyzes.
PAPER_HYPOTHETICAL = HypotheticalConfig()


def generate_hypothetical_database(
    config: HypotheticalConfig | None = None, *, scale: float = 1.0
) -> TransactionDatabase:
    """Materialize the hypothetical database (uniform items, fixed size)."""
    config = config or PAPER_HYPOTHETICAL
    if scale != 1.0:
        config = config.scaled(scale)
    rng = random.Random(config.seed)
    population = range(1, config.num_items + 1)
    return TransactionDatabase(
        (tid, tuple(rng.sample(population, config.items_per_transaction)))
        for tid in range(1, config.num_transactions + 1)
    )
