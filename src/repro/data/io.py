"""Reading and writing transaction data.

Two interchange formats:

* **basket files** — one transaction per line, ``trans_id: item item ...``
  (the format the paper's main-memory implementation reads: "We
  implemented the algorithm to run in main memory and read a file of
  transactions");
* **SALES CSV** — one ``trans_id,item`` row per line with a header,
  mirroring the relational schema of Section 2, loadable straight into
  sqlite3 or the bundled SQL engine.

Items round-trip as strings unless they look like integers, in which case
they come back as ``int`` — matching the generators, which use integer
items throughout.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.transactions import (
    Item,
    TransactionDatabase,
    sales_rows_to_transactions,
)

__all__ = [
    "read_basket_file",
    "read_sales_csv",
    "write_basket_file",
    "write_sales_csv",
]


def _parse_item(token: str) -> Item:
    """Items that look like integers become integers; others stay strings."""
    try:
        return int(token)
    except ValueError:
        return token


def write_basket_file(database: TransactionDatabase, path: str | Path) -> None:
    """Write ``trans_id: item item ...`` lines, one per transaction."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for txn in database:
            items = " ".join(str(item) for item in txn.items)
            handle.write(f"{txn.trans_id}: {items}\n")


def read_basket_file(path: str | Path) -> TransactionDatabase:
    """Read a file produced by :func:`write_basket_file`.

    Blank lines and ``#`` comment lines are ignored; malformed lines raise
    ``ValueError`` with the offending line number.
    """
    path = Path(path)
    transactions = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, separator, tail = line.partition(":")
            if not separator:
                raise ValueError(
                    f"{path}:{line_no}: expected 'trans_id: items', got {line!r}"
                )
            try:
                trans_id = int(head.strip())
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_no}: bad trans_id {head.strip()!r}"
                ) from exc
            items = tuple(_parse_item(token) for token in tail.split())
            transactions.append((trans_id, items))
    return TransactionDatabase(transactions)


def write_sales_csv(database: TransactionDatabase, path: str | Path) -> None:
    """Write the ``SALES(trans_id, item)`` relation as CSV with a header."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trans_id", "item"])
        for trans_id, item in database.sales_rows():
            writer.writerow([trans_id, item])


def read_sales_csv(path: str | Path) -> TransactionDatabase:
    """Read a CSV produced by :func:`write_sales_csv` (header required)."""
    path = Path(path)
    rows: list[tuple[int, Item]] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [cell.strip() for cell in header[:2]] != [
            "trans_id",
            "item",
        ]:
            raise ValueError(
                f"{path}: expected header 'trans_id,item', got {header!r}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) < 2:
                raise ValueError(f"{path}:{line_no}: expected two columns")
            rows.append((int(row[0]), _parse_item(row[1])))
    return sales_rows_to_transactions(rows)
