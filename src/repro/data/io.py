"""Reading and writing transaction data.

Two interchange formats:

* **basket files** — one transaction per line, ``trans_id: item item ...``
  (the format the paper's main-memory implementation reads: "We
  implemented the algorithm to run in main memory and read a file of
  transactions");
* **SALES CSV** — one ``trans_id,item`` row per line with a header,
  mirroring the relational schema of Section 2, loadable straight into
  sqlite3 or the bundled SQL engine.

Items round-trip as strings unless they look like integers, in which case
they come back as ``int`` — matching the generators, which use integer
items throughout.

The *parsing* lives in :mod:`repro.data.formats` — these whole-file
readers are thin consumers of the same chunk decoders the streaming
ingest layer drives (a whole-file read is just a single-chunk read), so
a format quirk is fixed in exactly one place.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.transactions import (
    TransactionDatabase,
    sales_rows_to_transactions,
)
from repro.data.formats import parse_item as _parse_item  # noqa: F401  (re-export)
from repro.data.formats.basketfile import iter_basket_transactions
from repro.data.formats.csvfile import CsvChunkSource

__all__ = [
    "read_basket_file",
    "read_sales_csv",
    "write_basket_file",
    "write_sales_csv",
]


def write_basket_file(database: TransactionDatabase, path: str | Path) -> None:
    """Write ``trans_id: item item ...`` lines, one per transaction."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for txn in database:
            items = " ".join(str(item) for item in txn.items)
            handle.write(f"{txn.trans_id}: {items}\n")


def read_basket_file(path: str | Path) -> TransactionDatabase:
    """Read a file produced by :func:`write_basket_file`.

    Blank lines and ``#`` comment lines are ignored; malformed lines raise
    ``ValueError`` with the offending line number, and duplicate
    trans_ids fail in :class:`TransactionDatabase` construction.
    """
    return TransactionDatabase(iter_basket_transactions(path))


def write_sales_csv(database: TransactionDatabase, path: str | Path) -> None:
    """Write the ``SALES(trans_id, item)`` relation as CSV with a header."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trans_id", "item"])
        for trans_id, item in database.sales_rows():
            writer.writerow([trans_id, item])


def read_sales_csv(path: str | Path) -> TransactionDatabase:
    """Read a CSV produced by :func:`write_sales_csv` (header required).

    The header must *name* the ``trans_id`` and ``item`` columns; any
    extra columns are carried past undecoded (the decoder projects just
    the two named ones).  One code path with streaming ingest: this is
    the whole-file (single chunk) consumption of
    :class:`~repro.data.formats.csvfile.CsvChunkSource`.
    """
    rows: list[tuple[int, object]] = []
    for chunk in CsvChunkSource(path):
        rows.extend(zip(chunk.trans_ids, chunk.items))
    return sales_rows_to_transactions(rows)
