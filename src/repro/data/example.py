"""The worked example of Section 4.2 (Figures 1-3), reconstructed exactly.

Figure 1 shows 10 customer transactions of 3 items each.  The transaction
table below is reconstructed from the figure and validated against *every*
number the paper derives from it:

* ``C_1`` counts: ``|A|=6, |B|=4, |C|=4, |D|=6, |E|=4, |F|=3, |G|=2, |H|=1``
  (Section 5 uses ``|A|=6`` and ``|B|=4`` explicitly).
* ``C_2`` at 30% support: ``AB, AC, BC, DE, DF, EF`` — each with count 3
  (Figure 2), yielding exactly the eight Section 5 rules at 70% confidence.
* ``C_3`` at 30% support: ``DEF`` with count 3 (Figure 3), yielding the
  three 100%-confidence rules ``DE=>F, DF=>E, EF=>D``.
* The next iteration generates nothing, so the algorithm terminates with
  ``R_4`` empty.

``tests/core/test_paper_example.py`` asserts every one of these facts.
"""

from __future__ import annotations

from repro.core.transactions import TransactionDatabase

__all__ = [
    "PAPER_EXAMPLE_TRANSACTIONS",
    "PAPER_MINIMUM_SUPPORT",
    "PAPER_MINIMUM_CONFIDENCE",
    "PAPER_C2_RULE_LINES",
    "PAPER_C3_RULE_LINES",
    "paper_example_database",
]

#: The ten transactions of Figure 1 (trans_id, items).
PAPER_EXAMPLE_TRANSACTIONS: tuple[tuple[int, tuple[str, ...]], ...] = (
    (10, ("A", "B", "C")),
    (20, ("A", "B", "D")),
    (30, ("A", "B", "C")),
    (40, ("B", "C", "D")),
    (50, ("A", "C", "G")),
    (60, ("A", "D", "G")),
    (70, ("A", "E", "H")),
    (80, ("D", "E", "F")),
    (90, ("D", "E", "F")),
    (99, ("D", "E", "F")),
)

#: "We require a minimum support of 30%, i.e., 3 transactions."
PAPER_MINIMUM_SUPPORT = 0.30

#: "The desired confidence factor is 70%."
PAPER_MINIMUM_CONFIDENCE = 0.70

#: The Section 5 rule listing obtained from C_2, verbatim.
PAPER_C2_RULE_LINES: tuple[str, ...] = (
    "B ==> A, [75.0%, 30.0%]",
    "C ==> A, [75.0%, 30.0%]",
    "B ==> C, [75.0%, 30.0%]",
    "C ==> B, [75.0%, 30.0%]",
    "E ==> D, [75.0%, 30.0%]",
    "F ==> D, [100.0%, 30.0%]",
    "E ==> F, [75.0%, 30.0%]",
    "F ==> E, [100.0%, 30.0%]",
)

#: The Section 5 rule listing obtained from C_3, verbatim.
PAPER_C3_RULE_LINES: tuple[str, ...] = (
    "D E ==> F, [100.0%, 30.0%]",
    "D F ==> E, [100.0%, 30.0%]",
    "E F ==> D, [100.0%, 30.0%]",
)


def paper_example_database() -> TransactionDatabase:
    """Build the Figure 1 transaction database."""
    return TransactionDatabase(PAPER_EXAMPLE_TRANSACTIONS)
