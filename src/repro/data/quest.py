"""IBM Quest-style synthetic transaction generator (T·I·D workloads).

The association-rule literature that SETM competes in (AIS, SIGMOD '93;
Apriori, VLDB '94) evaluates on synthetic data from the IBM Quest
generator, parameterized as ``T<avg txn len> I<avg pattern len> D<num
txns>``.  The benchmark ablations of this package use the same workloads,
so the SETM-vs-Apriori comparison runs on the data style the follow-up
literature used to show Apriori winning.

This is a faithful reimplementation of the published scheme (Agrawal &
Srikant 1994, Section 4.1):

1. Draw ``num_potential_patterns`` "potentially large itemsets": lengths
   Poisson-distributed around ``avg_pattern_len``, items picked Zipf-ish,
   with a fraction of items carried over from the previous pattern for
   correlation.  Each pattern gets an exponential weight (its probability
   of being picked) and a corruption level.
2. Build each transaction by drawing patterns by weight and inserting
   them, *corrupting* each insertion by dropping items; a pattern that
   overflows the transaction's budgeted size is kept with 50% probability
   (so supersets of transactions exist, as in the original).

The classic workloads are exposed as helpers: :func:`t5_i2_d10k`,
:func:`t10_i4_d10k`, and :func:`t10_i4_d100k`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.transactions import TransactionDatabase

__all__ = [
    "QuestConfig",
    "generate_quest_dataset",
    "t5_i2_d10k",
    "t10_i4_d10k",
    "t10_i4_d100k",
]


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator (names follow the 1994 paper)."""

    num_transactions: int = 10_000  # |D|
    avg_transaction_len: float = 10.0  # |T|
    avg_pattern_len: float = 4.0  # |I|
    num_items: int = 1_000  # N
    num_potential_patterns: int = 2_000  # |L|
    correlation: float = 0.5
    corruption_mean: float = 0.5
    seed: int = 1994

    def label(self) -> str:
        """Workload label in the literature's notation, e.g. ``T10.I4.D10K``."""
        thousands = self.num_transactions / 1000
        d = f"{thousands:g}K"
        return (
            f"T{self.avg_transaction_len:g}."
            f"I{self.avg_pattern_len:g}.D{d}"
        )


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's poisson sampler (means here are small; fine and dependency-free)."""
    limit = math.exp(-mean)
    k, product = 0, rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def _draw_potential_patterns(
    config: QuestConfig, rng: random.Random
) -> tuple[list[tuple[int, ...]], list[float], list[float]]:
    """Step 1: the table of potentially large itemsets with weights."""
    patterns: list[tuple[int, ...]] = []
    weights: list[float] = []
    corruptions: list[float] = []
    previous: tuple[int, ...] = ()
    for _ in range(config.num_potential_patterns):
        length = max(1, _poisson(rng, config.avg_pattern_len - 1) + 1)
        chosen: set[int] = set()
        # Correlation: reuse a fraction of the previous pattern's items.
        if previous:
            reuse = min(len(previous), int(round(length * config.correlation)))
            chosen.update(rng.sample(previous, reuse))
        while len(chosen) < length:
            chosen.add(rng.randrange(config.num_items))
        pattern = tuple(sorted(chosen))
        patterns.append(pattern)
        weights.append(rng.expovariate(1.0))
        # Corruption level: clipped normal around the configured mean.
        corruptions.append(
            min(1.0, max(0.0, rng.gauss(config.corruption_mean, 0.1)))
        )
        previous = pattern
    total = sum(weights)
    weights = [weight / total for weight in weights]
    return patterns, weights, corruptions


def generate_quest_dataset(config: QuestConfig | None = None) -> TransactionDatabase:
    """Generate a Quest-style database (deterministic per seed)."""
    config = config or QuestConfig()
    rng = random.Random(config.seed)
    patterns, weights, corruptions = _draw_potential_patterns(config, rng)
    indices = list(range(len(patterns)))

    transactions: list[tuple[int, tuple[int, ...]]] = []
    for tid in range(1, config.num_transactions + 1):
        budget = max(1, _poisson(rng, config.avg_transaction_len))
        basket: set[int] = set()
        guard = 0
        while len(basket) < budget and guard < 50:
            guard += 1
            (index,) = rng.choices(indices, weights=weights)
            pattern = patterns[index]
            # Corrupt: keep dropping items while rand > corruption level.
            kept = list(pattern)
            while kept and rng.random() < corruptions[index]:
                kept.pop(rng.randrange(len(kept)))
            if not kept:
                continue
            if len(basket) + len(kept) > budget and basket:
                # Overflowing pattern: keep it in half the cases, else stop.
                if rng.random() < 0.5:
                    basket.update(kept)
                break
            basket.update(kept)
        if not basket:
            basket.add(rng.randrange(config.num_items))
        transactions.append((tid, tuple(sorted(basket))))
    return TransactionDatabase(transactions)


def t5_i2_d10k(*, seed: int = 1994) -> TransactionDatabase:
    """The T5.I2.D10K workload (small baskets, short patterns)."""
    return generate_quest_dataset(
        QuestConfig(avg_transaction_len=5, avg_pattern_len=2, seed=seed)
    )


def t10_i4_d10k(*, seed: int = 1994) -> TransactionDatabase:
    """The T10.I4.D10K workload (the literature's default)."""
    return generate_quest_dataset(
        QuestConfig(avg_transaction_len=10, avg_pattern_len=4, seed=seed)
    )


def t10_i4_d100k(*, seed: int = 1994) -> TransactionDatabase:
    """The T10.I4.D100K workload (the 1994 paper's headline scale)."""
    return generate_quest_dataset(
        QuestConfig(
            num_transactions=100_000,
            avg_transaction_len=10,
            avg_pattern_len=4,
            seed=seed,
        )
    )
