"""Data sets: the paper's example, calibrated retail data, Quest
workloads, the hypothetical analysis database, file I/O, and the
streaming chunked-ingest layer (:mod:`repro.data.ingest` /
:mod:`repro.data.formats`)."""

from repro.data.example import (
    PAPER_C2_RULE_LINES,
    PAPER_C3_RULE_LINES,
    PAPER_EXAMPLE_TRANSACTIONS,
    PAPER_MINIMUM_CONFIDENCE,
    PAPER_MINIMUM_SUPPORT,
    paper_example_database,
)
from repro.data.hypothetical import (
    PAPER_HYPOTHETICAL,
    HypotheticalConfig,
    generate_hypothetical_database,
)
from repro.data.formats import (
    ChunkSource,
    ColumnChunk,
    DecodeStats,
    available_formats,
    detect_format,
    open_chunk_source,
)
from repro.data.ingest import (
    EncodedDataset,
    IngestStats,
    load_dataset,
    stream_encode,
)
from repro.data.io import (
    read_basket_file,
    read_sales_csv,
    write_basket_file,
    write_sales_csv,
)
from repro.data.quest import (
    QuestConfig,
    generate_quest_dataset,
    t5_i2_d10k,
    t10_i4_d10k,
    t10_i4_d100k,
)
from repro.data.retail import (
    PAPER_NUM_ITEMS,
    PAPER_NUM_SALES_ROWS,
    PAPER_NUM_TRANSACTIONS,
    RetailConfig,
    generate_retail_dataset,
)

__all__ = [
    "ChunkSource",
    "ColumnChunk",
    "DecodeStats",
    "EncodedDataset",
    "HypotheticalConfig",
    "IngestStats",
    "PAPER_C2_RULE_LINES",
    "PAPER_C3_RULE_LINES",
    "PAPER_EXAMPLE_TRANSACTIONS",
    "PAPER_HYPOTHETICAL",
    "PAPER_MINIMUM_CONFIDENCE",
    "PAPER_MINIMUM_SUPPORT",
    "PAPER_NUM_ITEMS",
    "PAPER_NUM_SALES_ROWS",
    "PAPER_NUM_TRANSACTIONS",
    "QuestConfig",
    "RetailConfig",
    "available_formats",
    "detect_format",
    "generate_hypothetical_database",
    "generate_quest_dataset",
    "load_dataset",
    "open_chunk_source",
    "paper_example_database",
    "read_basket_file",
    "read_sales_csv",
    "stream_encode",
    "t10_i4_d100k",
    "t10_i4_d10k",
    "t5_i2_d10k",
    "write_basket_file",
    "write_sales_csv",
]
