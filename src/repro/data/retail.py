"""Synthetic retail data calibrated to the paper's evaluation data set.

Section 6 evaluates SETM on proprietary "sales data obtained from a large
retailing company".  The data set itself is long gone, but the paper pins
down its aggregate shape precisely, and those aggregates are the *only*
properties its measurements depend on:

* 46,873 customer transactions;
* ``|R_1| = 115,568`` rows of ``SALES`` (mean basket ≈ 2.47 items);
* ``|C_1| = 59`` distinct items;
* the longest frequent pattern at 0.1% support has 3 items
  ("the maximum size of the rules is 3, hence in all cases |R_4| = 0"),
  while at 0.05% support 4-item patterns appear ("if the minimum support
  is reduced to 0.05%, we obtain rules with 3 items in the antecedent");
* ``|R_i|`` and ``|C_i|`` decay with iteration for large minimum support,
  with the drop delayed (``|C_i|`` humped) for small minimum support.

:func:`generate_retail_dataset` reproduces all of these with a seeded
mixture model: Zipf-distributed single-item purchases plus a small
catalogue of planted "bundles" (co-purchase patterns) whose target
frequencies straddle the paper's support levels — including three-item
bundles above 5% support (so ``C_3`` survives every measured minsup) and
four-item bundles between 0.05% and 0.1% (frequent at the former, not the
latter).  A final adjustment pass nudges the row count to exactly match
``|R_1|`` and guarantees all 59 items occur.

The defaults produce the paper-scale database in a few seconds;
``scale`` shrinks everything proportionally for quick tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.transactions import TransactionDatabase

__all__ = [
    "PAPER_NUM_TRANSACTIONS",
    "PAPER_NUM_SALES_ROWS",
    "PAPER_NUM_ITEMS",
    "RetailConfig",
    "generate_retail_dataset",
]

#: "a total of 46,873 customer transactions" (Section 6).
PAPER_NUM_TRANSACTIONS = 46_873

#: "|R_1| = 115,568 in all cases" (Section 6.1).
PAPER_NUM_SALES_ROWS = 115_568

#: "|C_1| = 59" for every minimum support (Section 6.1).
PAPER_NUM_ITEMS = 59

#: Planted bundles: (items, target fraction of transactions).  Frequencies
#: straddle the measured support grid {0.05, 0.1, 0.5, 1, 2, 5}%:
#: three-item bundles above 5% keep C_3 non-empty at every measured
#: minsup; the four-item bundles sit between 0.05% and 0.1%, so 4-patterns
#: are frequent only below the paper's 0.1% floor.
#: Bundle members live in the low-popularity half of the catalogue so that
#: random co-purchases of *popular* items never push a 4-item set past the
#: 0.1% threshold; shared members (31, 33, 42, 44, 49) give the overlap
#: structure real co-purchase data exhibits.
_BUNDLES: tuple[tuple[tuple[int, ...], float], ...] = (
    ((30, 31), 0.060),
    ((32, 33), 0.040),
    ((34, 35), 0.025),
    ((36, 37), 0.012),
    ((38, 39), 0.006),
    ((40, 41), 0.003),
    ((31, 42, 43), 0.055),
    ((44, 45, 46), 0.020),
    ((33, 47, 48), 0.008),
    ((49, 50, 51), 0.004),
    ((52, 53, 54), 0.0015),
    ((55, 56, 57, 58), 0.0008),
    ((42, 44, 49, 59), 0.0007),
)

#: Basket-size distribution for non-bundle purchases: mean ≈ 2.48 with a
#: tail to 8 items; combined with bundle insertions it lands the corpus
#: mean on the paper's ≈ 2.47 without post-hoc padding.
_LENGTH_WEIGHTS: tuple[tuple[int, float], ...] = (
    (1, 0.33),
    (2, 0.27),
    (3, 0.18),
    (4, 0.11),
    (5, 0.06),
    (6, 0.03),
    (7, 0.015),
    (8, 0.005),
)


@dataclass(frozen=True)
class RetailConfig:
    """Knobs of the retail generator (defaults reproduce the paper)."""

    num_transactions: int = PAPER_NUM_TRANSACTIONS
    target_sales_rows: int | None = PAPER_NUM_SALES_ROWS
    num_items: int = PAPER_NUM_ITEMS
    seed: int = 19950306  # ICDE'95 conference week
    zipf_exponent: float = 0.70
    bundles: tuple[tuple[tuple[int, ...], float], ...] = _BUNDLES
    length_weights: tuple[tuple[int, float], ...] = _LENGTH_WEIGHTS

    def scaled(self, scale: float) -> "RetailConfig":
        """A proportionally smaller (or larger) configuration."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        rows = (
            None
            if self.target_sales_rows is None
            else max(self.num_items, round(self.target_sales_rows * scale))
        )
        return RetailConfig(
            num_transactions=max(1, round(self.num_transactions * scale)),
            target_sales_rows=rows,
            num_items=self.num_items,
            seed=self.seed,
            zipf_exponent=self.zipf_exponent,
            bundles=self.bundles,
            length_weights=self.length_weights,
        )


def _zipf_weights(num_items: int, exponent: float) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, num_items + 1)]


def generate_retail_dataset(
    config: RetailConfig | None = None, *, scale: float = 1.0
) -> TransactionDatabase:
    """Generate the calibrated retail database (deterministic per seed).

    Parameters
    ----------
    config:
        Generator configuration; defaults to the paper-matched settings.
    scale:
        Convenience shrink factor applied to ``config`` (0.1 gives a
        ~4,700-transaction database with the same structure).
    """
    config = config or RetailConfig()
    if scale != 1.0:
        config = config.scaled(scale)
    rng = random.Random(config.seed)

    items = list(range(1, config.num_items + 1))
    weights = _zipf_weights(config.num_items, config.zipf_exponent)
    lengths = [length for length, _ in config.length_weights]
    length_weights = [weight for _, weight in config.length_weights]

    bundle_items = [list(bundle) for bundle, _ in config.bundles]
    bundle_probability = sum(freq for _, freq in config.bundles)
    bundle_weights = [freq for _, freq in config.bundles]

    transactions: list[set[int]] = []
    for _ in range(config.num_transactions):
        basket: set[int] = set()
        if rng.random() < bundle_probability:
            (chosen,) = rng.choices(bundle_items, weights=bundle_weights)
            basket.update(chosen)
            # A pair purchase occasionally carries an impulse extra; longer
            # bundles stay pure so no 4-item pattern crosses 0.1% support.
            if len(chosen) == 2 and rng.random() < 0.30:
                basket.update(rng.choices(items, weights=weights))
        else:
            (length,) = rng.choices(lengths, weights=length_weights)
            while len(basket) < length:
                basket.update(rng.choices(items, weights=weights))
        transactions.append(basket)

    _ensure_all_items_present(transactions, items, rng)
    if config.target_sales_rows is not None:
        _adjust_row_count(
            transactions, items, weights, config.target_sales_rows, rng
        )

    return TransactionDatabase(
        (tid, tuple(basket))
        for tid, basket in enumerate(transactions, start=1)
    )


def _ensure_all_items_present(
    transactions: list[set[int]], items: list[int], rng: random.Random
) -> None:
    """Guarantee every catalogue item occurs at least once (|C_1| exact)."""
    present = set().union(*transactions) if transactions else set()
    for item in items:
        if item not in present:
            target = rng.randrange(len(transactions))
            transactions[target].add(item)


def _adjust_row_count(
    transactions: list[set[int]],
    items: list[int],
    weights: list[float],
    target_rows: int,
    rng: random.Random,
) -> None:
    """Nudge total rows to exactly ``target_rows``.

    Surplus rows are removed from multi-item baskets (never reducing an
    item's transaction count to zero); deficits are filled by adding
    popularity-weighted items to random baskets.  The perturbation is a
    fraction of a percent of the corpus, far below anything the support
    grid can detect.
    """
    item_support: dict[int, int] = {item: 0 for item in items}
    total = 0
    for basket in transactions:
        total += len(basket)
        for item in basket:
            item_support[item] += 1

    guard = 0
    while total != target_rows and guard < 10 * target_rows:
        guard += 1
        if total < target_rows:
            basket = transactions[rng.randrange(len(transactions))]
            (item,) = rng.choices(items, weights=weights)
            if item not in basket:
                basket.add(item)
                item_support[item] += 1
                total += 1
        else:
            basket = transactions[rng.randrange(len(transactions))]
            if len(basket) <= 1:
                continue
            item = rng.choice(sorted(basket))
            if item_support[item] <= 1:
                continue
            basket.discard(item)
            item_support[item] -= 1
            total -= 1
