"""The Arrow IPC chunk decoder: memory-mapped, projected-buffer reads.

An Arrow IPC file is memory-mapped, so bytes are only paged in when a
column's buffers are actually touched; selecting just the projected
``trans_id`` and ``item`` columns therefore reads (and decodes) only
their buffers.  ``bytes_read`` sums the projected columns' buffer
sizes per record batch — the honest counterpart of Parquet's
compressed-chunk accounting.

Needs the optional ``pyarrow`` dependency; constructing the source
without it raises a typed :class:`~repro.errors.InvalidConfigError`
with an install hint.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.data.formats import (
    ChunkSource,
    ColumnChunk,
    PROJECTED_COLUMNS,
    register_decoder,
    require_pyarrow,
)

__all__ = ["ArrowChunkSource"]


def _buffer_bytes(array) -> int:
    """Total buffer bytes backing one Arrow array (validity + offsets + data)."""
    return sum(
        buffer.size for buffer in array.buffers() if buffer is not None
    )


@register_decoder
class ArrowChunkSource(ChunkSource):
    """Chunked ``(trans_id, item)`` batches from an Arrow IPC file."""

    format = "arrow"

    def __init__(self, path, *, chunk_rows: int | None = None) -> None:
        super().__init__(path, chunk_rows=chunk_rows)
        require_pyarrow("arrow input")

    def _decode(self) -> Iterator[ColumnChunk]:
        import pyarrow as pa

        stats = self.stats
        stats.bytes_total = self.path.stat().st_size
        with pa.memory_map(str(self.path), "r") as source:
            reader = pa.ipc.open_file(source)
            names = reader.schema.names
            missing = [
                column
                for column in PROJECTED_COLUMNS
                if column not in names
            ]
            if missing:
                raise ValueError(
                    f"{self.path}: expected columns 'trans_id' and "
                    f"'item', got {names!r}"
                )
            stats.columns_total = len(names)
            stats.columns_read = len(PROJECTED_COLUMNS)
            tid_index = names.index("trans_id")
            item_index = names.index("item")
            limit = self.chunk_rows
            for batch_index in range(reader.num_record_batches):
                batch = reader.get_batch(batch_index)
                tid_array = batch.column(tid_index)
                item_array = batch.column(item_index)
                read = _buffer_bytes(tid_array) + _buffer_bytes(item_array)
                stats.bytes_read += read
                stats.bytes_decoded += read
                step = limit or batch.num_rows or 1
                for offset in range(0, batch.num_rows, step):
                    tid_slice = tid_array.slice(offset, step)
                    item_slice = item_array.slice(offset, step)
                    trans_ids = [
                        int(value) for value in tid_slice.to_pylist()
                    ]
                    yield self._emit(trans_ids, item_slice.to_pylist())
