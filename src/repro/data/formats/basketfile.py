"""The basket chunk decoder: ``trans_id: item item ...`` lines.

The parsing lives in :func:`iter_basket_transactions`, shared with the
whole-file reader :func:`repro.data.io.read_basket_file` (one parser,
two consumers).  A basket line *is* exactly the projected data — no
extra columns exist — so read and decoded bytes both equal the file
size.

A basket transaction may legitimately be empty (``"7:"`` with no
items); it contributes no ``(trans_id, item)`` rows but still counts
toward the support denominator, so the chunk source surfaces such
trans_ids through :attr:`ColumnChunk.empty_trans_ids`.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from pathlib import Path

from repro.data.formats import (
    ChunkSource,
    ColumnChunk,
    parse_item,
    register_decoder,
)

__all__ = ["BasketChunkSource", "iter_basket_transactions"]


def iter_basket_transactions(
    path: str | os.PathLike,
) -> Iterator[tuple[int, tuple]]:
    """Parse a basket file into ``(trans_id, items)`` pairs, in file order.

    Blank lines and ``#`` comment lines are ignored; malformed lines
    raise ``ValueError`` with the offending line number.  Items are not
    de-duplicated or sorted here — that is the consumer's contract
    (:class:`TransactionDatabase` construction, or the streaming
    encoder's per-transaction normalization).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, separator, tail = line.partition(":")
            if not separator:
                raise ValueError(
                    f"{path}:{line_no}: expected 'trans_id: items', "
                    f"got {line!r}"
                )
            try:
                trans_id = int(head.strip())
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_no}: bad trans_id {head.strip()!r}"
                ) from exc
            yield trans_id, tuple(parse_item(token) for token in tail.split())


@register_decoder
class BasketChunkSource(ChunkSource):
    """Chunked ``(trans_id, item)`` batches from a basket file.

    Chunk boundaries fall only *between* transactions — a basket line
    is parsed whole — so a chunk may exceed ``chunk_rows`` by at most
    one transaction's length.
    """

    format = "basket"

    def _decode(self) -> Iterator[ColumnChunk]:
        stats = self.stats
        stats.bytes_total = self.path.stat().st_size
        stats.bytes_read = stats.bytes_total
        stats.bytes_decoded = stats.bytes_total
        stats.columns_total = 2
        stats.columns_read = 2
        limit = self.chunk_rows
        trans_ids: list[int] = []
        items: list = []
        empties: list[int] = []
        for trans_id, txn_items in iter_basket_transactions(self.path):
            if not txn_items:
                empties.append(trans_id)
            else:
                trans_ids.extend([trans_id] * len(txn_items))
                items.extend(txn_items)
            if limit is not None and len(trans_ids) >= limit:
                yield self._emit(trans_ids, items, tuple(empties))
                trans_ids = []
                items = []
                empties = []
        if trans_ids or empties:
            yield self._emit(trans_ids, items, tuple(empties))
