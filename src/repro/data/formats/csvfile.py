"""The CSV chunk decoder: stdlib :mod:`csv`, projected-field decoding.

A ``SALES`` CSV needs a header naming (at least) the two projected
columns ``trans_id`` and ``item``; any other columns are carried past
without ever being converted to Python values, and the saving shows up
in ``stats.bytes_decoded`` versus ``stats.bytes_total``.  Row-major
formats cannot skip bytes on disk, so ``bytes_read`` equals the file
size — the *read* saving belongs to the columnar formats.
"""

from __future__ import annotations

import csv
from collections.abc import Iterator

from repro.data.formats import (
    ChunkSource,
    ColumnChunk,
    parse_item,
    register_decoder,
)

__all__ = ["CsvChunkSource"]


@register_decoder
class CsvChunkSource(ChunkSource):
    """Chunked ``(trans_id, item)`` batches from a headered CSV."""

    format = "csv"

    def _decode(self) -> Iterator[ColumnChunk]:
        stats = self.stats
        stats.bytes_total = self.path.stat().st_size
        stats.bytes_read = stats.bytes_total
        limit = self.chunk_rows
        with self.path.open("r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            names = (
                [cell.strip() for cell in header]
                if header is not None
                else []
            )
            if "trans_id" not in names or "item" not in names:
                raise ValueError(
                    f"{self.path}: expected header 'trans_id,item', "
                    f"got {header!r}"
                )
            tid_col = names.index("trans_id")
            item_col = names.index("item")
            stats.columns_total = len(names)
            stats.columns_read = 2
            width = max(tid_col, item_col)
            trans_ids: list[int] = []
            items: list = []
            for line_no, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) <= width:
                    raise ValueError(
                        f"{self.path}:{line_no}: expected two columns"
                    )
                raw_tid = row[tid_col]
                raw_item = row[item_col]
                try:
                    trans_id = int(raw_tid)
                except ValueError:
                    raise ValueError(
                        f"{self.path}:{line_no}: bad trans_id {raw_tid!r}"
                    ) from None
                trans_ids.append(trans_id)
                items.append(parse_item(raw_item))
                # The two projected cells plus their separators are all
                # this decoder ever converts; extra columns stay raw.
                stats.bytes_decoded += len(raw_tid) + len(raw_item) + 2
                if limit is not None and len(trans_ids) >= limit:
                    yield self._emit(trans_ids, items)
                    trans_ids = []
                    items = []
            if trans_ids:
                yield self._emit(trans_ids, items)
