"""Per-format chunk decoders with column-projection pushdown.

The streaming ingest layer (:mod:`repro.data.ingest`) never reads a
whole input file: it pulls ``(trans_id, item)`` **column batches** from
a :class:`ChunkSource` and encodes them one bounded chunk at a time.
This package holds the sources, one module per format:

* ``csv`` — stdlib :mod:`csv`; the file must be scanned byte-for-byte
  (row-major format), but only the ``trans_id`` and ``item`` fields are
  ever *decoded* — extra columns pass through untouched and the
  decode-byte saving is recorded;
* ``basket`` — the paper-shaped ``trans_id: item item ...`` lines;
  every byte is projected data, so read and decoded bytes coincide;
* ``parquet`` / ``arrow`` — real column-projection pushdown behind the
  optional ``pyarrow`` dependency: only the two needed columns' chunks
  are read at all, and the per-source stats record the byte saving
  (``bytes_read_reduction``) against the full file.

Every source accounts its own I/O in a :class:`DecodeStats`: total file
bytes, bytes actually read, bytes decoded into Python values, chunk and
row counts.  Formats without ``pyarrow`` installed fail at
:func:`open_chunk_source` time with a typed
:class:`~repro.errors.InvalidConfigError` carrying an install hint —
never midway through an ingest.

The whole-file readers of :mod:`repro.data.io` delegate here (a whole
file is just a single chunk), so each format is parsed in exactly one
place.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

from repro.errors import InvalidConfigError

__all__ = [
    "ChunkSource",
    "ColumnChunk",
    "DecodeStats",
    "available_formats",
    "detect_format",
    "open_chunk_source",
    "parse_item",
    "register_decoder",
    "require_pyarrow",
]

#: The two columns every decoder projects: the paper's SALES schema.
PROJECTED_COLUMNS = ("trans_id", "item")


def parse_item(token: str):
    """Items that look like integers become integers; others stay strings."""
    try:
        return int(token)
    except ValueError:
        return token


@dataclass
class ColumnChunk:
    """One decoded batch of ``SALES`` rows, as parallel columns.

    ``trans_ids[i]`` pairs with ``items[i]``.  ``empty_trans_ids``
    carries transactions that contributed *no* rows (possible in the
    basket format, impossible in row-per-sale formats); they still
    count toward the support denominator, so the encoder must not lose
    them.
    """

    trans_ids: list[int]
    items: list[Any]
    empty_trans_ids: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.trans_ids)


@dataclass
class DecodeStats:
    """Per-source I/O accounting, filled in while the source is iterated.

    ``bytes_read`` is what the decoder actually fetched from the file
    (for columnar formats with projection pushdown this is less than
    ``bytes_total``); ``bytes_decoded`` is what it turned into Python
    values (for row formats with projected *fields* this is less than
    ``bytes_read``).  The reductions are the honest savings claims the
    benchmark records.
    """

    format: str
    path: str
    bytes_total: int = 0
    bytes_read: int = 0
    bytes_decoded: int = 0
    chunks: int = 0
    rows: int = 0
    columns_total: int = 0
    columns_read: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def bytes_read_reduction(self) -> float:
        """Fraction of the file *not* read, thanks to projection pushdown."""
        if self.bytes_total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.bytes_read / self.bytes_total)

    @property
    def bytes_decoded_reduction(self) -> float:
        """Fraction of the file never decoded into Python values."""
        if self.bytes_total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.bytes_decoded / self.bytes_total)

    def as_dict(self) -> dict[str, Any]:
        return {
            "format": self.format,
            "path": self.path,
            "bytes_total": self.bytes_total,
            "bytes_read": self.bytes_read,
            "bytes_decoded": self.bytes_decoded,
            "bytes_read_reduction": round(self.bytes_read_reduction, 4),
            "bytes_decoded_reduction": round(
                self.bytes_decoded_reduction, 4
            ),
            "chunks": self.chunks,
            "rows": self.rows,
            "columns_total": self.columns_total,
            "columns_read": self.columns_read,
            **self.extra,
        }

    def reset(self) -> None:
        """Zero the counters (a source iterated twice restarts its tally)."""
        self.bytes_total = 0
        self.bytes_read = 0
        self.bytes_decoded = 0
        self.chunks = 0
        self.rows = 0
        self.extra = {}


class ChunkSource:
    """Base of every decoder: iterate :class:`ColumnChunk` batches.

    Subclasses set the class attribute ``format`` and implement
    ``_decode()``; iteration resets and then fills :attr:`stats`.
    ``chunk_rows=None`` means "one chunk for the whole file" — the
    whole-file readers of :mod:`repro.data.io` use exactly that.
    """

    format: ClassVar[str] = ""

    def __init__(
        self, path: str | os.PathLike, *, chunk_rows: int | None = None
    ) -> None:
        if chunk_rows is not None and (
            isinstance(chunk_rows, bool)
            or not isinstance(chunk_rows, int)
            or chunk_rows < 1
        ):
            raise InvalidConfigError(
                f"chunk_rows must be a positive integer or None; "
                f"got {chunk_rows!r}"
            )
        self.path = Path(path)
        self.chunk_rows = chunk_rows
        self.stats = DecodeStats(format=self.format, path=str(self.path))

    def __iter__(self) -> Iterator[ColumnChunk]:
        self.stats.reset()
        return self._decode()

    def _decode(self) -> Iterator[ColumnChunk]:
        raise NotImplementedError

    def _emit(
        self,
        trans_ids: list[int],
        items: list[Any],
        empty_trans_ids: tuple[int, ...] = (),
    ) -> ColumnChunk:
        self.stats.chunks += 1
        self.stats.rows += len(trans_ids)
        return ColumnChunk(trans_ids, items, empty_trans_ids)


_DECODERS: dict[str, type[ChunkSource]] = {}


def register_decoder(cls: type[ChunkSource]) -> type[ChunkSource]:
    """Class decorator: register ``cls`` under its ``format`` name."""
    if not cls.format:
        raise ValueError("a ChunkSource subclass needs a format name")
    _DECODERS[cls.format] = cls
    return cls


def available_formats() -> tuple[str, ...]:
    """Registered format names, plus the ``auto`` sniffing pseudo-format."""
    return ("auto", *sorted(_DECODERS))


def _import_pyarrow():
    """Seam for tests: the raw import, monkeypatchable independently."""
    import pyarrow

    return pyarrow


def require_pyarrow(feature: str):
    """Import and return :mod:`pyarrow`, or fail typed with an install hint."""
    try:
        return _import_pyarrow()
    except ImportError:
        raise InvalidConfigError(
            f"{feature} needs the optional dependency pyarrow "
            "(pip install pyarrow); without it, convert the input to "
            "CSV or basket format"
        ) from None


#: File-magic prefixes checked before extensions: renamed files still
#: route to the right decoder.
_MAGIC = (
    (b"PAR1", "parquet"),
    (b"ARROW1", "arrow"),
)

_EXTENSIONS = {
    ".csv": "csv",
    ".parquet": "parquet",
    ".pq": "parquet",
    ".arrow": "arrow",
    ".arrows": "arrow",
    ".feather": "arrow",
    ".ipc": "arrow",
    ".basket": "basket",
}


def detect_format(path: str | os.PathLike) -> str:
    """Sniff a file's format: magic bytes first, then extension.

    Anything unrecognized is treated as a basket file — the package's
    historical default for extensionless transaction files.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            head = handle.read(8)
    except OSError:
        head = b""
    for magic, fmt in _MAGIC:
        if head.startswith(magic):
            return fmt
    return _EXTENSIONS.get(path.suffix.lower(), "basket")


def open_chunk_source(
    path: str | os.PathLike,
    *,
    input_format: str | None = "auto",
    chunk_rows: int | None = None,
) -> ChunkSource:
    """A :class:`ChunkSource` over ``path`` in the requested format.

    ``input_format`` of ``"auto"`` (or ``None``) sniffs via
    :func:`detect_format`.  Unknown formats and formats whose optional
    dependency is missing raise :class:`InvalidConfigError` here, before
    any decoding starts.
    """
    if input_format is None or input_format == "auto":
        input_format = detect_format(path)
    decoder = _DECODERS.get(input_format)
    if decoder is None:
        choices = ", ".join(available_formats())
        raise InvalidConfigError(
            f"unknown input format {input_format!r}; choose from: {choices}"
        )
    return decoder(path, chunk_rows=chunk_rows)


# Import for side effect: each module registers its decoder.
from repro.data.formats import arrowfile as _arrowfile  # noqa: E402,F401
from repro.data.formats import basketfile as _basketfile  # noqa: E402,F401
from repro.data.formats import csvfile as _csvfile  # noqa: E402,F401
from repro.data.formats import parquetfile as _parquetfile  # noqa: E402,F401
