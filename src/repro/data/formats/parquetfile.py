"""The Parquet chunk decoder: real column-projection pushdown.

Parquet stores each column's pages contiguously per row group, so a
reader asking for ``columns=["trans_id", "item"]`` genuinely skips the
other columns' bytes on disk.  The source prices that saving from the
file's own metadata: ``bytes_read`` is the footer plus the projected
columns' compressed chunk sizes; ``bytes_total`` is the file size — the
difference is the ``bytes_read_reduction`` the ingest benchmark
enforces (>= 30% on a file with extra columns).

Needs the optional ``pyarrow`` dependency; constructing the source
without it raises a typed :class:`~repro.errors.InvalidConfigError`
with an install hint (see :func:`repro.data.formats.require_pyarrow`).
Values arrive with their stored types — a Parquet string column is not
re-parsed into integers the way the text formats' tokens are.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.data.formats import (
    ChunkSource,
    ColumnChunk,
    PROJECTED_COLUMNS,
    register_decoder,
    require_pyarrow,
)

__all__ = ["ParquetChunkSource"]

#: Batch size when the caller does not bound chunks: large enough to
#: amortize per-batch overhead, small enough to stay well under typical
#: ingest budgets.
DEFAULT_BATCH_ROWS = 65536


@register_decoder
class ParquetChunkSource(ChunkSource):
    """Chunked ``(trans_id, item)`` batches from a Parquet file."""

    format = "parquet"

    def __init__(self, path, *, chunk_rows: int | None = None) -> None:
        super().__init__(path, chunk_rows=chunk_rows)
        require_pyarrow("parquet input")

    def _decode(self) -> Iterator[ColumnChunk]:
        import pyarrow.parquet as pq

        stats = self.stats
        stats.bytes_total = self.path.stat().st_size
        parquet_file = pq.ParquetFile(self.path)
        names = parquet_file.schema_arrow.names
        missing = [
            column for column in PROJECTED_COLUMNS if column not in names
        ]
        if missing:
            raise ValueError(
                f"{self.path}: expected columns 'trans_id' and 'item', "
                f"got {names!r}"
            )
        stats.columns_total = len(names)
        stats.columns_read = len(PROJECTED_COLUMNS)

        # Projection pushdown, priced from the metadata: the reader
        # fetches the footer plus only the projected columns' chunks.
        metadata = parquet_file.metadata
        all_columns = 0
        projected = 0
        uncompressed = 0
        for group_index in range(metadata.num_row_groups):
            group = metadata.row_group(group_index)
            for column_index in range(group.num_columns):
                column = group.column(column_index)
                all_columns += column.total_compressed_size
                if column.path_in_schema in PROJECTED_COLUMNS:
                    projected += column.total_compressed_size
                    uncompressed += column.total_uncompressed_size
        overhead = max(0, stats.bytes_total - all_columns)
        stats.bytes_read = overhead + projected
        stats.bytes_decoded = uncompressed

        batch_rows = self.chunk_rows or DEFAULT_BATCH_ROWS
        for batch in parquet_file.iter_batches(
            batch_size=batch_rows, columns=list(PROJECTED_COLUMNS)
        ):
            trans_ids = [
                int(value) for value in batch.column("trans_id").to_pylist()
            ]
            items = batch.column("item").to_pylist()
            yield self._emit(trans_ids, items)
