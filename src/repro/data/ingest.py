"""Streaming ingest: out-of-core dictionary encode + chunked index build.

The whole-file path materializes a labelled
:class:`~repro.core.transactions.TransactionDatabase`, *then* encodes
it, *then* builds the ``SALES`` columns — three O(dataset) residents
before a single mining iteration runs.  :func:`stream_encode` collapses
that to one bounded pass: it pulls ``(trans_id, item)`` column batches
from a :class:`~repro.data.formats.ChunkSource`, dictionary-encodes
each transaction as it completes, and appends straight onto the flat
``R_1`` columns, so peak ingest memory is **O(chunk + catalog)** —
and, when a ``memory_budget_bytes`` is given, the growing encoded item
column is spilled through the existing
:class:`~repro.core.partitioning.Partition` chunk machinery whenever it
reaches half the budget.

Two problems make this more than a loop:

* **The sorted-id invariant.**  :class:`ItemCatalog` assigns ids in
  sorted label order (numeric id order must equal lexicographic label
  order — the packed-key machinery depends on it), but a single pass
  sees labels in arrival order.  The encoder therefore uses
  *provisional* first-appearance ids
  (:class:`~repro.core.transactions.CatalogBuilder`) and applies the
  final ``provisional -> sorted`` remap at the end: one vectorized
  gather over the resident column, one streamed rewrite per spilled
  chunk.  Each transaction's labels are sorted *before* provisional
  encoding, so the remapped rows land in exactly the whole-file order —
  the product is byte-identical to
  :meth:`InstanceRelation.sales_from_database`.
* **The ordering contract.**  A bounded pass cannot regroup rows, so
  input must arrive grouped by ascending ``trans_id`` (what
  ``write_sales_csv``/``write_basket_file`` and any clustered
  relational scan produce).  Violations raise a typed
  :class:`~repro.errors.IngestError` naming the whole-file readers as
  the fallback for unsorted data.

The product, :class:`EncodedDataset`, carries the catalog plus the
physical ``R_1`` columns and quacks enough like a database
(``num_transactions``, ``absolute_support``) that engines flagged
``streaming_ingest`` mine it directly — no Python transaction objects
ever exist.  For every other engine, :meth:`EncodedDataset.database`
materializes the classic object form.
"""

from __future__ import annotations

import os
import tempfile
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.columns import (
    COLUMN_TYPECODE,
    InstanceRelation,
    SalesIndex,
    read_chunks,
)
from repro.core.partitioning import Partition
from repro.core.transactions import (
    ItemCatalog,
    Transaction,
    TransactionDatabase,
    absolute_support_threshold,
)
from repro.data.formats import ChunkSource, open_chunk_source
from repro.errors import IngestError

try:  # pragma: no cover - exercised via the numpy/stdlib matrix
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "EncodedDataset",
    "IngestStats",
    "load_dataset",
    "stream_encode",
]

#: Default decoder batch size when the caller does not choose one.
DEFAULT_CHUNK_ROWS = 65536


def _column(values=()) -> array:
    return array(COLUMN_TYPECODE, values)


@dataclass
class IngestStats:
    """Telemetry of one streaming ingest, for ``extra["ingest"]``.

    Decoder-side counters (bytes, chunks, rows) come from the source's
    :class:`~repro.data.formats.DecodeStats`; the encode-side counters
    (transactions, distinct items, spill traffic) are this module's.
    """

    format: str
    path: str
    chunk_rows: int | None
    chunks: int = 0
    rows: int = 0
    transactions: int = 0
    distinct_items: int = 0
    bytes_total: int = 0
    bytes_read: int = 0
    bytes_decoded: int = 0
    bytes_read_reduction: float = 0.0
    bytes_decoded_reduction: float = 0.0
    columns_total: int = 0
    columns_read: int = 0
    memory_budget_bytes: int | None = None
    spilled_chunks: int = 0
    spill_bytes_written: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "format": self.format,
            "path": self.path,
            "chunk_rows": self.chunk_rows,
            "chunks": self.chunks,
            "rows": self.rows,
            "transactions": self.transactions,
            "distinct_items": self.distinct_items,
            "bytes_total": self.bytes_total,
            "bytes_read": self.bytes_read,
            "bytes_decoded": self.bytes_decoded,
            "bytes_read_reduction": self.bytes_read_reduction,
            "bytes_decoded_reduction": self.bytes_decoded_reduction,
            "columns_total": self.columns_total,
            "columns_read": self.columns_read,
            "memory_budget_bytes": self.memory_budget_bytes,
            "spilled_chunks": self.spilled_chunks,
            "spill_bytes_written": self.spill_bytes_written,
            **self.extra,
        }


class EncodedDataset:
    """A dictionary-encoded ``SALES`` relation, ready to mine.

    Physically: the :class:`ItemCatalog`, the flat encoded item column
    (resident, or as spilled :class:`Partition` chunks until first
    use), and the ``(trans_ids, run_lengths)`` run-length framing.
    ``run_lengths[i]`` rows of ``items`` belong to ``trans_ids[i]``;
    a zero run length is an empty transaction (it still counts toward
    the support denominator).

    The duck-typed surface the shared Figure-4 loop needs —
    ``num_transactions`` and ``absolute_support`` — is provided here,
    so engines whose kernels accept the columnar form
    (``streaming_ingest`` capability) mine this object directly;
    :meth:`database` bridges to every other engine by materializing
    Python transaction objects.
    """

    __slots__ = (
        "catalog",
        "base",
        "run_lengths",
        "trans_ids",
        "stats",
        "generation",
        "_items",
        "_partitions",
        "_num_rows",
        "_spill_root",
        "_owns_spill_root",
    )

    def __init__(
        self,
        catalog: ItemCatalog,
        *,
        items: array | None,
        partitions: list[Partition] | None = None,
        run_lengths: array,
        trans_ids: array,
        stats: IngestStats | None = None,
        num_rows: int | None = None,
        spill_root: Path | None = None,
        owns_spill_root: bool = False,
        generation: int = 0,
    ) -> None:
        self.catalog = catalog
        self.base = len(catalog) + 1
        self.run_lengths = run_lengths
        self.trans_ids = trans_ids
        self.stats = stats
        #: Monotonic append counter: 0 for a fresh encode, bumped by
        #: every :meth:`append_chunks`.  Result caches key on it so an
        #: append can never serve pre-append patterns.
        self.generation = generation
        self._items = items
        self._partitions = list(partitions or [])
        if num_rows is None:
            num_rows = (len(items) if items is not None else 0) + sum(
                partition.num_rows for partition in self._partitions
            )
        self._num_rows = num_rows
        self._spill_root = spill_root
        self._owns_spill_root = owns_spill_root

    # -- database-shaped surface ---------------------------------------------------

    @property
    def num_transactions(self) -> int:
        """Support denominator: every transaction, including empty ones."""
        return len(self.trans_ids)

    @property
    def num_sales_rows(self) -> int:
        """``|R_1|``: total encoded ``(trans_id, item)`` rows."""
        return self._num_rows

    def absolute_support(self, minimum_support: float | int) -> int:
        """Same semantics as :meth:`TransactionDatabase.absolute_support`."""
        return absolute_support_threshold(
            minimum_support, self.num_transactions
        )

    # -- the physical columns ------------------------------------------------------

    @property
    def items(self) -> array:
        """The encoded item column (merges spilled chunks on first access).

        Materializing consumes the spill files — they are scratch, and
        once their rows are resident there is nothing left to read from
        them — so the ingest spill directory is cleaned up here.
        """
        if self._partitions:
            merged = _column()
            for partition in self._partitions:
                for chunk in read_chunks(partition.read_bytes()):
                    keys = chunk.keys
                    if isinstance(keys, array):
                        merged.extend(keys)
                    else:
                        merged.extend(_column(keys))
                partition.delete()
            if self._items is not None:
                merged.extend(self._items)
            self._items = merged
            self._partitions = []
            self._cleanup_spill_root()
        if self._items is None:
            self._items = _column()
        return self._items

    def sales_index(self) -> SalesIndex:
        """The extension index over this dataset's ``R_1`` columns."""
        return SalesIndex(
            self.items,
            base=self.base,
            run_lengths=self.run_lengths,
            trans_ids=self.trans_ids,
        )

    def sales_relation(self) -> InstanceRelation:
        """``R_1`` as an :class:`InstanceRelation`, index attached.

        Byte-identical to what
        :meth:`InstanceRelation.sales_from_database` builds from the
        equivalent whole-file database — the equivalence suite holds
        it to that.
        """
        return InstanceRelation.sales_from_columns(
            self.items,
            base=self.base,
            run_lengths=self.run_lengths,
            trans_ids=self.trans_ids,
        )

    def iter_item_chunks(self):
        """Yield the encoded item column in its physical pieces.

        Spilled chunks stream one at a time without merging — the seam
        the incremental-mining work builds on.  Does not consume the
        spill files.
        """
        for partition in self._partitions:
            for chunk in read_chunks(partition.read_bytes()):
                keys = chunk.keys
                yield keys if isinstance(keys, array) else _column(keys)
        if self._items is not None and (self._partitions or self._items):
            yield self._items

    # -- appends -------------------------------------------------------------------

    def append_chunks(
        self,
        source: ChunkSource,
        *,
        memory_budget_bytes: int | None = None,
    ) -> dict[str, Any]:
        """Stream-encode ``source`` onto the end of this dataset, in place.

        The delta pass reuses the whole streaming-encode discipline:
        new transactions are provisionally encoded against a
        :class:`CatalogBuilder` pre-seeded with the existing labels,
        and the final sorted remap restores the id-order invariant for
        the *union* catalog.  When new labels sort between existing
        ones, the existing encoded columns (resident tail and spilled
        chunks alike) are re-gathered through the ``old id -> new id``
        map, so the result is byte-identical to a from-scratch encode
        of the concatenated input.  Appended trans_ids must be strictly
        greater than every existing one (the same ascending-groups
        contract a single file obeys); violations raise a typed
        :class:`~repro.errors.IngestError` before anything mutates.

        Bumps :attr:`generation` and returns the append telemetry
        (also recorded under ``stats.extra["appends"]``).
        """
        base_last = (
            int(self.trans_ids[-1]) if len(self.trans_ids) else None
        )
        encoder = _StreamEncoder(memory_budget_bytes, self._spill_root)
        encoder.file_prefix = f"append-{self.generation + 1:03d}-r1"
        encoder.last_tid = base_last
        encoder.row_offset = self._num_rows
        old_items = len(self.catalog)
        try:
            # Seed every existing label so the rebuilt catalog covers the
            # union even when the delta never mentions an old item.
            encoder.builder.encode(self.catalog.labels())
            for chunk in source:
                encoder.add_rows(chunk.trans_ids, chunk.items)
                if chunk.empty_trans_ids:
                    encoder.empty_tids.extend(chunk.empty_trans_ids)
                encoder.maybe_spill()
            encoder.finish_groups()
            encoder.merge_empty_transactions()
            if (
                base_last is not None
                and len(encoder.trans_ids)
                and encoder.trans_ids[0] <= base_last
            ):
                # Grouped rows fail inside add_rows; this catches empty
                # transactions merged in front of the delta.
                raise IngestError(
                    f"appended trans_ids must be strictly greater than "
                    f"the existing ones; trans_id {encoder.trans_ids[0]!r} "
                    f"arrived after {base_last!r}"
                )
            catalog = encoder.remap()
        except BaseException:
            for partition in encoder.partitions:
                partition.delete()
            if encoder.owns_spill_root and encoder.spill_root is not None:
                try:
                    encoder.spill_root.rmdir()
                except OSError:
                    pass
            raise

        # From here on only infallible column splices mutate the dataset.
        old_to_new = [0] + [
            catalog.id_of(self.catalog.label_of(old_id))
            for old_id in range(1, old_items + 1)
        ]
        identity = old_to_new == list(range(old_items + 1))
        if not identity:
            if self._items:
                self._items = _remap_column(self._items, old_to_new)
            for partition in self._partitions:
                pieces = []
                for chunk in read_chunks(partition.read_bytes()):
                    remapped = InstanceRelation(
                        None,
                        None,
                        last_sid=chunk.last_sid,
                        keys=_remap_column(chunk.keys, old_to_new),
                        k=1,
                    )
                    pieces.append(remapped.to_chunk_bytes())
                partition.path.write_bytes(b"".join(pieces))
        if encoder.spill_root is not None and self._spill_root is None:
            self._spill_root = encoder.spill_root
            self._owns_spill_root = encoder.owns_spill_root
        if encoder.partitions and self._items:
            # Physical order is partitions-then-resident; a resident base
            # tail must therefore spill before delta partitions land.
            relation = InstanceRelation(
                None,
                None,
                last_sid=range(
                    self._num_rows - len(self._items), self._num_rows
                ),
                keys=self._items,
                k=1,
            )
            path = (
                self._spill_root
                / f"append-{self.generation + 1:03d}-base-tail.chunks"
            )
            path.write_bytes(relation.to_chunk_bytes())
            self._partitions.append(
                Partition(1, num_rows=len(self._items), path=path)
            )
            self._items = None
        self._partitions.extend(encoder.partitions)
        if self._items is None:
            self._items = encoder.items
        else:
            self._items.extend(encoder.items)
        self.trans_ids.extend(encoder.trans_ids)
        self.run_lengths.extend(encoder.run_lengths)
        delta_rows = encoder.row_offset + len(encoder.items) - self._num_rows
        self._num_rows = encoder.row_offset + len(encoder.items)
        self.catalog = catalog
        self.base = len(catalog) + 1
        self.generation += 1

        decode_stats = source.stats
        info = {
            "generation": self.generation,
            "path": decode_stats.path,
            "format": decode_stats.format,
            "rows": delta_rows,
            "transactions": len(encoder.trans_ids),
            "new_items": len(catalog) - old_items,
            "remapped_base_ids": not identity,
            "spilled_chunks": encoder.spilled_chunks,
        }
        if self.stats is not None:
            stats = self.stats
            stats.chunks += decode_stats.chunks
            stats.rows += decode_stats.rows
            stats.transactions = self.num_transactions
            stats.distinct_items = len(catalog)
            stats.bytes_total += decode_stats.bytes_total
            stats.bytes_read += decode_stats.bytes_read
            stats.bytes_decoded += decode_stats.bytes_decoded
            stats.spilled_chunks += encoder.spilled_chunks
            stats.spill_bytes_written += encoder.spill_bytes_written
            stats.extra.setdefault("appends", []).append(info)
        return info

    # -- bridges to the object world -----------------------------------------------

    def database(self, *, decoded: bool = False) -> TransactionDatabase:
        """Materialize the classic :class:`TransactionDatabase` form.

        With ``decoded=False`` items are the catalog ids (what
        ``database.encoded()`` would have produced); with
        ``decoded=True`` they are the original labels — byte-identical
        to the whole-file reader's output, which is what lets engines
        without the ``streaming_ingest`` capability mine a streamed
        file transparently.
        """
        items = self.items
        label_of = self.catalog.label_of
        transactions = []
        offset = 0
        for trans_id, run_length in zip(self.trans_ids, self.run_lengths):
            encoded = tuple(items[offset : offset + run_length])
            offset += run_length
            transactions.append(
                Transaction(
                    trans_id,
                    tuple(map(label_of, encoded)) if decoded else encoded,
                )
            )
        return TransactionDatabase(transactions)

    def close(self) -> None:
        """Delete any remaining spill chunks and the owned spill root."""
        for partition in self._partitions:
            partition.delete()
        self._partitions = []
        self._cleanup_spill_root()

    def _cleanup_spill_root(self) -> None:
        if self._owns_spill_root and self._spill_root is not None:
            try:
                self._spill_root.rmdir()
            except OSError:
                pass
            self._spill_root = None

    def __repr__(self) -> str:
        return (
            f"EncodedDataset(transactions={self.num_transactions}, "
            f"rows={self.num_sales_rows}, items={len(self.catalog)}, "
            f"spilled={len(self._partitions)})"
        )


class _StreamEncoder:
    """The bounded single-pass encoder behind :func:`stream_encode`."""

    def __init__(
        self,
        memory_budget_bytes: int | None,
        spill_dir: str | os.PathLike | None,
    ) -> None:
        if memory_budget_bytes is not None and (
            isinstance(memory_budget_bytes, bool)
            or not isinstance(memory_budget_bytes, int)
            or memory_budget_bytes < 1
        ):
            raise IngestError(
                "memory_budget_bytes must be a positive integer or None; "
                f"got {memory_budget_bytes!r}"
            )
        self.builder = ItemCatalog.builder()
        self.items = _column()
        self.run_lengths = _column()
        self.trans_ids = _column()
        self.partitions: list[Partition] = []
        self.empty_tids: list[int] = []
        self.pending_tid: int | None = None
        self.pending_labels: list = []
        self.last_tid: int | None = None
        self.row_offset = 0
        self.spilled_chunks = 0
        self.spill_bytes_written = 0
        # Spill at half the budget: the remap pass (and a mid-flight
        # chunk) must fit beside the resident column inside 2x budget.
        self.budget = memory_budget_bytes
        self.spill_threshold = (
            max(8, memory_budget_bytes // 2)
            if memory_budget_bytes is not None
            else None
        )
        self.spill_dir_option = spill_dir
        self.spill_root: Path | None = None
        self.owns_spill_root = False
        # Spill-file name prefix; append passes use a generation-tagged
        # prefix so delta chunks never collide with the base files in a
        # shared spill root.
        self.file_prefix = "ingest-r1"

    # -- transaction grouping ------------------------------------------------------

    def add_rows(self, trans_ids, labels) -> None:
        pending_tid = self.pending_tid
        pending_labels = self.pending_labels
        for trans_id, label in zip(trans_ids, labels):
            if trans_id != pending_tid:
                if pending_tid is not None:
                    self._flush_group(pending_tid, pending_labels)
                self._check_ascending(trans_id)
                pending_tid = trans_id
                pending_labels = []
            pending_labels.append(label)
        self.pending_tid = pending_tid
        self.pending_labels = pending_labels

    def _check_ascending(self, trans_id: int) -> None:
        if self.last_tid is not None and trans_id <= self.last_tid:
            raise IngestError(
                f"streaming ingest needs rows grouped by ascending "
                f"trans_id; trans_id {trans_id!r} arrived after "
                f"{self.last_tid!r} (for unsorted data use the "
                f"whole-file readers in repro.data.io)"
            )

    def _flush_group(self, trans_id: int, labels: list) -> None:
        try:
            ordered = sorted(set(labels))
        except TypeError as exc:
            names = sorted({type(label).__name__ for label in labels})
            raise TypeError(
                "transaction items must be mutually comparable; found "
                "mixed types: " + ", ".join(names)
            ) from exc
        self.items.extend(self.builder.encode(ordered))
        self.run_lengths.append(len(ordered))
        self.trans_ids.append(trans_id)
        self.last_tid = trans_id

    def finish_groups(self) -> None:
        if self.pending_tid is not None:
            self._flush_group(self.pending_tid, self.pending_labels)
            self.pending_tid = None
            self.pending_labels = []

    # -- spilling ------------------------------------------------------------------

    def maybe_spill(self) -> None:
        if (
            self.spill_threshold is None
            or len(self.items) * self.items.itemsize < self.spill_threshold
        ):
            return
        self._spill_resident()

    def _spill_resident(self) -> None:
        if not self.items:
            return
        if self.spill_root is None:
            if self.spill_dir_option is None:
                self.spill_root = Path(
                    tempfile.mkdtemp(prefix="repro-ingest-")
                )
                self.owns_spill_root = True
            else:
                self.spill_root = Path(self.spill_dir_option)
                self.spill_root.mkdir(parents=True, exist_ok=True)
        relation = InstanceRelation(
            None,
            None,
            last_sid=range(self.row_offset, self.row_offset + len(self.items)),
            keys=self.items,
            k=1,
        )
        blob = relation.to_chunk_bytes()
        path = (
            self.spill_root
            / f"{self.file_prefix}-{len(self.partitions):06d}.chunks"
        )
        path.write_bytes(blob)
        self.partitions.append(
            Partition(1, num_rows=len(self.items), path=path)
        )
        self.spilled_chunks += 1
        self.spill_bytes_written += len(blob)
        self.row_offset += len(self.items)
        self.items = _column()

    # -- finalization --------------------------------------------------------------

    def merge_empty_transactions(self) -> None:
        """Fold zero-item transactions into the run-length framing.

        Both sequences are ascending (the ordering contract), so a
        two-way merge reproduces exactly the whole-file order; any
        duplicate or out-of-order empty trans_id fails typed here.
        """
        if not self.empty_tids:
            return
        for previous, current in zip(self.empty_tids, self.empty_tids[1:]):
            if current <= previous:
                raise IngestError(
                    f"streaming ingest needs rows grouped by ascending "
                    f"trans_id; empty trans_id {current!r} arrived "
                    f"after {previous!r}"
                )
        merged_tids = _column()
        merged_runs = _column()
        empties = iter(self.empty_tids)
        empty_tid = next(empties, None)
        for trans_id, run_length in zip(self.trans_ids, self.run_lengths):
            while empty_tid is not None and empty_tid < trans_id:
                merged_tids.append(empty_tid)
                merged_runs.append(0)
                empty_tid = next(empties, None)
            if empty_tid is not None and empty_tid == trans_id:
                raise IngestError(
                    f"duplicate trans_id {empty_tid!r}: appears both "
                    "empty and with items"
                )
            merged_tids.append(trans_id)
            merged_runs.append(run_length)
        while empty_tid is not None:
            merged_tids.append(empty_tid)
            merged_runs.append(0)
            empty_tid = next(empties, None)
        self.trans_ids = merged_tids
        self.run_lengths = merged_runs

    def remap(self) -> ItemCatalog:
        """Resolve provisional ids to the final sorted-order catalog ids."""
        catalog, remap = self.builder.build()
        self.items = _remap_column(self.items, remap)
        for partition in self.partitions:
            data = partition.read_bytes()
            pieces = []
            for chunk in read_chunks(data):
                remapped = InstanceRelation(
                    None,
                    None,
                    last_sid=chunk.last_sid,
                    keys=_remap_column(chunk.keys, remap),
                    k=1,
                )
                pieces.append(remapped.to_chunk_bytes())
            blob = b"".join(pieces)
            partition.path.write_bytes(blob)
            self.spill_bytes_written += len(blob)
        return catalog


def _remap_column(values, remap: list[int]) -> array:
    """Gather ``remap[value]`` for every value, as a fresh int64 column."""
    if _np is not None:
        remap_np = _np.asarray(remap, dtype=_np.int64)
        if isinstance(values, array):
            source = _np.frombuffer(values, dtype=_np.int64)
        else:
            source = _np.asarray(values, dtype=_np.int64)
        out = _column()
        out.frombytes(remap_np[source].tobytes())
        return out
    return _column(map(remap.__getitem__, values))


def stream_encode(
    source: ChunkSource,
    *,
    memory_budget_bytes: int | None = None,
    spill_dir: str | os.PathLike | None = None,
) -> EncodedDataset:
    """Dictionary-encode a chunked source into an :class:`EncodedDataset`.

    One pass over the input: transactions are normalized (labels
    de-duplicated and sorted) and provisionally encoded as they
    complete; with a ``memory_budget_bytes`` the growing encoded column
    spills as :class:`Partition` chunks whenever it reaches half the
    budget, so peak resident ingest state is O(chunk + catalog).  The
    final remap pass (provisional first-appearance ids to sorted
    catalog ids) restores the :class:`ItemCatalog` id-order invariant,
    making the product byte-identical to the whole-file encode.

    Raises
    ------
    IngestError
        Rows not grouped by ascending ``trans_id``, a duplicate group,
        or an invalid ``memory_budget_bytes``.
    """
    encoder = _StreamEncoder(memory_budget_bytes, spill_dir)
    for chunk in source:
        encoder.add_rows(chunk.trans_ids, chunk.items)
        if chunk.empty_trans_ids:
            encoder.empty_tids.extend(chunk.empty_trans_ids)
        encoder.maybe_spill()
    encoder.finish_groups()
    encoder.merge_empty_transactions()
    catalog = encoder.remap()

    decode_stats = source.stats
    stats = IngestStats(
        format=decode_stats.format,
        path=decode_stats.path,
        chunk_rows=source.chunk_rows,
        chunks=decode_stats.chunks,
        rows=decode_stats.rows,
        transactions=len(encoder.trans_ids),
        distinct_items=len(catalog),
        bytes_total=decode_stats.bytes_total,
        bytes_read=decode_stats.bytes_read,
        bytes_decoded=decode_stats.bytes_decoded,
        bytes_read_reduction=round(decode_stats.bytes_read_reduction, 4),
        bytes_decoded_reduction=round(
            decode_stats.bytes_decoded_reduction, 4
        ),
        columns_total=decode_stats.columns_total,
        columns_read=decode_stats.columns_read,
        memory_budget_bytes=memory_budget_bytes,
        spilled_chunks=encoder.spilled_chunks,
        spill_bytes_written=encoder.spill_bytes_written,
    )
    return EncodedDataset(
        catalog,
        items=encoder.items,
        partitions=encoder.partitions,
        run_lengths=encoder.run_lengths,
        trans_ids=encoder.trans_ids,
        stats=stats,
        num_rows=encoder.row_offset + len(encoder.items),
        spill_root=encoder.spill_root,
        owns_spill_root=encoder.owns_spill_root,
    )


def load_dataset(
    path: str | os.PathLike,
    *,
    input_format: str | None = "auto",
    chunk_rows: int | None = DEFAULT_CHUNK_ROWS,
    memory_budget_bytes: int | None = None,
    spill_dir: str | os.PathLike | None = None,
) -> EncodedDataset:
    """Stream-encode a transaction file in one call.

    ``input_format`` of ``"auto"`` sniffs magic bytes and extension
    (see :func:`repro.data.formats.detect_format`); ``parquet`` and
    ``arrow`` need the optional ``pyarrow`` dependency and fail typed
    without it.
    """
    source = open_chunk_source(
        path, input_format=input_format, chunk_rows=chunk_rows
    )
    return stream_encode(
        source,
        memory_budget_bytes=memory_budget_bytes,
        spill_dir=spill_dir,
    )
