"""Merge-scan join and sequential-scan counting over sorted heap files.

These are the two scan-shaped primitives of Figure 4's loop body:

* :func:`merge_scan_join` — ``R'_k := merge-scan(R_{k-1}, R_1)``: a single
  forward pass over both sorted files, pairing rows with equal ``trans_id``
  and extending each ``R_{k-1}`` row with every strictly greater item of
  the same transaction (the ``q.item > p.item_{k-1}`` band predicate).

* :func:`counting_scan` — "generating the counts involves a simple
  sequential scan over R'_k": one pass over a file sorted on its item
  columns, emitting ``(pattern, count)`` per group.

* :func:`filter_scan` — "deleting the tuples from R'_k that do not meet the
  minimum support involves simple table look-ups on relation C_k": one more
  sequential pass, writing qualifying rows to a fresh file.

All three touch pages strictly in file order, so the simulated disk books
them as sequential accesses — the premise of the Section 4.3 cost formula.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterator

from repro.core.columns import count_sorted_rows
from repro.storage.heapfile import HeapFile
from repro.storage.page import PageFormat

__all__ = ["counting_scan", "filter_scan", "merge_scan_join"]


def _grouped_by_tid(
    file: HeapFile,
) -> Iterator[tuple[int, list[tuple[int, ...]]]]:
    """Yield ``(trans_id, rows)`` groups from a file sorted by trans_id."""
    group: list[tuple[int, ...]] = []
    current: int | None = None
    for record in file.scan():
        tid = record[0]
        if tid != current:
            if group:
                yield current, group  # type: ignore[misc]
            group = []
            current = tid
        group.append(record)
    if group:
        yield current, group  # type: ignore[misc]


def merge_scan_join(r_prev: HeapFile, sales: HeapFile) -> HeapFile:
    """Produce ``R'_k`` from ``R_{k-1}`` and ``R_1`` (both trans_id-sorted).

    ``r_prev`` holds ``(trans_id, item_1..item_{k-1})`` rows sorted on
    ``(trans_id, item_1, ..., item_{k-1})``; ``sales`` holds
    ``(trans_id, item)`` rows sorted on ``(trans_id, item)``.  The output
    file has ``k + 1`` fields and inherits both sort orders' consequence:
    rows come out ordered by ``(trans_id, item_1, ..., item_k)``.

    The band predicate is resolved the columnar kernel's way (see
    :func:`repro.core.columns.suffix_extend`): within a transaction the
    ``SALES`` items form a sorted run, so a row's extensions are exactly
    the run's *suffix* past its last item — one :func:`bisect_right`
    per ``R_{k-1}`` row instead of a pure-Python comparison per row
    *pair*.  Output rows and their order are identical to the
    row-at-a-time pairing, so the page-access accounting of the
    Section 4.3 analysis is unchanged.
    """
    out_fmt = PageFormat(r_prev.format.fields + 1)
    output = HeapFile(r_prev.pool, out_fmt)

    left = _grouped_by_tid(r_prev)
    right = _grouped_by_tid(sales)
    left_entry = next(left, None)
    right_entry = next(right, None)
    while left_entry is not None and right_entry is not None:
        left_tid, left_rows = left_entry
        right_tid, right_rows = right_entry
        if left_tid < right_tid:
            left_entry = next(left, None)
        elif left_tid > right_tid:
            right_entry = next(right, None)
        else:
            # The transaction's item run, ascending by the sales sort
            # order; each left row extends with the run's suffix of
            # strictly greater items.
            items = [sales_row[1] for sales_row in right_rows]
            for row in left_rows:
                for item in items[bisect_right(items, row[-1]):]:
                    output.append(row + (item,))
            left_entry = next(left, None)
            right_entry = next(right, None)
    return output


def counting_scan(r_prime: HeapFile) -> list[tuple[tuple[int, ...], int]]:
    """Group counts from a file sorted on its item columns.

    Returns ``(pattern, count)`` pairs in pattern order.  The result is the
    (unfiltered) ``C_k`` relation; the paper keeps it in memory ("it is
    usually small enough to be kept in memory being the result of an
    aggregation query"), and so do we — no pages are charged for ``C_k``.

    The grouping itself is the shared
    :func:`repro.core.columns.count_sorted_rows` — the same sequential
    run scan the in-memory tuple engine uses, so the two engines cannot
    drift apart on grouping semantics.
    """
    return count_sorted_rows(r_prime.scan())


def filter_scan(
    r_prime: HeapFile, supported: set[tuple[int, ...]]
) -> HeapFile:
    """Copy rows whose pattern is in ``supported`` into a new file (``R_k``).

    The input order is preserved, so a file sorted on its item columns
    stays sorted — which Figure 4 exploits: ``R_k`` needs re-sorting only
    on ``trans_id`` before the next merge-scan.
    """
    output = HeapFile(r_prime.pool, r_prime.format)
    for record in r_prime.scan():
        if record[1:] in supported:
            output.append(record)
    return output
