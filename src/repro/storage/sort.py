"""External merge sort over heap files.

Algorithm SETM is "sorting and merge-scan join"; this module supplies the
sorting half for the disk-resident variant.  The classic two-phase scheme:

1. **Run generation** — read the input ``memory_pages`` pages at a time,
   sort each chunk in memory, write it out as a sorted run (all sequential
   I/O).
2. **K-way merge** — merge up to ``memory_pages - 1`` runs at a time
   (one buffered page per input run, one output page) until a single
   sorted file remains.

With the paper's relation sizes a single merge pass always suffices, which
is why Section 4.3 charges exactly ``2·‖R‖`` accesses per sort (read + write
of one pass); the implementation generalizes to any number of passes and
reports how many it used so tests can pin the single-pass property.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.storage.bufferpool import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.page import PageFormat

__all__ = ["SortResult", "external_sort"]

#: Sort key: maps a record to a comparable tuple.
KeyFunction = Callable[[tuple[int, ...]], tuple]

#: Optional record filter applied while reading the sort input.
Predicate = Callable[[tuple[int, ...]], bool]


@dataclass(frozen=True, slots=True)
class SortResult:
    """Outcome of an external sort."""

    output: HeapFile
    num_runs: int
    merge_passes: int


def _generate_runs(
    source: HeapFile,
    key: KeyFunction,
    memory_pages: int,
    predicate: Predicate | None,
) -> list[HeapFile]:
    """Phase 1: sorted runs of at most ``memory_pages`` pages each.

    ``predicate``, when given, filters records as they are read — a
    selection pushed below the sort, costing no extra pass.
    """
    runs: list[HeapFile] = []
    buffer: list[tuple[int, ...]] = []
    pages_buffered = 0

    def spill() -> None:
        nonlocal pages_buffered
        if not buffer:
            return
        buffer.sort(key=key)
        run = HeapFile(source.pool, source.format)
        run.extend(buffer)
        runs.append(run)
        buffer.clear()
        pages_buffered = 0

    for page_records in source.scan_pages():
        if predicate is None:
            buffer.extend(page_records)
        else:
            buffer.extend(
                record for record in page_records if predicate(record)
            )
        pages_buffered += 1
        if pages_buffered >= memory_pages:
            spill()
    spill()
    return runs


def _merge_runs(
    runs: list[HeapFile],
    pool: BufferPool,
    fmt: PageFormat,
    key: KeyFunction,
) -> HeapFile:
    """Merge sorted runs into one sorted heap file (one pass)."""
    output = HeapFile(pool, fmt)
    # Heap entries: (key, run_index, record, iterator).  The run index
    # breaks key ties so records never get compared directly.
    heap: list[tuple] = []
    iterators = [run.scan() for run in runs]
    for index, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heappush(heap, (key(first), index, first))
    while heap:
        _, index, record = heappop(heap)
        output.append(record)
        nxt = next(iterators[index], None)
        if nxt is not None:
            heappush(heap, (key(nxt), index, nxt))
    return output


def external_sort(
    source: HeapFile,
    key: KeyFunction = lambda record: record,
    *,
    memory_pages: int = 64,
    drop_source: bool = False,
    predicate: Predicate | None = None,
) -> SortResult:
    """Sort ``source`` into a new heap file.

    Parameters
    ----------
    source:
        Input heap file (left intact unless ``drop_source``).
    key:
        Record-to-tuple key function; defaults to whole-record order.
        SETM uses ``(trans_id, items...)`` before the merge-scan and
        ``(items...)`` before counting.
    memory_pages:
        Simulated sort-buffer size: run length in pages and merge fan-in
        minus one.  Must be at least 3 (two inputs + one output).
    drop_source:
        Delete the input file once the sorted output exists.
    predicate:
        Optional record filter applied during run generation — a
        selection pushed below the sort at zero extra I/O.  This is how
        the Section 4.1 ``INSERT INTO R_k ... ORDER BY`` statement fuses
        the support filter with the re-sort (``setm_disk``'s
        ``track_sort_order`` option).

    Returns
    -------
    SortResult
        The sorted file plus run/pass counts (0 passes when the input fit
        in memory and a single run was produced, matching the paper's
        "pipelining mode" assumption for ``R_1``).
    """
    if memory_pages < 3:
        raise ValueError(f"memory_pages must be >= 3, got {memory_pages}")

    runs = _generate_runs(source, key, memory_pages, predicate)
    num_runs = len(runs)
    if drop_source:
        source.drop()

    if not runs:
        return SortResult(HeapFile(source.pool, source.format), 0, 0)
    if len(runs) == 1:
        return SortResult(runs[0], 1, 0)

    fan_in = memory_pages - 1
    passes = 0
    while len(runs) > 1:
        passes += 1
        merged_level: list[HeapFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            if len(group) == 1:
                merged_level.append(group[0])
                continue
            merged = _merge_runs(group, source.pool, source.format, key)
            for run in group:
                run.drop()
            merged_level.append(merged)
        runs = merged_level
    return SortResult(runs[0], num_runs, passes)
