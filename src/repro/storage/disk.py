"""Simulated disk with the paper's I/O cost model.

Sections 3.2 and 4.3 of the paper cost their strategies in *page accesses*,
priced at:

* **20 ms** for a random page fetch ("A random page fetch costs about
  20 ms"), and
* **10 ms** for a sequential page access ("Reading and writing all the R_i
  relations can be done in a sequential fashion.  We estimate the time for
  each page access as 10 ms").

:class:`SimulatedDisk` stores 4 KB pages in memory, keyed by
``(file_id, page_no)``, and classifies every access as sequential or
random: an access is *sequential* when it touches the page immediately
following the previously accessed page of the same file, otherwise it is
*random*.  Counters accumulate in an :class:`IOStatistics` that experiments
read to reproduce the paper's page-access numbers, and
:meth:`IOStatistics.estimated_seconds` converts counts to the paper's
modelled wall-clock time.

The disk is deliberately simple — no sector layout, no controller queue —
because the paper's model is exactly "count pages, multiply by latency".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAGE_SIZE",
    "RANDOM_ACCESS_MS",
    "SEQUENTIAL_ACCESS_MS",
    "DiskError",
    "IOStatistics",
    "SimulatedDisk",
]

#: "Page size is 4 Kbytes" (Section 3.2).
PAGE_SIZE = 4096

#: Milliseconds per random page fetch (Section 3.2).
RANDOM_ACCESS_MS = 20.0

#: Milliseconds per sequential page access (Section 4.3).
SEQUENTIAL_ACCESS_MS = 10.0


class DiskError(Exception):
    """Raised for invalid disk operations (e.g. reading an unwritten page)."""


@dataclass
class IOStatistics:
    """Counters of page accesses, split by kind and direction."""

    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0

    @property
    def reads(self) -> int:
        """Total page reads."""
        return self.sequential_reads + self.random_reads

    @property
    def writes(self) -> int:
        """Total page writes."""
        return self.sequential_writes + self.random_writes

    @property
    def total_accesses(self) -> int:
        """Total page accesses — the unit of the paper's formulas."""
        return self.reads + self.writes

    def estimated_seconds(
        self,
        *,
        random_ms: float = RANDOM_ACCESS_MS,
        sequential_ms: float = SEQUENTIAL_ACCESS_MS,
    ) -> float:
        """Modelled elapsed time under the paper's latency constants."""
        random = self.random_reads + self.random_writes
        sequential = self.sequential_reads + self.sequential_writes
        return (random * random_ms + sequential * sequential_ms) / 1000.0

    def snapshot(self) -> "IOStatistics":
        """An independent copy (for before/after deltas in experiments)."""
        return IOStatistics(
            self.sequential_reads,
            self.random_reads,
            self.sequential_writes,
            self.random_writes,
        )

    def delta_since(self, earlier: "IOStatistics") -> "IOStatistics":
        """Accesses accumulated since ``earlier`` was snapshotted."""
        return IOStatistics(
            self.sequential_reads - earlier.sequential_reads,
            self.random_reads - earlier.random_reads,
            self.sequential_writes - earlier.sequential_writes,
            self.random_writes - earlier.random_writes,
        )


class SimulatedDisk:
    """In-memory page store with sequential/random access classification.

    Pages belong to *files* identified by integer ids allocated with
    :meth:`allocate_file`; page numbers within a file are dense from 0.
    """

    def __init__(self) -> None:
        self._pages: dict[tuple[int, int], bytes] = {}
        self._file_lengths: dict[int, int] = {}
        self._next_file_id = 0
        self._last_page_of_file: dict[int, int] = {}
        self.stats = IOStatistics()

    # -- file management -----------------------------------------------------------

    def allocate_file(self) -> int:
        """Create a new empty file and return its id."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self._file_lengths[file_id] = 0
        return file_id

    def delete_file(self, file_id: int) -> None:
        """Drop a file and all its pages (no I/O is charged for deletion)."""
        length = self._file_lengths.pop(file_id, 0)
        for page_no in range(length):
            self._pages.pop((file_id, page_no), None)
        self._last_page_of_file.pop(file_id, None)

    def file_length(self, file_id: int) -> int:
        """Number of pages currently in ``file_id``."""
        try:
            return self._file_lengths[file_id]
        except KeyError:
            raise DiskError(f"unknown file id {file_id}") from None

    def reserve_page(self, file_id: int, data: bytes) -> int:
        """Extend a file by one (empty) page without charging any I/O.

        Page allocation is a metadata operation; the payload write is
        charged when the buffer pool flushes or evicts the page.  Returns
        the new page number.
        """
        page_no = self.file_length(file_id)
        self._pages[(file_id, page_no)] = bytes(data)
        self._file_lengths[file_id] = page_no + 1
        return page_no

    # -- page I/O ------------------------------------------------------------------

    def _classify(self, file_id: int, page_no: int) -> bool:
        """True when the access continues a forward scan of its file.

        Classification is *per file*: an access is sequential when it
        touches the page right after the previously accessed page of the
        same file, even when scans of several files interleave.  This
        models per-file readahead, which is what lets the paper say
        "reading and writing all the R_i relations can be done in a
        sequential fashion" for the merge-scan join's two concurrent
        input scans.
        """
        previous = self._last_page_of_file.get(file_id)
        self._last_page_of_file[file_id] = page_no
        return previous is not None and previous == page_no - 1

    def read_page(self, file_id: int, page_no: int) -> bytes:
        """Fetch a page's bytes, charging one sequential or random read."""
        key = (file_id, page_no)
        if key not in self._pages:
            raise DiskError(f"read of unwritten page {key}")
        if self._classify(file_id, page_no):
            self.stats.sequential_reads += 1
        else:
            self.stats.random_reads += 1
        return self._pages[key]

    def write_page(self, file_id: int, page_no: int, data: bytes) -> None:
        """Store a page, charging one sequential or random write.

        Pages may only be written densely: ``page_no`` must be at most the
        file's current length (append or overwrite).
        """
        if len(data) > PAGE_SIZE:
            raise DiskError(
                f"page data of {len(data)} bytes exceeds page size {PAGE_SIZE}"
            )
        length = self.file_length(file_id)
        if page_no > length:
            raise DiskError(
                f"write to page {page_no} of file {file_id} would leave a "
                f"hole (file has {length} pages)"
            )
        if self._classify(file_id, page_no):
            self.stats.sequential_writes += 1
        else:
            self.stats.random_writes += 1
        self._pages[(file_id, page_no)] = bytes(data)
        if page_no == length:
            self._file_lengths[file_id] = length + 1

    # -- introspection ---------------------------------------------------------------

    @property
    def num_files(self) -> int:
        return len(self._file_lengths)

    @property
    def total_pages(self) -> int:
        return len(self._pages)

    def reset_stats(self) -> None:
        """Zero the access counters (file contents are untouched)."""
        self.stats = IOStatistics()
        self._last_page_of_file.clear()
