"""LRU buffer pool between the access methods and the simulated disk.

The paper's analyses assume a buffer pool implicitly: Section 3.2 keeps
B+-tree non-leaf pages "in memory" because "the number of non-leaf pages is
small", and Section 4.3 assumes the ``C_k`` relations stay resident.  This
pool makes those assumptions executable: hot pages (index internals, small
relations) stop generating disk accesses once cached, exactly as the paper
argues, while large sequential scans still pay one access per page.

The pool caches *decoded* :class:`~repro.storage.page.Page` objects with
pin counts, dirty tracking and LRU eviction (write-back).  Capacity is in
pages; eviction of a dirty page writes it to disk (charged at the disk's
sequential/random rates like any other access).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageFormat

__all__ = ["BufferPool", "BufferPoolError", "BufferPoolStats"]


class BufferPoolError(Exception):
    """Raised on pin-count misuse or pool exhaustion."""


@dataclass
class BufferPoolStats:
    """Hit/miss/eviction counters for cache-behaviour assertions in tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Frame:
    __slots__ = ("page", "pin_count", "dirty")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """A fixed-capacity write-back page cache over a :class:`SimulatedDisk`."""

    def __init__(self, disk: SimulatedDisk, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[tuple[int, int], _Frame]" = OrderedDict()
        self.stats = BufferPoolStats()

    # -- core operations -----------------------------------------------------------

    def fetch(self, file_id: int, page_no: int, fmt: PageFormat) -> Page:
        """Return the page, pinned.  Callers must :meth:`unpin` when done."""
        key = (file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(key)
        else:
            self.stats.misses += 1
            self._make_room()
            raw = self.disk.read_page(file_id, page_no)
            frame = _Frame(Page.from_bytes(raw, fmt))
            self._frames[key] = frame
        frame.pin_count += 1
        return frame.page

    def create(self, file_id: int, page_no: int, fmt: PageFormat) -> Page:
        """Materialize a brand-new page, pinned and dirty, without a read.

        The page must be the next page of its file (dense allocation); it
        reaches disk when flushed or evicted.
        """
        key = (file_id, page_no)
        if key in self._frames:
            raise BufferPoolError(f"page {key} already buffered")
        expected = self.disk.file_length(file_id)
        if page_no != expected:
            raise BufferPoolError(
                f"new page must be page {expected} of file {file_id}, "
                f"got {page_no}"
            )
        # Reserve the slot on disk (a free metadata operation) so subsequent
        # appends see a consistent file length; the payload write is charged
        # when the page is flushed or evicted.
        self.disk.reserve_page(file_id, Page(fmt).to_bytes())
        self._make_room()
        frame = _Frame(Page(fmt))
        frame.pin_count = 1
        frame.dirty = True
        self._frames[key] = frame
        return frame.page

    def unpin(self, file_id: int, page_no: int, *, dirty: bool = False) -> None:
        """Release one pin; mark the frame dirty when the caller wrote it."""
        frame = self._frames.get((file_id, page_no))
        if frame is None:
            raise BufferPoolError(f"unpin of non-resident page {(file_id, page_no)}")
        if frame.pin_count <= 0:
            raise BufferPoolError(f"unpin of unpinned page {(file_id, page_no)}")
        frame.pin_count -= 1
        frame.dirty = frame.dirty or dirty

    def flush_all(self) -> None:
        """Write every dirty frame back to disk (frames stay cached)."""
        for (file_id, page_no), frame in self._frames.items():
            if frame.dirty:
                self.disk.write_page(file_id, page_no, frame.page.to_bytes())
                frame.dirty = False

    def drop_file(self, file_id: int) -> None:
        """Discard all frames of a file without write-back, then delete it."""
        doomed = [key for key in self._frames if key[0] == file_id]
        for key in doomed:
            if self._frames[key].pin_count > 0:
                raise BufferPoolError(f"dropping pinned page {key}")
            del self._frames[key]
        self.disk.delete_file(file_id)

    # -- eviction ------------------------------------------------------------------

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for key in list(self._frames):
            frame = self._frames[key]
            if frame.pin_count > 0:
                continue
            if frame.dirty:
                self.disk.write_page(key[0], key[1], frame.page.to_bytes())
            del self._frames[key]
            self.stats.evictions += 1
            return
        raise BufferPoolError(
            f"buffer pool exhausted: all {self.capacity} frames are pinned"
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    def pinned_pages(self) -> list[tuple[int, int]]:
        """Keys of currently pinned frames (should be empty between ops)."""
        return [key for key, frame in self._frames.items() if frame.pin_count > 0]
