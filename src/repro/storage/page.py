"""Fixed-width integer-record pages, calibrated to the paper's arithmetic.

Section 3.2 fixes the physical design this package reproduces:

* pages are 4 Kbytes;
* every field (item id or trans_id) is a 4-byte integer;
* a leaf page of the ``(item, trans_id)`` index holds "upto 500 entries"
  (8-byte records), and a non-leaf page holds "about 333
  key-value/pointer pairs" (12-byte records).

Both published capacities follow from one constant: a **96-byte page
header** leaves ``(4096 - 96) // 8 = 500`` and ``(4096 - 96) // 12 = 333``
slots — we adopt exactly that layout, so every derived number in the paper
(4,000 leaf pages for SALES, ‖R_2‖ = 27,000 pages, ...) is reproduced by
construction rather than hard-coded.

A :class:`PageFormat` describes the record shape; :class:`Page` packs
records into real bytes (big-endian signed 32-bit), because the storage
engine round-trips everything through the simulated disk.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.storage.disk import PAGE_SIZE

__all__ = ["PAGE_HEADER_BYTES", "FIELD_BYTES", "Page", "PageFormat"]

#: Bytes reserved per page for bookkeeping ("assuming little overhead").
PAGE_HEADER_BYTES = 96

#: "each item and transaction id is represented using 4 bytes".
FIELD_BYTES = 4


@dataclass(frozen=True, slots=True)
class PageFormat:
    """Shape of the fixed-width records stored in a page.

    Parameters
    ----------
    fields:
        Number of 4-byte integer fields per record.  ``R_k`` relations use
        ``k + 1`` fields; index leaves use 2 (item, trans_id); index
        internals use 3 (item, trans_id, child page).
    """

    fields: int

    def __post_init__(self) -> None:
        if self.fields < 1:
            raise ValueError(f"records need at least one field, got {self.fields}")
        if self.record_bytes > PAGE_SIZE - PAGE_HEADER_BYTES:
            raise ValueError(
                f"a {self.record_bytes}-byte record does not fit in a page"
            )

    @property
    def record_bytes(self) -> int:
        """Bytes per record (4 bytes per field)."""
        return self.fields * FIELD_BYTES

    @property
    def capacity(self) -> int:
        """Records per page — 500 for 2-field, 333 for 3-field records."""
        return (PAGE_SIZE - PAGE_HEADER_BYTES) // self.record_bytes

    def pages_needed(self, num_records: int) -> int:
        """Pages required to store ``num_records`` at full packing."""
        if num_records <= 0:
            return 0
        return -(-num_records // self.capacity)  # ceiling division

    @property
    def struct_format(self) -> str:
        """``struct`` format string for one record."""
        return f">{self.fields}i"


class Page:
    """A mutable in-memory page of fixed-width records.

    Records are tuples of Python ints, each fitting a signed 32-bit field.
    The page serializes to at most :data:`~repro.storage.disk.PAGE_SIZE`
    bytes: a small header (record count) followed by packed records.
    """

    _HEADER_STRUCT = struct.Struct(">I")

    def __init__(self, fmt: PageFormat) -> None:
        self.format = fmt
        self._records: list[tuple[int, ...]] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def is_full(self) -> bool:
        return len(self._records) >= self.format.capacity

    def append(self, record: tuple[int, ...]) -> None:
        """Add a record; raises ``ValueError`` when full or malformed."""
        if self.is_full:
            raise ValueError("page is full")
        if len(record) != self.format.fields:
            raise ValueError(
                f"record has {len(record)} fields, page format expects "
                f"{self.format.fields}"
            )
        self._records.append(tuple(int(value) for value in record))

    def records(self) -> list[tuple[int, ...]]:
        """All records, in insertion order (a copy; the page stays intact)."""
        return list(self._records)

    def set_records(self, records: list[tuple[int, ...]]) -> None:
        """Replace the page's contents wholesale (used by B+-tree splits)."""
        if len(records) > self.format.capacity:
            raise ValueError(
                f"{len(records)} records exceed page capacity "
                f"{self.format.capacity}"
            )
        checked = []
        for record in records:
            if len(record) != self.format.fields:
                raise ValueError(
                    f"record has {len(record)} fields, page format expects "
                    f"{self.format.fields}"
                )
            checked.append(tuple(int(value) for value in record))
        self._records = checked

    def to_bytes(self) -> bytes:
        """Serialize: 4-byte record count + packed big-endian records."""
        parts = [self._HEADER_STRUCT.pack(len(self._records))]
        packer = struct.Struct(self.format.struct_format)
        parts.extend(packer.pack(*record) for record in self._records)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, fmt: PageFormat) -> "Page":
        """Deserialize a page produced by :meth:`to_bytes`."""
        page = cls(fmt)
        (count,) = cls._HEADER_STRUCT.unpack_from(data, 0)
        packer = struct.Struct(fmt.struct_format)
        offset = cls._HEADER_STRUCT.size
        for _ in range(count):
            page._records.append(packer.unpack_from(data, offset))
            offset += packer.size
        return page
