"""Page-backed B+-tree index, calibrated to the Section 3.2 arithmetic.

The nested-loop strategy of Section 3 relies on two B+-tree indexes over
``SALES``:

* an index on ``(item, trans_id)`` — "all the data is contained in the
  index", i.e. entries are the composite keys themselves (8 bytes → 500
  per leaf page);
* an index on ``(trans_id)`` — used to fetch the items of one transaction
  (entries again carry ``(trans_id, item)``; leaves are keyed on the
  4-byte ``trans_id`` alone, so non-leaf entries are 8 bytes → 500 per
  page, reproducing the paper's "5 non-leaf pages for 2,000 leaves").

This module implements a real page-backed B+-tree over the buffer pool:
every node is a disk page fetched (and charged) through the pool, so the
nested-loop experiment measures genuine page accesses.  Supported
operations: :meth:`~BPlusTree.bulk_load` (build from sorted entries, the
way a DBA would build the paper's indexes), :meth:`~BPlusTree.insert`
(with leaf/internal splits and root growth), :meth:`~BPlusTree.search_prefix`
(range scan of all entries matching a key prefix), and full iteration.

Node bookkeeping (leaf/internal flags, sibling links, parent links) is kept
in an in-memory directory; a production system would pack these into page
headers, which the 96-byte header reserve of
:mod:`repro.storage.page` accounts for.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.storage.bufferpool import BufferPool
from repro.storage.page import PageFormat

__all__ = ["BPlusTree", "BTreeError"]

#: Sentinel page number meaning "no sibling/parent".
_NONE = -1


class BTreeError(Exception):
    """Raised on malformed keys or bulk-loading unsorted input."""


@dataclass
class _NodeInfo:
    """In-memory directory entry for one tree page."""

    is_leaf: bool
    next_leaf: int = _NONE
    parent: int = _NONE


class BPlusTree:
    """A B+-tree of fixed-width integer entries.

    Parameters
    ----------
    pool:
        Buffer pool for page access (all I/O is charged through it).
    key_fields:
        How many leading fields of an entry form the search key.  The
        remaining fields ride along (non-key attributes stored in the
        index).
    entry_fields:
        Total fields per leaf entry (>= ``key_fields``).
    """

    def __init__(
        self, pool: BufferPool, *, key_fields: int, entry_fields: int
    ) -> None:
        if key_fields < 1 or entry_fields < key_fields:
            raise BTreeError(
                f"invalid key/entry fields: {key_fields}/{entry_fields}"
            )
        self.pool = pool
        self.key_fields = key_fields
        self.leaf_format = PageFormat(entry_fields)
        # Internal entries: separator key + child page number.
        self.internal_format = PageFormat(key_fields + 1)
        self.file_id = pool.disk.allocate_file()
        self._nodes: dict[int, _NodeInfo] = {}
        self._root = self._new_node(is_leaf=True)
        self._num_entries = 0

    # -- node helpers ----------------------------------------------------------------

    def _format_of(self, page_no: int) -> PageFormat:
        return (
            self.leaf_format
            if self._nodes[page_no].is_leaf
            else self.internal_format
        )

    def _new_node(self, *, is_leaf: bool) -> int:
        page_no = self.pool.disk.file_length(self.file_id)
        fmt = self.leaf_format if is_leaf else self.internal_format
        self.pool.create(self.file_id, page_no, fmt)
        self.pool.unpin(self.file_id, page_no, dirty=True)
        self._nodes[page_no] = _NodeInfo(is_leaf=is_leaf)
        return page_no

    def _read(self, page_no: int) -> list[tuple[int, ...]]:
        page = self.pool.fetch(self.file_id, page_no, self._format_of(page_no))
        records = page.records()
        self.pool.unpin(self.file_id, page_no)
        return records

    def _write(self, page_no: int, records: list[tuple[int, ...]]) -> None:
        page = self.pool.fetch(self.file_id, page_no, self._format_of(page_no))
        page.set_records(records)
        self.pool.unpin(self.file_id, page_no, dirty=True)

    def _key_of(self, entry: tuple[int, ...]) -> tuple[int, ...]:
        return entry[: self.key_fields]

    def _check_entry(self, entry: tuple[int, ...]) -> tuple[int, ...]:
        entry = tuple(int(value) for value in entry)
        if len(entry) != self.leaf_format.fields:
            raise BTreeError(
                f"entry has {len(entry)} fields, tree stores "
                f"{self.leaf_format.fields}"
            )
        return entry

    # -- geometry --------------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        """Number of levels, 1 for a lone leaf root (paper's ``L``)."""
        level = 1
        node = self._root
        while not self._nodes[node].is_leaf:
            records = self._read(node)
            node = records[0][-1]
            level += 1
        return level

    @property
    def num_leaf_pages(self) -> int:
        return sum(1 for info in self._nodes.values() if info.is_leaf)

    @property
    def num_internal_pages(self) -> int:
        return sum(1 for info in self._nodes.values() if not info.is_leaf)

    # -- bulk loading ------------------------------------------------------------------

    def bulk_load(self, entries: Iterable[tuple[int, ...]]) -> None:
        """Build the tree bottom-up from entries sorted by key.

        Replaces any existing contents.  Leaves are packed to capacity
        (matching the paper's "upto 500 entries in each leaf page"), then
        internal levels are built until a single root remains.
        """
        if self._num_entries:
            raise BTreeError("bulk_load requires an empty tree")
        # Reset to a clean file: drop the initial empty root's directory
        # entry; pages already allocated are simply overwritten as we go.
        self._nodes.clear()

        leaf_cap = self.leaf_format.capacity
        leaves: list[int] = []
        batch: list[tuple[int, ...]] = []
        previous_key: tuple[int, ...] | None = None

        def flush_leaf() -> None:
            if not batch:
                return
            page_no = self._new_node(is_leaf=True)
            self._write(page_no, list(batch))
            leaves.append(page_no)
            batch.clear()

        for raw in entries:
            entry = self._check_entry(raw)
            key = self._key_of(entry)
            if previous_key is not None and key < previous_key:
                raise BTreeError("bulk_load input is not sorted by key")
            previous_key = key
            batch.append(entry)
            self._num_entries += 1
            if len(batch) == leaf_cap:
                flush_leaf()
        flush_leaf()

        if not leaves:
            self._root = self._new_node(is_leaf=True)
            return
        for left, right in zip(leaves, leaves[1:]):
            self._nodes[left].next_leaf = right

        # Build internal levels.  Each internal entry is (first key of
        # child, child page number).
        level = leaves
        internal_cap = self.internal_format.capacity
        while len(level) > 1:
            parents: list[int] = []
            for start in range(0, len(level), internal_cap):
                children = level[start : start + internal_cap]
                page_no = self._new_node(is_leaf=False)
                records = []
                for child in children:
                    child_records = self._read(child)
                    first_key = self._key_of(child_records[0])
                    records.append(first_key + (child,))
                    self._nodes[child].parent = page_no
                self._write(page_no, records)
                parents.append(page_no)
            level = parents
        self._root = level[0]

    # -- search ------------------------------------------------------------------------

    def _descend_to_leaf(
        self, key: tuple[int, ...], *, for_insert: bool = False
    ) -> int:
        """Walk root-to-leaf choosing the child responsible for ``key``.

        For searches the descent targets the *first* leaf that can contain
        a match: a child is entered only when its separator, truncated to
        the key length, is strictly below the key — when the truncated
        separator *equals* the key, earlier entries with the same prefix
        (or duplicate keys) may still sit at the end of the previous child,
        and the leaf chain is scanned forward from there.  Inserts may land
        anywhere among duplicates, so they use the conventional ``<=``.
        """
        node = self._root
        while not self._nodes[node].is_leaf:
            records = self._read(node)
            chosen = records[0][-1]
            for record in records:
                separator = record[:-1]
                if for_insert:
                    descend = separator <= key
                else:
                    descend = separator[: len(key)] < key
                if descend:
                    chosen = record[-1]
                else:
                    break
            node = chosen
        return node

    def search_prefix(
        self, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, ...]]:
        """Yield all entries whose key starts with ``prefix``, in key order.

        For the ``(item, trans_id)`` index, ``search_prefix((item,))`` is
        exactly the access path of Section 3.2's step 1: descend once, then
        scan sibling leaves while the prefix matches.
        """
        prefix = tuple(int(value) for value in prefix)
        if not 1 <= len(prefix) <= self.key_fields:
            raise BTreeError(
                f"prefix length must be in [1, {self.key_fields}], "
                f"got {len(prefix)}"
            )
        node = self._descend_to_leaf(prefix)
        width = len(prefix)
        while node != _NONE:
            emitted_any = False
            exhausted = False
            for entry in self._read(node):
                head = entry[:width]
                if head < prefix:
                    continue
                if head > prefix:
                    exhausted = True
                    break
                emitted_any = True
                yield entry
            if exhausted:
                return
            if not emitted_any and self._nodes[node].next_leaf == _NONE:
                return
            node = self._nodes[node].next_leaf

    def search(self, key: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        """Yield entries matching the full key exactly."""
        if len(key) != self.key_fields:
            raise BTreeError(
                f"search key must have {self.key_fields} fields, "
                f"got {len(key)}"
            )
        yield from self.search_prefix(key)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """All entries in key order (leaf chain scan)."""
        node = self._root
        while not self._nodes[node].is_leaf:
            records = self._read(node)
            node = records[0][-1]
        while node != _NONE:
            yield from self._read(node)
            node = self._nodes[node].next_leaf

    # -- insertion ----------------------------------------------------------------------

    def insert(self, entry: tuple[int, ...]) -> None:
        """Insert one entry, splitting nodes as needed (duplicates allowed)."""
        entry = self._check_entry(entry)
        leaf = self._descend_to_leaf(self._key_of(entry), for_insert=True)
        records = self._read(leaf)
        records.append(entry)
        records.sort(key=self._key_of)
        self._num_entries += 1
        if len(records) <= self.leaf_format.capacity:
            self._write(leaf, records)
            return
        self._split(leaf, records)

    def _split(self, node: int, overflow: list[tuple[int, ...]]) -> None:
        """Split ``node`` holding ``overflow`` (one-over-capacity) records."""
        info = self._nodes[node]
        mid = len(overflow) // 2
        left_records, right_records = overflow[:mid], overflow[mid:]
        right = self._new_node(is_leaf=info.is_leaf)
        self._write(node, left_records)
        self._write(right, right_records)
        right_info = self._nodes[right]
        if info.is_leaf:
            right_info.next_leaf = info.next_leaf
            info.next_leaf = right
        else:
            for record in right_records:
                self._nodes[record[-1]].parent = right

        separator = (
            self._key_of(right_records[0])
            if info.is_leaf
            else right_records[0][:-1]
        )
        parent = info.parent
        if parent == _NONE:
            new_root = self._new_node(is_leaf=False)
            left_first = self._read(node)[0]
            left_key = (
                self._key_of(left_first) if info.is_leaf else left_first[:-1]
            )
            self._write(
                new_root, [left_key + (node,), separator + (right,)]
            )
            info.parent = new_root
            right_info.parent = new_root
            self._root = new_root
            return
        right_info.parent = parent
        parent_records = self._read(parent)
        parent_records.append(separator + (right,))
        parent_records.sort(key=lambda record: record[:-1])
        if len(parent_records) <= self.internal_format.capacity:
            self._write(parent, parent_records)
            return
        self._split(parent, parent_records)
