"""Paged storage engine: simulated disk, buffer pool, heap files,
external sort, merge-scan join, B+-tree."""

from repro.storage.btree import BPlusTree, BTreeError
from repro.storage.bufferpool import BufferPool, BufferPoolError, BufferPoolStats
from repro.storage.disk import (
    PAGE_SIZE,
    RANDOM_ACCESS_MS,
    SEQUENTIAL_ACCESS_MS,
    DiskError,
    IOStatistics,
    SimulatedDisk,
)
from repro.storage.heapfile import HeapFile
from repro.storage.mergejoin import counting_scan, filter_scan, merge_scan_join
from repro.storage.page import PAGE_HEADER_BYTES, Page, PageFormat
from repro.storage.sort import SortResult, external_sort

__all__ = [
    "BPlusTree",
    "BTreeError",
    "BufferPool",
    "BufferPoolError",
    "BufferPoolStats",
    "DiskError",
    "HeapFile",
    "IOStatistics",
    "PAGE_HEADER_BYTES",
    "PAGE_SIZE",
    "Page",
    "PageFormat",
    "RANDOM_ACCESS_MS",
    "SEQUENTIAL_ACCESS_MS",
    "SimulatedDisk",
    "SortResult",
    "counting_scan",
    "external_sort",
    "filter_scan",
    "merge_scan_join",
]
