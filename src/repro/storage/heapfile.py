"""Heap files: unordered sequences of fixed-width records on disk pages.

The ``SALES`` relation and every intermediate ``R_k`` / ``R'_k`` relation
of the disk-based SETM live in heap files.  A heap file is a dense run of
pages of one :class:`~repro.storage.page.PageFormat`; records append at the
tail and scans read pages in order, which the simulated disk accounts as
sequential accesses — the access pattern Section 4.3's cost formula
assumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.storage.bufferpool import BufferPool
from repro.storage.page import PageFormat

__all__ = ["HeapFile"]


class HeapFile:
    """An append-only record file over a :class:`BufferPool`.

    Parameters
    ----------
    pool:
        Buffer pool providing cached page access.
    fmt:
        Record shape for every page of this file.
    file_id:
        Existing disk file to attach to; a fresh file is allocated when
        omitted.
    """

    def __init__(
        self, pool: BufferPool, fmt: PageFormat, *, file_id: int | None = None
    ) -> None:
        self.pool = pool
        self.format = fmt
        self.file_id = pool.disk.allocate_file() if file_id is None else file_id
        self._num_records = 0
        if file_id is not None:
            # Attaching to an existing file: count its records by scanning
            # page headers (cheap in the simulator; done once).
            self._num_records = sum(
                len(self._page_records(page_no))
                for page_no in range(self.num_pages)
            )

    # -- geometry ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Pages currently allocated — ‖R_k‖ in the paper's notation."""
        return self.pool.disk.file_length(self.file_id)

    @property
    def num_records(self) -> int:
        """Records currently stored — |R_k| in the paper's notation."""
        return self._num_records

    # -- writing -------------------------------------------------------------------

    def append(self, record: tuple[int, ...]) -> None:
        """Append one record, opening a new tail page when needed."""
        last_page = self.num_pages - 1
        if last_page >= 0:
            page = self.pool.fetch(self.file_id, last_page, self.format)
            if not page.is_full:
                page.append(record)
                self.pool.unpin(self.file_id, last_page, dirty=True)
                self._num_records += 1
                return
            self.pool.unpin(self.file_id, last_page)
        page_no = self.num_pages
        page = self.pool.create(self.file_id, page_no, self.format)
        page.append(record)
        self.pool.unpin(self.file_id, page_no, dirty=True)
        self._num_records += 1

    def extend(self, records: Iterable[tuple[int, ...]]) -> None:
        """Bulk append; identical layout to repeated :meth:`append`."""
        for record in records:
            self.append(record)

    # -- reading -------------------------------------------------------------------

    def _page_records(self, page_no: int) -> list[tuple[int, ...]]:
        page = self.pool.fetch(self.file_id, page_no, self.format)
        records = page.records()
        self.pool.unpin(self.file_id, page_no)
        return records

    def scan(self) -> Iterator[tuple[int, ...]]:
        """Yield every record in storage order (a sequential page scan)."""
        for page_no in range(self.num_pages):
            yield from self._page_records(page_no)

    def scan_pages(self) -> Iterator[list[tuple[int, ...]]]:
        """Yield records one page at a time (used by the external sort)."""
        for page_no in range(self.num_pages):
            yield self._page_records(page_no)

    # -- lifecycle -----------------------------------------------------------------

    def flush(self) -> None:
        """Force dirty pages of the pool to disk (pool-wide flush)."""
        self.pool.flush_all()

    def drop(self) -> None:
        """Delete the file and its buffered pages."""
        self.pool.drop_file(self.file_id)
        self._num_records = 0

    def __repr__(self) -> str:
        return (
            f"HeapFile(file_id={self.file_id}, records={self.num_records}, "
            f"pages={self.num_pages}, fields={self.format.fields})"
        )
