"""Incremental delta mining: materialized count state + delta-only counting.

``setm-incremental`` operationalizes the paper's set-oriented view: the
counted ``(keys, counts)`` summaries of the ``R_k`` relations are a
*materialized view* over the ``SALES`` relation, and a view can be
maintained under appends instead of recomputed.  A run with a
``state_dir`` snapshots, per iteration ``k``, the full pre-HAVING
candidate count map of the Figure-4 loop (:class:`MiningState`, keyed by
the dataset *generation*); when new transactions land via
:meth:`~repro.data.ingest.EncodedDataset.append_chunks`, the next run
counts **only the appended chunks** and merges with the saved maps.

Correctness sketch (why delta-only counting is exact)
-----------------------------------------------------
Every SETM instance lives inside a single transaction, so per-pattern
counts are additive across disjoint transaction sets:
``count_D(p) = count_B(p) + count_delta(p)``.  Candidacy is structural:
``R_1`` is joined unfiltered (Section 4.1), so at ``k = 2`` every
2-pattern present in the data is a candidate — the base map is complete
there and ``state.levels[2].get(p, 0)`` is the exact base count.  For
``k >= 3`` a pattern is counted iff its ``(k-1)``-prefix is in the
*global* frequent set ``F_{k-1}``, which yields three merge cases per
level:

* prefix frequent before and now — the base count is in the state map
  (or genuinely zero): a **state hit**, no base I/O;
* prefix newly frequent (infrequent over the base alone, frequent over
  the union) — the base run never counted its extensions, so they get a
  **targeted recount** over the base transactions via
  ``iter_item_chunks()``, never a full re-mine;
* prefix no longer frequent (the threshold grew with ``N``) — its state
  entries are dropped.

Delta counts come from running the columnar extension loop
(:func:`~repro.core.columns.suffix_extend`) over the appended
transactions only, filtered by the global ``F_k``.  Every
:class:`~repro.core.result.IterationStats` field derives from the merged
maps (candidate instances are the count sums, supported slices are the
``>= threshold`` subsets), so the result — patterns, counts, iteration
trace — is byte-identical to a from-scratch mine of the full dataset;
the append-equivalence suite and the conformance delta tier hold it
there.  The merged maps then *become* the new state: after a delta mine
the whole dataset is the next base.

Survivor cursors are deliberately **not** part of the state: the merged
count maps fully determine the result, and cursors could not serve the
newly-frequent-prefix recount anyway (those instances were never
materialized by the base run).

On-disk format
--------------
A state directory holds ``state.json`` (version, dataset fingerprint,
config identity, catalog labels) plus ``levels.bin`` — one serialized
chunk per level reusing the spill-chunk framing of
:meth:`~repro.core.columns.InstanceRelation.to_chunk_bytes` (counts ride
in the ``last_sid`` column, packed keys in ``keys`` with the > 64-bit
fallback).  Writes are temp-file + ``os.replace`` atomic with the
manifest as the commit point; version skew refuses typed
(:class:`~repro.errors.StateVersionError`), a state that does not cover
the dataset or config refuses typed
(:class:`~repro.errors.StateMismatchError`).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from array import array
from bisect import bisect_right
from collections.abc import Sequence
from pathlib import Path
from typing import Any, Literal

from repro.core.columns import (
    COLUMN_TYPECODE,
    InstanceRelation,
    count_packed_keys,
    filter_by_keys,
    read_chunks,
    suffix_extend,
    unpack_key,
)
from repro.core.result import IterationStats, MiningResult
from repro.core.setm import run_figure4_loop
from repro.core.setm_columnar import ColumnarKernel
from repro.core.transactions import absolute_support_threshold
from repro.errors import (
    InvalidConfigError,
    StateError,
    StateMismatchError,
    StateVersionError,
)
from repro.registry import register_engine

try:  # pragma: no cover - exercised implicitly by the recount tests
    import numpy as _np
except ImportError:  # minimal installs use the transaction-scan recount
    _np = None

__all__ = ["MiningState", "STATE_VERSION", "setm_incremental"]

#: On-disk state format version; bumped on any incompatible change.
STATE_VERSION = 1

#: Largest packed key the vectorized recount can hold (mirrors the
#: guard of :func:`~repro.core.columns.suffix_extend`).
_INT64_MAX = 2**63 - 1

_MANIFEST_NAME = "state.json"
_LEVELS_NAME = "levels.bin"


def _column(values=()) -> array:
    return array(COLUMN_TYPECODE, values)


def _is_absolute(support: float | int) -> bool:
    return isinstance(support, int) and not isinstance(support, bool)


#: A level map as parallel columns: ``(keys, counts)``, sorted by key.
#: Columns are ``array('q')`` / numpy int64 (or a plain list when a
#: packed key overflows 64 bits) — the exact shape the on-disk chunk
#: format stores, so save/load never converts through dicts.
LevelPair = tuple[Sequence[int], Sequence[int]]

_EMPTY_PAIR: LevelPair = (_column(), _column())


def _pair_from_dict(counts: dict[int, int]) -> LevelPair:
    """A count map as a sorted ``(keys, counts)`` column pair."""
    keys = sorted(counts)
    values = _column(map(counts.__getitem__, keys))
    try:
        return _column(keys), values
    except OverflowError:  # > 64-bit packed keys stay plain ints
        return keys, values


def _as_np(column) -> "_np.ndarray":
    """A numpy int64 view/copy of a column (numpy available only)."""
    if isinstance(column, _np.ndarray):
        return column
    if isinstance(column, array):
        return _np.frombuffer(column, dtype=_np.int64)
    return _np.fromiter(column, dtype=_np.int64, count=len(column))


def _as_list(column) -> list[int]:
    if _np is not None and isinstance(column, _np.ndarray):
        return column.tolist()
    return list(column)


def _sum_column(counts) -> int:
    if _np is not None and isinstance(counts, _np.ndarray):
        return int(counts.sum())
    return sum(counts)


def _supported_slice(
    pair: LevelPair, threshold: int
) -> list[tuple[int, int]]:
    """The ``>= threshold`` entries of a level pair, in key order."""
    keys, counts = pair
    if _np is not None and isinstance(keys, _np.ndarray):
        mask = counts >= threshold
        return list(zip(keys[mask].tolist(), counts[mask].tolist()))
    return [
        (key, count) for key, count in zip(keys, counts) if count >= threshold
    ]


def _combine_np(parts: list[LevelPair]) -> LevelPair:
    """Sum column pairs into one sorted pair (numpy path).

    Each input pair must carry unique keys; counts of keys present in
    several pairs are added — the whole per-level merge (state-kept +
    recount + delta) in three C passes.
    """
    parts = [part for part in parts if len(part[0])]
    if not parts:
        return _EMPTY_PAIR
    if len(parts) == 1:
        keys, counts = parts[0]
        return _as_np(keys), _as_np(counts)
    all_keys = _np.concatenate([_as_np(keys) for keys, _ in parts])
    all_counts = _np.concatenate([_as_np(counts) for _, counts in parts])
    merged_keys, inverse = _np.unique(all_keys, return_inverse=True)
    merged_counts = _np.zeros(len(merged_keys), dtype=_np.int64)
    _np.add.at(merged_counts, inverse, all_counts)
    return merged_keys, merged_counts


class MiningState:
    """The materialized per-level candidate count maps of one mine.

    ``levels[k]`` holds each packed pattern key the Figure-4 loop
    counted at iteration ``k`` (the *pre*-HAVING map, so borderline
    counts are preserved) with its transaction count, as a sorted
    ``(keys, counts)`` column pair — the merge works on whole columns
    and save/load move them without conversion; use
    :meth:`level_counts` for a dict view.  Keys are packed in the radix
    of ``labels`` (``base = len(labels) + 1``).  The fingerprint fields
    identify the dataset prefix the counts cover, so a later run can
    verify the current dataset is an append-extension and mine only the
    tail.  Constructor ``levels`` values may be dicts (normalized to
    pairs) or ready column pairs.
    """

    __slots__ = (
        "generation",
        "num_transactions",
        "num_sales_rows",
        "last_trans_id",
        "labels",
        "support",
        "support_is_absolute",
        "max_length",
        "levels",
    )

    def __init__(
        self,
        *,
        generation: int,
        num_transactions: int,
        num_sales_rows: int,
        last_trans_id: int | None,
        labels: list,
        support: float | int,
        max_length: int | None,
        levels: dict[int, "LevelPair | dict[int, int]"],
        support_is_absolute: bool | None = None,
    ) -> None:
        self.generation = generation
        self.num_transactions = num_transactions
        self.num_sales_rows = num_sales_rows
        self.last_trans_id = last_trans_id
        self.labels = list(labels)
        self.support = support
        self.support_is_absolute = (
            _is_absolute(support)
            if support_is_absolute is None
            else support_is_absolute
        )
        self.max_length = max_length
        self.levels = {
            k: _pair_from_dict(value) if isinstance(value, dict) else value
            for k, value in levels.items()
        }

    def level_counts(self, k: int) -> dict[int, int]:
        """Level ``k``'s count map as a plain dict (tests, inspection)."""
        keys, counts = self.levels[k]
        return dict(zip(_as_list(keys), _as_list(counts)))

    @classmethod
    def from_full_run(
        cls,
        database,
        level_counts: dict[int, dict[int, int]],
        minimum_support: float | int,
        max_length: int | None,
    ) -> "MiningState":
        """Snapshot a completed full mine of ``database``."""
        num = database.num_transactions
        if hasattr(database, "trans_ids"):
            last = int(database.trans_ids[-1]) if num else None
            labels = database.catalog.labels()
        else:
            last = database[num - 1].trans_id if num else None
            labels = database.distinct_items()
        return cls(
            generation=getattr(database, "generation", 0),
            num_transactions=num,
            num_sales_rows=database.num_sales_rows,
            last_trans_id=last,
            labels=labels,
            support=minimum_support,
            max_length=max_length,
            levels=level_counts,
        )

    # -- persistence ---------------------------------------------------------------

    def save(self, state_dir: str | os.PathLike) -> None:
        """Atomically persist to ``state_dir`` (created if missing).

        ``levels.bin`` is written and swapped in first, the manifest
        last — the manifest is the commit point, so a crash mid-save
        leaves either the old state or the new one, never a torn mix,
        and the ``finally`` sweep keeps temp files from leaking.
        """
        root = Path(state_dir)
        root.mkdir(parents=True, exist_ok=True)
        blob = b"".join(
            _level_chunk(k, self.levels[k]) for k in sorted(self.levels)
        )
        manifest = {
            "version": STATE_VERSION,
            "generation": self.generation,
            "num_transactions": self.num_transactions,
            "num_sales_rows": self.num_sales_rows,
            "last_trans_id": self.last_trans_id,
            "support": self.support,
            "support_is_absolute": self.support_is_absolute,
            "max_length": self.max_length,
            "labels": self.labels,
            "levels": sorted(self.levels),
        }
        try:
            text = json.dumps(manifest, sort_keys=True)
        except TypeError as exc:
            raise StateError(
                "mining state needs JSON-serializable item labels "
                f"(str/int/...); got: {exc}"
            ) from exc
        levels_tmp = root / (_LEVELS_NAME + ".tmp")
        manifest_tmp = root / (_MANIFEST_NAME + ".tmp")
        try:
            levels_tmp.write_bytes(blob)
            manifest_tmp.write_text(text)
            os.replace(levels_tmp, root / _LEVELS_NAME)
            os.replace(manifest_tmp, root / _MANIFEST_NAME)
        finally:
            for tmp in (levels_tmp, manifest_tmp):
                try:
                    tmp.unlink()
                except OSError:
                    pass

    @classmethod
    def load(cls, state_dir: str | os.PathLike) -> "MiningState | None":
        """Load the state saved in ``state_dir``; ``None`` when absent.

        Raises
        ------
        StateVersionError
            The manifest carries a different format version.
        StateError
            The state files are structurally corrupt.
        """
        root = Path(state_dir)
        manifest_path = root / _MANIFEST_NAME
        if not manifest_path.exists():
            return None
        try:
            doc = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise StateError(
                f"unreadable mining-state manifest {manifest_path}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise StateError(
                f"mining-state manifest {manifest_path} is not an object"
            )
        version = doc.get("version")
        if version != STATE_VERSION:
            raise StateVersionError(STATE_VERSION, version)
        try:
            data = (root / _LEVELS_NAME).read_bytes()
        except OSError as exc:
            raise StateError(
                f"mining state in {root} has no readable level maps: {exc}"
            ) from exc
        levels: dict[int, LevelPair] = {}
        for chunk in read_chunks(data):
            levels[chunk.k] = (chunk.keys, chunk.last_sid)
        if sorted(levels) != doc.get("levels"):
            raise StateError(
                f"mining state in {root} is corrupt: level maps "
                f"{sorted(levels)} do not match the manifest "
                f"{doc.get('levels')!r}"
            )
        try:
            return cls(
                generation=doc["generation"],
                num_transactions=doc["num_transactions"],
                num_sales_rows=doc["num_sales_rows"],
                last_trans_id=doc["last_trans_id"],
                labels=doc["labels"],
                support=doc["support"],
                max_length=doc["max_length"],
                levels=levels,
                support_is_absolute=doc["support_is_absolute"],
            )
        except KeyError as exc:
            raise StateError(
                f"mining-state manifest {manifest_path} is missing {exc}"
            ) from exc


def _level_chunk(k: int, pair: LevelPair) -> bytes:
    """One level pair as a spill-format chunk (counts ride in last_sid)."""
    keys, counts = pair
    relation = InstanceRelation(None, None, last_sid=counts, keys=keys, k=k)
    return relation.to_chunk_bytes()


# -- state <-> dataset matching ----------------------------------------------------


def _supports_delta(database) -> bool:
    """Only the encoded columnar form can be delta-sliced and rescanned."""
    return (
        hasattr(database, "trans_ids")
        and hasattr(database, "run_lengths")
        and hasattr(database, "iter_item_chunks")
    )


def _check_state_covers(
    state: MiningState,
    dataset,
    minimum_support: float | int,
    max_length: int | None,
) -> None:
    """Raise :class:`StateMismatchError` unless ``dataset`` extends the state."""
    if (
        state.support != minimum_support
        or state.support_is_absolute != _is_absolute(minimum_support)
    ):
        raise StateMismatchError(
            f"saved state was mined at support {state.support!r} "
            f"({'absolute' if state.support_is_absolute else 'fractional'}); "
            f"this run asks for {minimum_support!r} — delta counts cannot "
            "be merged across thresholds (clear the state directory to "
            "rebuild)"
        )
    if state.max_length != max_length:
        raise StateMismatchError(
            f"saved state was mined with max_length={state.max_length!r}; "
            f"this run asks for {max_length!r} (clear the state directory "
            "to rebuild)"
        )
    t_base = state.num_transactions
    if dataset.num_transactions < t_base:
        raise StateMismatchError(
            f"dataset has {dataset.num_transactions} transactions but the "
            f"saved state covers {t_base}; the dataset is not an "
            "append-extension of the state"
        )
    if t_base:
        if int(dataset.trans_ids[t_base - 1]) != state.last_trans_id:
            raise StateMismatchError(
                f"dataset transaction {t_base} has trans_id "
                f"{int(dataset.trans_ids[t_base - 1])!r} where the saved "
                f"state ends at {state.last_trans_id!r}; the base prefix "
                "diverged"
            )
        if sum(dataset.run_lengths[:t_base]) != state.num_sales_rows:
            raise StateMismatchError(
                f"the first {t_base} transactions hold "
                f"{sum(dataset.run_lengths[:t_base])} rows where the saved "
                f"state covers {state.num_sales_rows}; the base prefix "
                "diverged"
            )


def _rekey_levels(state: MiningState, catalog) -> dict[int, LevelPair]:
    """State pairs re-packed into the current catalog's id space.

    Appends can grow the catalog, and new labels sorting between old
    ones shift every later id — so state keys are unpacked in the old
    radix, gathered through ``old id -> new id``, and re-packed in the
    new radix.  Both catalogs list labels sorted, so the id remap is
    strictly increasing and digit-wise remapping preserves each
    level's key order: the vectorized path peels digits with
    ``divmod`` and never re-sorts.  Identity catalogs skip all of it —
    the hot path of same-vocabulary appends.
    """
    current = catalog.labels()
    if state.labels == current:
        return state.levels
    try:
        old_to_new = [0] + [catalog.id_of(label) for label in state.labels]
    except KeyError as exc:
        raise StateMismatchError(
            f"saved state knows item {exc.args[0]!r} which the dataset's "
            "catalog no longer contains; the base prefix diverged"
        ) from None
    old_base = len(state.labels) + 1
    new_base = len(current) + 1
    mapping = (
        _np.fromiter(old_to_new, dtype=_np.int64, count=len(old_to_new))
        if _np is not None
        else None
    )
    rekeyed: dict[int, LevelPair] = {}
    for k, (keys, counts) in state.levels.items():
        if (
            mapping is not None
            and not isinstance(keys, list)
            and new_base**k <= _INT64_MAX
        ):
            rem = _as_np(keys)
            new_keys = _np.zeros(len(rem), dtype=_np.int64)
            place = 1
            for _ in range(k):
                rem, digit = _np.divmod(rem, old_base)
                new_keys += mapping[digit] * place
                place *= new_base
            rekeyed[k] = (new_keys, _as_np(counts))
            continue
        entries: list[tuple[int, int]] = []
        for key, count in zip(keys, counts):
            new_key = 0
            for item in unpack_key(int(key), k, old_base):
                new_key = new_key * new_base + old_to_new[item]
            entries.append((new_key, count))
        entries.sort()
        new_counts = _column(entry[1] for entry in entries)
        try:
            rekeyed[k] = (_column(entry[0] for entry in entries), new_counts)
        except OverflowError:
            rekeyed[k] = ([entry[0] for entry in entries], new_counts)
    return rekeyed


# -- the delta mine ----------------------------------------------------------------


def _tail_items(dataset, skip: int) -> array:
    """The encoded item column from global row ``skip`` on, one column."""
    out = _column()
    seen = 0
    for chunk in dataset.iter_item_chunks():
        end = seen + len(chunk)
        if end > skip:
            out.extend(chunk[max(0, skip - seen) :])
        seen = end
    return out


def _iter_base_transactions(dataset, t_base: int):
    """Yield each base transaction's sorted item ids, chunk-aligned.

    Walks ``iter_item_chunks()`` (non-consuming — spilled pieces stream
    one at a time) against the run-length framing; transactions may span
    chunk boundaries.
    """
    run_lengths = dataset.run_lengths
    source = dataset.iter_item_chunks()
    chunk: array = _column()
    pos = 0
    for i in range(t_base):
        need = run_lengths[i]
        txn: list[int] = []
        while need:
            if pos == len(chunk):
                chunk = next(source)
                pos = 0
                continue
            take = min(need, len(chunk) - pos)
            txn.extend(chunk[pos : pos + take])
            pos += take
            need -= take
        yield txn


def _recount_base_scan(
    dataset, q_new: set[int], k_prev: int, t_base: int, base: int
) -> tuple[dict[int, int], int]:
    """Transaction-scan recount (the numpy-free fallback).

    For every base transaction containing a prefix ``q`` of ``q_new``,
    each later item ``j`` contributes one instance of ``q . j`` — the
    counts the base run never materialized because ``q`` was infrequent
    then.  Returns ``(counts, base_rows_walked)``.
    """
    patterns = [(key, unpack_key(key, k_prev, base)) for key in q_new]
    counts: dict[int, int] = {}
    rows = 0
    for txn in _iter_base_transactions(dataset, t_base):
        rows += len(txn)
        if len(txn) <= k_prev:
            continue
        members = set(txn)
        for key, items in patterns:
            if all(item in members for item in items):
                scaled = key * base
                for j in txn[bisect_right(txn, items[-1]) :]:
                    new_key = scaled + j
                    counts[new_key] = counts.get(new_key, 0) + 1
    return counts, rows


class _BaseColumns:
    """The base prefix's raw columns, gathered once per delta mine.

    Only materialized when some level needs a recount, then shared
    across recounting levels.  ``ends[searchsorted(ends, s, 'right')]``
    is the exclusive end position of row ``s``'s transaction — the only
    piece of transaction framing the targeted recount needs, so no
    :class:`~repro.core.columns.SalesIndex` (whose ``ext_counts``
    expansion walks every base row) is ever built here.
    """

    __slots__ = ("items", "ends")

    def __init__(self, dataset, t_base: int, s_base: int) -> None:
        gathered = _column()
        for chunk in dataset.iter_item_chunks():
            take = s_base - len(gathered)
            gathered.extend(chunk if len(chunk) <= take else chunk[:take])
            if len(gathered) == s_base:
                break
        self.items = _np.frombuffer(gathered, dtype=_np.int64)
        lengths = dataset.run_lengths[:t_base]
        if isinstance(lengths, array):
            lengths = _np.frombuffer(lengths, dtype=_np.int64)
        self.ends = _np.cumsum(lengths)

    def extend_instances(self, sids, keys, base: int):
        """Vectorized merge-scan step over selected instance rows only.

        The ragged-range expansion of
        :func:`~repro.core.columns.suffix_extend`, but with each row's
        extension count derived on the fly from its transaction end —
        O(|selected| log t_base) instead of O(base rows).
        """
        ends = self.ends[_np.searchsorted(self.ends, sids, side="right")]
        counts = ends - sids - 1
        total = int(counts.sum())
        offsets = _np.arange(total) - _np.repeat(
            _np.cumsum(counts) - counts, counts
        )
        new_sids = _np.repeat(sids + 1, counts) + offsets
        new_keys = _np.repeat(keys * base, counts) + self.items[new_sids]
        return new_sids, new_keys


def _recount_base_vectorized(
    columns: _BaseColumns, q_new: set[int], k_prev: int, base: int
) -> tuple[LevelPair, int]:
    """Targeted base recount through a prefix-filtered extension chain.

    Instances of the newly frequent prefixes are re-derived level by
    level — filter to the length-``j`` prefixes of ``q_new``, extend
    with the later items of the same transaction — so the recount only
    materializes rows that can still reach one of the patterns, instead
    of walking every base transaction.  Returns the counted extensions
    as a sorted column pair plus the instance rows touched.
    """
    prefix_sets: list[set[int]] = [set() for _ in range(k_prev)]
    for key in q_new:
        packed = 0
        for j, item in enumerate(unpack_key(key, k_prev, base)):
            packed = packed * base + item
            prefix_sets[j].add(packed)

    def _wanted(prefixes: set[int]):
        return _np.fromiter(
            sorted(prefixes), dtype=_np.int64, count=len(prefixes)
        )

    sids = _np.flatnonzero(_np.isin(columns.items, _wanted(prefix_sets[0])))
    keys = columns.items[sids]
    rows = len(sids)
    for prefixes in prefix_sets[1:]:
        sids, keys = columns.extend_instances(sids, keys, base)
        mask = _np.isin(keys, _wanted(prefixes))
        sids = sids[mask]
        keys = keys[mask]
        rows += len(sids)
    _, keys = columns.extend_instances(sids, keys, base)
    rows += len(keys)
    unique, counts = _np.unique(keys, return_counts=True)
    return (unique, counts), rows


def _mine_delta(
    dataset,
    minimum_support: float | int,
    state: MiningState,
    *,
    max_length: int | None,
    count_via: Literal["auto", "sort", "hash"],
    measure_memory: bool,
) -> tuple[MiningResult, MiningState]:
    """Mine only the appended tail of ``dataset`` against ``state``.

    Mirrors :func:`~repro.core.setm.run_figure4_loop` stat-for-stat —
    same loop condition, same ``max_length`` break point, same terminal
    empty iteration — but every level's candidate map is assembled by
    merging the state with counts over the delta transactions only.
    Returns the result plus the merged maps as the next base state.
    """
    started = time.perf_counter()
    started_tracing = measure_memory and not tracemalloc.is_tracing()
    if started_tracing:
        tracemalloc.start()
    if measure_memory:
        tracemalloc.reset_peak()
    try:
        catalog = dataset.catalog
        base = dataset.base
        threshold = absolute_support_threshold(
            minimum_support, dataset.num_transactions
        )
        threshold_base = absolute_support_threshold(
            minimum_support, max(1, state.num_transactions)
        )
        levels = _rekey_levels(state, catalog)
        t_base = state.num_transactions
        s_base = state.num_sales_rows

        delta_items = _tail_items(dataset, s_base)
        delta_sales = InstanceRelation.sales_from_columns(
            delta_items,
            base=base,
            run_lengths=dataset.run_lengths[t_base:],
            trans_ids=dataset.trans_ids[t_base:],
        )
        index = delta_sales.index

        # k = 1: merge the delta item counts onto the state's C_1.
        pair1 = levels.get(1, _EMPTY_PAIR)
        state_hits = len(pair1[0])
        if _np is not None:
            merged_pair = _combine_np(
                [
                    pair1,
                    _np.unique(_as_np(delta_sales.keys), return_counts=True),
                ]
            )
        else:
            merged = dict(zip(pair1[0], pair1[1]))
            for key, count in count_packed_keys(
                delta_sales.keys, via=count_via
            ):
                merged[key] = merged.get(key, 0) + count
            merged_pair = _pair_from_dict(merged)
        supported = _supported_slice(merged_pair, threshold)
        f_list = [key for key, _ in supported]
        count_relations: dict[int, dict] = {
            1: {
                catalog.decode(unpack_key(key, 1, base)): count
                for key, count in supported
            }
        }
        num_sales = dataset.num_sales_rows
        iterations = [
            IterationStats(
                k=1,
                candidate_instances=num_sales,
                supported_instances=num_sales,
                candidate_patterns=len(merged_pair[0]),
                supported_patterns=len(f_list),
            )
        ]
        merged_levels: dict[int, LevelPair] = {1: merged_pair}
        iteration_seconds = {1: time.perf_counter() - started}

        # R_1 is joined unfiltered (Section 4.1): the first extension
        # carries no prefix condition, so prev_f None means "no filter".
        r_delta = delta_sales
        prev_f: list[int] | None = None
        prev_f_base: list[int] = []
        base_columns: _BaseColumns | None = None
        recounted = 0
        base_rows_rescanned = 0
        recount_levels: list[int] = []

        current_size = num_sales
        k = 1
        while current_size:
            k += 1
            if max_length is not None and k > max_length:
                break
            tick = time.perf_counter()
            r_prime = suffix_extend(r_delta, index)
            pair = levels.get(k, _EMPTY_PAIR)
            # np_level mirrors suffix_extend's vectorization guard, so
            # r_prime.keys is an int64 ndarray exactly when this is set.
            np_level = _np is not None and base**k <= _INT64_MAX

            recount_pair: LevelPair | None = None
            recount_map: dict[int, int] | None = None
            if prev_f is not None:
                q_new = set(prev_f) - set(prev_f_base)
                if q_new:
                    if np_level:
                        if base_columns is None:
                            base_columns = _BaseColumns(
                                dataset, t_base, s_base
                            )
                        recount_pair, rows = _recount_base_vectorized(
                            base_columns, q_new, k - 1, base
                        )
                        recounted += len(recount_pair[0])
                    else:
                        # numpy-free installs, and the > 64-bit packed
                        # key fallback, walk the base transactions.
                        recount_map, rows = _recount_base_scan(
                            dataset, q_new, k - 1, t_base, base
                        )
                        recounted += len(recount_map)
                    base_rows_rescanned += rows
                    recount_levels.append(k)

            if np_level:
                if prev_f is None:
                    # Every 2-pattern in the base is a candidate: the
                    # base map is complete, no prefix drop, no recount.
                    kept = pair
                else:
                    state_keys = _as_np(pair[0])
                    keep = _np.isin(
                        state_keys // base,
                        _np.fromiter(
                            prev_f, dtype=_np.int64, count=len(prev_f)
                        ),
                    )
                    kept = (state_keys[keep], _as_np(pair[1])[keep])
                state_hits += len(kept[0])
                parts = [kept]
                if recount_pair is not None:
                    parts.append(recount_pair)
                parts.append(
                    _np.unique(_as_np(r_prime.keys), return_counts=True)
                )
                merged_pair = _combine_np(parts)
            else:
                if prev_f is None:
                    merged = dict(zip(pair[0], pair[1]))
                else:
                    prev_set = set(prev_f)
                    merged = {
                        key: count
                        for key, count in zip(pair[0], pair[1])
                        if key // base in prev_set
                    }
                state_hits += len(merged)
                if recount_map is not None:
                    for key, count in recount_map.items():
                        merged[key] = merged.get(key, 0) + count
                for key, count in count_packed_keys(
                    r_prime.keys, via=count_via
                ):
                    merged[key] = merged.get(key, 0) + count
                merged_pair = _pair_from_dict(merged)

            supported = _supported_slice(merged_pair, threshold)
            f_list = [key for key, _ in supported]
            supported_instances = sum(count for _, count in supported)
            iterations.append(
                IterationStats(
                    k=k,
                    candidate_instances=_sum_column(merged_pair[1]),
                    supported_instances=supported_instances,
                    candidate_patterns=len(merged_pair[0]),
                    supported_patterns=len(f_list),
                )
            )
            if f_list:
                count_relations[k] = {
                    catalog.decode(unpack_key(key, k, base)): count
                    for key, count in supported
                }
            merged_levels[k] = merged_pair
            r_delta = filter_by_keys(r_prime, set(f_list))
            prev_f = f_list
            if np_level and len(pair[0]):
                frequent_in_base = _as_np(pair[1]) >= threshold_base
                prev_f_base = _as_np(pair[0])[frequent_in_base].tolist()
            else:
                prev_f_base = [
                    key
                    for key, count in zip(pair[0], pair[1])
                    if count >= threshold_base
                ]
            current_size = supported_instances
            iteration_seconds[k] = time.perf_counter() - tick

        total_patterns = sum(
            len(keys) for keys, _ in merged_levels.values()
        )
        extra: dict[str, Any] = {
            "count_via": count_via,
            "iteration_seconds": iteration_seconds,
        }
        stats = getattr(dataset, "stats", None)
        if stats is not None:
            extra["ingest"] = stats.as_dict()
        extra["incremental"] = {
            "mode": "delta",
            "generation": getattr(dataset, "generation", 0),
            "base_transactions": t_base,
            "base_rows": s_base,
            "delta_transactions": dataset.num_transactions - t_base,
            "delta_rows": len(delta_items),
            "total_rows": num_sales,
            "state_levels": sorted(levels),
            "state_hits": state_hits,
            "recounted_patterns": recounted,
            "recount_levels": recount_levels,
            "recount_fraction": (
                round(recounted / total_patterns, 4) if total_patterns else 0.0
            ),
            "base_rows_rescanned": base_rows_rescanned,
        }
        if measure_memory:
            extra["peak_memory_bytes"] = tracemalloc.get_traced_memory()[1]
        result = MiningResult(
            algorithm="setm-incremental",
            num_transactions=dataset.num_transactions,
            minimum_support=minimum_support,
            support_threshold=threshold,
            count_relations=count_relations,
            unfiltered_item_counts={
                catalog.decode(unpack_key(key, 1, base))[0]: count
                for key, count in zip(
                    _as_list(merged_levels[1][0]),
                    _as_list(merged_levels[1][1]),
                )
            },
            iterations=iterations,
            elapsed_seconds=time.perf_counter() - started,
            extra=extra,
        )
        new_state = MiningState(
            generation=getattr(dataset, "generation", 0),
            num_transactions=dataset.num_transactions,
            num_sales_rows=dataset.num_sales_rows,
            last_trans_id=(
                int(dataset.trans_ids[-1])
                if dataset.num_transactions
                else None
            ),
            labels=catalog.labels(),
            support=minimum_support,
            max_length=max_length,
            levels=merged_levels,
        )
        return result, new_state
    finally:
        if started_tracing:
            tracemalloc.stop()


# -- the engine --------------------------------------------------------------------


class _StateCapturingKernel(ColumnarKernel):
    """A :class:`ColumnarKernel` that keeps every level's full count map.

    The shared loop discards ``all_counts`` after deriving
    ``candidate_patterns``; state capture needs the whole pre-HAVING map
    (borderline counts included), so this kernel stashes it per level.
    """

    def __init__(self, database, *, count_via="auto") -> None:
        super().__init__(database, count_via=count_via)
        self.level_counts: dict[int, dict[int, int]] = {}

    def c1_counts(self, sales):
        counts = super().c1_counts(sales)
        self.level_counts[1] = dict(counts)
        return counts

    def count_and_filter(self, r_prime, threshold):
        all_counts = count_packed_keys(r_prime.keys, via=self._count_via)
        self.level_counts[r_prime.k] = dict(all_counts)
        c_k = {key: count for key, count in all_counts if count >= threshold}
        r_next = filter_by_keys(r_prime, set(c_k))
        return len(all_counts), c_k, r_next


@register_engine(
    "setm-incremental",
    description=(
        "SETM with materialized count state: appends re-mine only the "
        "delta chunks"
    ),
    representation="columnar",
    streaming_ingest=True,
    incremental=True,
    accepted_options=("count_via", "measure_memory", "state_dir"),
)
def setm_incremental(
    database,
    minimum_support: float | int,
    *,
    max_length: int | None = None,
    state_dir: str | os.PathLike | None = None,
    count_via: Literal["auto", "sort", "hash"] = "auto",
    measure_memory: bool = True,
) -> MiningResult:
    """SETM whose count state persists, so appends mine only the delta.

    Without a ``state_dir`` (or on the first run with one) this is a
    full columnar mine — identical results to ``setm-columnar`` — that
    additionally materializes the per-level count maps; with a
    ``state_dir`` holding state that covers a prefix of ``database``
    (an append-extended :class:`~repro.data.ingest.EncodedDataset`),
    only the appended transactions are counted and merged with the
    saved maps.  Results are byte-identical either way;
    ``extra["incremental"]`` reports which mode ran, the delta size,
    state hits, and the targeted-recount fraction.

    Raises
    ------
    StateVersionError
        ``state_dir`` holds state written by a different format version.
    StateMismatchError
        The state does not cover this dataset/config (diverged prefix,
        different support semantics or ``max_length``).
    """
    state = None
    if state_dir is not None:
        if not isinstance(state_dir, (str, os.PathLike)):
            raise InvalidConfigError(
                f"state_dir must be a path or None; got {state_dir!r}"
            )
        state = MiningState.load(state_dir)
    if state is not None and _supports_delta(database):
        _check_state_covers(state, database, minimum_support, max_length)
        result, new_state = _mine_delta(
            database,
            minimum_support,
            state,
            max_length=max_length,
            count_via=count_via,
            measure_memory=measure_memory,
        )
        new_state.save(state_dir)
        return result

    kernel = _StateCapturingKernel(database, count_via=count_via)
    result = run_figure4_loop(
        database,
        minimum_support,
        kernel,
        algorithm="setm-incremental",
        max_length=max_length,
        extra={"count_via": count_via},
        measure_memory=measure_memory,
    )
    result.extra["incremental"] = {
        "mode": "full",
        "generation": getattr(database, "generation", 0),
        "base_transactions": 0,
        "base_rows": 0,
        "delta_transactions": database.num_transactions,
        "delta_rows": database.num_sales_rows,
        "total_rows": database.num_sales_rows,
        "state_levels": sorted(kernel.level_counts),
        "state_hits": 0,
        "recounted_patterns": 0,
        "recount_levels": [],
        "recount_fraction": 0.0,
        "base_rows_rescanned": 0,
    }
    if state_dir is not None:
        MiningState.from_full_run(
            database, kernel.level_counts, minimum_support, max_length
        ).save(state_dir)
    return result
