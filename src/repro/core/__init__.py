"""The paper's core: Algorithm SETM, its variants, and rule generation."""

from repro.core.nested_loop import nested_loop_mine, nested_loop_mine_disk
from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.rules import Rule, generate_rules, rules_as_paper_lines
from repro.core.setm import setm
from repro.core.setm_columnar import setm_columnar
from repro.core.setm_disk import setm_disk
from repro.core.setm_sql import NativeBackend, SQLBackend, setm_sql
from repro.core.transactions import (
    Item,
    ItemCatalog,
    Transaction,
    TransactionDatabase,
    sales_rows_to_transactions,
)

__all__ = [
    "Item",
    "ItemCatalog",
    "IterationStats",
    "MiningResult",
    "NativeBackend",
    "Pattern",
    "Rule",
    "SQLBackend",
    "Transaction",
    "TransactionDatabase",
    "generate_rules",
    "nested_loop_mine",
    "nested_loop_mine_disk",
    "rules_as_paper_lines",
    "sales_rows_to_transactions",
    "setm",
    "setm_columnar",
    "setm_disk",
    "setm_sql",
]
