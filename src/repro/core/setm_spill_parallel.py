"""Spill-AND-parallel SETM: pooled counting over on-disk partitions.

The ROADMAP's two partition consumers, combined.  The spill engine
(:mod:`repro.core.setm_columnar_disk`) range-partitions ``R'_k`` into
spill files under a ``memory_budget_bytes`` and counts them one at a
time; the parallel engine (:mod:`repro.core.setm_parallel`) counts
in-memory partitions simultaneously in a :mod:`multiprocessing` pool.
This engine does both at once, for databases too big for RAM *and* big
enough to parallelize:

* **Extension and spilling are inherited unchanged** from
  :class:`~repro.core.setm_columnar_disk.SpillingColumnarKernel`:
  ``R'_k`` is priced before materialization, built in budget-bounded
  slices, and range-partitioned by packed pattern key into
  :class:`~repro.core.partitioning.Partition` spill files.  A relation
  that fits one budget share never touches the disk — or the pool.
* **Counting and filtering move to the workers.**  Each spilled
  partition travels to the cached pool of :mod:`setm_parallel` *by
  path* (the work unit carries its spill file's location, not its
  bytes — the pickle is a file name, not a relation).  A worker loads
  the partition, counts its packed keys, applies the HAVING threshold
  locally (key ranges are disjoint, so per-partition counts are global
  counts), filters the survivors, and writes them straight back to a
  spill file as the worker's share of ``R_k``.
* **Replies stay compact.**  A worker returns only the supported
  ``(keys, counts)`` arrays, its I/O tallies, and the survivors'
  ``last_sid`` column; the parent merges the count relations in
  key-range order (disjoint ⇒ concatenation) and prices
  ``|R'_{k+1}|`` exactly from the returned cursors — the rows
  themselves never cross the process boundary in either direction.

Because partitioning is driven by the memory budget, there is no
``parallel_threshold`` here: an iteration is pooled exactly when it
spilled (≥ 2 partitions) and ``workers > 1``.  With ``workers=1`` the
engine degenerates to ``setm-columnar-disk``; under a budget nothing
exceeds, it degenerates to ``setm-columnar``.  Either way patterns,
rules, and :class:`~repro.core.result.IterationStats` are identical to
``setm`` (held to that by the engine conformance matrix and the
differential grid in ``tests/core/test_setm_spill_parallel.py``).

Failure containment: a worker raising mid-partition propagates out of
the pool dispatch, and the Figure-4 loop's ``finally`` closes the
kernel, which removes the whole spill directory — partial partitions,
half-written ``R_k`` files and all.  The shared pool survives worker
exceptions and stays cached; a pool broken outright is evicted and
transparently recreated on the next run
(:func:`~repro.core.setm_parallel.pool_map`).
"""

from __future__ import annotations

import os
from array import array
from pathlib import Path
from typing import Any, Literal

from repro.core.columns import (
    _int64_column_bytes,
    count_packed_keys,
    filter_by_keys,
)
from repro.core.partitioning import (
    Partition,
    concat_columns,
    decode_buffer_chunks,
)
from repro.core.result import MiningResult
from repro.core.setm import run_figure4_loop
from repro.core.setm_columnar_disk import (
    DEFAULT_MEMORY_BUDGET,
    SpilledPartitions,
    SpilledRelation,
    SpillingColumnarKernel,
)
from repro.core.setm_parallel import (
    PoolTransportMixin,
    _pack_counts,
    _unpack_counts,
    resolve_start_method,
    resolved_start_method,
    validate_workers,
)
from repro.core.transactions import TransactionDatabase
from repro.core.transport import (
    TransportSession,
    pack_buffers,
    partition_buffer,
)
from repro.registry import register_engine

try:  # pragma: no cover - same optional dependency as repro.core.columns
    import numpy as _np
except ImportError:
    _np = None

__all__ = ["SpillParallelKernel", "setm_spill_parallel"]


def _count_filter_partition(
    task: tuple[Partition, str, int, str, str, str | None],
) -> tuple[int, str, tuple, int, int, int, int, int]:
    """Worker body: count one on-disk partition and spill its survivors.

    Runs in the pool process.  The :class:`Partition` arrives by
    *path* — the worker opens the spill file itself, so the task pickle
    is a file name plus a threshold; under the ``mmap`` transport the
    file is mapped and the int64 columns decoded as views over the map
    instead of a whole-blob read.  The whole per-partition pipeline of
    the serial spill engine runs here: count packed keys, apply the
    HAVING threshold (global, because key ranges are disjoint), filter
    the chunks, write the survivors to ``out_path`` in the same chunk
    format, and delete the consumed input partition.

    Returns ``(candidate_patterns, kind, reply_envelope, rows_written,
    chunks_written, bytes_written, bytes_read, zero_copy_bytes)``.  The
    envelope carries the supported ``(keys, counts)`` buffers plus the
    survivors' ``last_sid`` column — one flat int64 buffer end to end,
    never an intermediate Python list, so the parent can price
    ``|R'_{k+1}|`` exactly against its resident extension index.
    """
    partition, out_path, threshold, via, mode, reply_name = task
    rows_written = 0
    chunks_written = 0
    bytes_written = 0
    sid_parts: list[bytes] = []
    with partition_buffer(partition, mode) as (buffer, source):
        bytes_read = len(buffer)
        chunks, zero_copy = decode_buffer_chunks(buffer)
        if source not in ("shm", "mmap"):
            zero_copy = 0
        if chunks:
            keys = concat_columns([chunk.keys for chunk in chunks])
            counts = count_packed_keys(keys, via=via)
            supported = {
                key: count for key, count in counts if count >= threshold
            }
            if supported:
                supported_keys = set(supported)
                with open(out_path, "wb") as handle:
                    for chunk in chunks:
                        survivors = filter_by_keys(chunk, supported_keys)
                        if len(survivors) == 0:
                            continue
                        blob = survivors.to_chunk_bytes()
                        handle.write(blob)
                        bytes_written += len(blob)
                        chunks_written += 1
                        rows_written += len(survivors)
                        # Cursor values are always < 2**63 (row numbers),
                        # so even a big-key chunk's column flattens to
                        # native int64 bytes without an intermediate list.
                        sid_parts.append(
                            _int64_column_bytes(survivors.last_sid)
                        )
                if rows_written == 0:  # every survivor lived elsewhere
                    os.remove(out_path)
            # The chunk columns (and a single-chunk key view) borrow the
            # shm/mmap buffer; drop them before the context releases it.
            del keys
        else:
            counts = []
            supported = {}
        del chunks
    partition.delete()
    kind, distinct, tally_bytes = _pack_counts(list(supported.items()))
    envelope = pack_buffers(
        [distinct, tally_bytes, b"".join(sid_parts)], reply_name
    )
    return (
        len(counts),
        kind,
        envelope,
        rows_written,
        chunks_written,
        bytes_written,
        bytes_read,
        zero_copy,
    )


class SpillParallelKernel(PoolTransportMixin, SpillingColumnarKernel):
    """The spilling Figure-4 steps with pooled per-partition counting.

    ``merge_extend`` (budgeted slicing, key-range spilling) is
    inherited unchanged; only :meth:`count_and_filter` changes, and
    only for relations that actually spilled: their partitions are
    dispatched to the shared worker pool instead of being loaded one at
    a time.  In-memory relations — and every relation when
    ``workers=1`` — take the serial path, so the engine degrades
    gracefully to its two parents.
    """

    #: Spilled partitions already live in files, so ``auto`` means
    #: mapping them (``shm`` would still help only the reply leg).
    _AUTO_TRANSPORT = "mmap"

    def __init__(
        self,
        database: TransactionDatabase,
        *,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        workers: int | None = None,
        count_via: Literal["auto", "sort", "hash"] = "auto",
        spill_dir: str | os.PathLike | None = None,
        start_method: str | None = None,
        transport: str | None = None,
    ) -> None:
        super().__init__(
            database,
            memory_budget_bytes=memory_budget_bytes,
            count_via=count_via,
            spill_dir=spill_dir,
        )
        self._workers = validate_workers(workers)
        self._start_method = resolve_start_method(start_method)
        self._init_transport(transport)
        self._pooled_per_k: dict[int, int] = {}
        self._in_process: list[int] = []

    # -- Figure-4 steps -------------------------------------------------------------

    def count_and_filter(self, r_prime, threshold: int):
        if not isinstance(r_prime, SpilledPartitions):
            # Fits one budget share: counted in-process, exactly as the
            # serial columnar kernel would.  Empty iterations are not
            # "in process" — there was nothing to count at all.
            if self.size(r_prime):
                self._in_process.append(self._k)
            return super().count_and_filter(r_prime, threshold)
        if self._workers <= 1 or len(r_prime.partitions) < 2:
            if r_prime.partitions:
                self._in_process.append(self._k)
            return super().count_and_filter(r_prime, threshold)

        mode = self._negotiated_transport()
        candidate_patterns = 0
        c_k: dict[int, int] = {}
        paths: list[Path] = []
        out_rows = 0
        out_extension_rows = 0
        with TransportSession(mode) as session:
            tasks = []
            for p, partition in enumerate(r_prime.partitions):
                out_path = self._spill_path(f"r-k{self._k}-p{p}")
                tasks.append(
                    (
                        partition,
                        str(out_path),
                        threshold,
                        self._count_via,
                        mode,
                        session.reply_name(p),
                    )
                )
            replies = self._dispatch(_count_filter_partition, tasks)

            # Submission order == ascending key range: the per-partition
            # count relations are disjoint, so merging is concatenation —
            # the same order the serial engine produces
            # partition-at-a-time.
            for task, reply in zip(tasks, replies):
                (
                    candidates,
                    kind,
                    envelope,
                    rows_written,
                    chunks_written,
                    bytes_written,
                    bytes_read,
                    zero_copy,
                ) = reply
                session.note_zero_copy(zero_copy)
                distinct, tally_bytes, sid_bytes = session.collect(envelope)
                candidate_patterns += candidates
                keys, tallies = _unpack_counts((kind, distinct, tally_bytes))
                for key, count in zip(keys, tallies):
                    c_k[int(key)] = int(count)
                self._bytes_read += bytes_read
                self._bytes_written += bytes_written
                self._chunks_written += chunks_written
                if rows_written:
                    paths.append(Path(task[1]))
                    out_rows += rows_written
                    out_extension_rows += self._extension_rows_from_sids(
                        sid_bytes
                    )
            self._record_transport(session)
        r_prime.partitions = []
        self._pooled_per_k[self._k] = len(tasks)
        return (
            candidate_patterns,
            c_k,
            SpilledRelation(paths, out_rows, r_prime.k, out_extension_rows),
        )

    def _extension_rows_from_sids(self, sid_bytes: bytes) -> int:
        """Exact ``|R'_{k+1}|`` contribution of one worker's survivors.

        The workers have no extension index; the parent gathers the
        per-cursor extension counts over the returned ``last_sid``
        column — 8 bytes of IPC per surviving row instead of re-reading
        the ``R_k`` spill file.
        """
        ext = self._index.ext_counts
        if _np is not None:
            sids = _np.frombuffer(sid_bytes, dtype=_np.int64)
            return int(_np.sum(ext[sids]))
        sids = array("q")
        sids.frombytes(sid_bytes)
        return sum(map(ext.__getitem__, sids))

    # -- lifecycle ------------------------------------------------------------------

    def extra_stats(self) -> dict[str, Any]:
        stats = super().extra_stats()
        stats["workers"] = self._workers
        stats["parallel"] = {
            "partitions": dict(self._pooled_per_k),
            "parallel_iterations": sorted(self._pooled_per_k),
            "short_circuited": sorted(set(self._in_process)),
            "start_method": resolved_start_method(self._start_method),
        }
        stats["transport"] = self.transport_stats()
        return stats


@register_engine(
    "setm-spill-parallel",
    description=(
        "out-of-core AND parallel SETM: R'_k spill partitions "
        "counted and filtered in a multiprocessing pool, by path"
    ),
    representation="columnar",
    out_of_core=True,
    parallel=True,
    streaming_ingest=True,
    accepted_options=(
        "count_via",
        "memory_budget_bytes",
        "spill_dir",
        "workers",
        "start_method",
        "transport",
        "measure_memory",
    ),
)
def setm_spill_parallel(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    count_via: Literal["auto", "sort", "hash"] = "auto",
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    spill_dir: str | os.PathLike | None = None,
    workers: int | None = None,
    start_method: str | None = None,
    transport: str | None = None,
    measure_memory: bool = True,
) -> MiningResult:
    """Mine with pooled counting of on-disk partitions; identical to ``setm``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fractional minimum support in ``(0, 1]`` or absolute count.
    max_length:
        Optional cap on pattern length.
    count_via:
        Counting strategy per partition — see
        :func:`repro.core.setm_columnar.setm_columnar`.
    memory_budget_bytes:
        Target resident size for the mining loop's relations, exactly
        as in :func:`repro.core.setm_columnar_disk.setm_columnar_disk`;
        additionally the gate for the pool — only iterations the budget
        forces to spill (≥ 2 partitions) are counted in workers.
    spill_dir:
        Directory for the run's private spill files (a fresh
        subdirectory is created and removed); workers write their
        ``R_k`` shares under it too.
    workers:
        Pool size; defaults to ``os.cpu_count()``.  ``workers=1``
        forces fully serial execution — byte-identical behavior to
        ``setm-columnar-disk``.
    start_method:
        ``multiprocessing`` start method for the pool; ``None`` defers
        to ``REPRO_MP_START_METHOD``, then the platform default.
    transport:
        How partition bytes cross the process boundary —
        ``"pickle"`` (workers read spill files whole; replies ride the
        result pickle), ``"mmap"`` (workers map spill files and decode
        columns as views over the map), ``"shm"`` (replies return
        through named shared-memory segments), or ``"auto"``/``None``
        (prefer ``mmap`` — the partitions already live in files).
        Results are byte-identical on every transport.

    Returns
    -------
    MiningResult
        Patterns, counts, and iteration statistics identical to
        :func:`repro.core.setm.setm`.  ``extra`` carries the spill
        telemetry of ``setm-columnar-disk`` (``memory_budget_bytes``,
        ``"spill"`` — including worker-side reads and writes) merged
        with the pool telemetry of ``setm-parallel`` (``workers``, a
        ``"parallel"`` block with pooled iterations, partition counts,
        and the resolved start method) and a ``"transport"`` block
        with the negotiated mode and bytes-moved / copies-avoided
        counters.
    """
    return run_figure4_loop(
        database,
        minimum_support,
        SpillParallelKernel(
            database,
            memory_budget_bytes=memory_budget_bytes,
            workers=workers,
            count_via=count_via,
            spill_dir=spill_dir,
            start_method=start_method,
            transport=transport,
        ),
        algorithm="setm-spill-parallel",
        max_length=max_length,
        extra={"count_via": count_via},
        measure_memory=measure_memory,
    )
