"""The nested-loop-join strategy of Section 3.

Two executable forms of the same formulation:

* :func:`nested_loop_mine` — an in-memory evaluation of the Section 3.1
  SQL semantics.  Each iteration joins ``C_{k-1}`` with ``k`` copies of
  ``SALES`` (``r_1.item = c.item_1 AND ... AND r_k.item > r_{k-1}.item``),
  groups, and applies the ``HAVING`` clause.  It must — and, by the tests,
  does — produce exactly the same count relations as SETM; only the
  evaluation strategy differs.

* :func:`nested_loop_mine_disk` — the index-driven physical plan the paper
  costs in Section 3.2: probe the B+-tree on ``(item, trans_id)`` for each
  ``C_{k-1}`` tuple, intersect via further index probes, and finish with
  lookups on the ``(trans_id)`` index.  Every probe pays buffer-pool /
  disk costs, so the returned ``IOStatistics`` reproduces, at scaled-down
  size, the page-fetch blow-up the paper computes analytically
  (~2,000,000 fetches ≈ 11 hours for the full hypothetical database).

The disk variant is intentionally run on *small* databases only: being
quadratic-ish in practice is the entire point the paper makes against it.
"""

from __future__ import annotations

import time

from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine
from repro.storage.bufferpool import BufferPool
from repro.storage.btree import BPlusTree
from repro.storage.disk import SimulatedDisk

__all__ = ["nested_loop_mine", "nested_loop_mine_disk"]


@register_engine(
    "nested-loop",
    description="the Section 3.1 formulation, in memory",
)
def nested_loop_mine(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
) -> MiningResult:
    """Evaluate the Section 3.1 SQL semantics in memory.

    ``C_k`` is built from ``C_{k-1}`` by, per transaction, matching every
    ``C_{k-1}`` pattern contained in the transaction and extending it with
    each lexicographically later item — the join-order-free meaning of the
    ``C_{k-1} × SALES^k`` query.
    """
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)

    unfiltered_c1 = database.item_counts()
    c_current: dict[Pattern, int] = {
        (item,): count
        for item, count in sorted(unfiltered_c1.items())
        if count >= threshold
    }
    count_relations: dict[int, dict[Pattern, int]] = {1: dict(c_current)}
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=database.num_sales_rows,
            supported_instances=database.num_sales_rows,
            candidate_patterns=len(unfiltered_c1),
            supported_patterns=len(c_current),
        )
    ]

    k = 1
    while c_current:
        k += 1
        if max_length is not None and k > max_length:
            break
        candidates: dict[Pattern, int] = {}
        instances = 0
        for txn in database:
            items = txn.items
            item_set = set(items)
            for pattern in c_current:
                # r_1.item = c.item_1 AND ... AND r_{k-1}.item = c.item_{k-1}
                if not all(item in item_set for item in pattern):
                    continue
                last = pattern[-1]
                # r_k.item > r_{k-1}.item
                for item in items:
                    if item > last:
                        candidates[pattern + (item,)] = (
                            candidates.get(pattern + (item,), 0) + 1
                        )
                        instances += 1
        c_next = {
            pattern: count
            for pattern, count in candidates.items()
            if count >= threshold
        }
        supported_instances = sum(c_next.values())
        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=instances,
                supported_instances=supported_instances,
                candidate_patterns=len(candidates),
                supported_patterns=len(c_next),
            )
        )
        if c_next:
            count_relations[k] = c_next
        c_current = c_next

    return MiningResult(
        algorithm="nested-loop",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts=unfiltered_c1,
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
    )


@register_engine(
    "nested-loop-disk",
    description="Section 3.2's physical plan over real B+-tree indexes",
    reports_page_accesses=True,
    representation="paged",
    accepted_options=("buffer_pages",),
)
def nested_loop_mine_disk(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    buffer_pages: int = 64,
    max_length: int | None = None,
) -> MiningResult:
    """Run the Section 3.2 physical plan over real B+-tree indexes.

    Builds the two indexes the paper calls for — ``(item, trans_id)`` and
    ``(trans_id)`` (whose entries carry the items, "all the data is
    contained in the index") — then evaluates each iteration by index
    probes:

    1. For ``c ∈ C_{k-1}``, scan the ``(item, trans_id)`` index at
       ``c.item_1`` for candidate transactions.
    2. For each further ``c.item_j``, probe ``(item_j, trans_id)`` to keep
       only transactions containing the full pattern.
    3. Probe the ``(trans_id)`` index for the transaction's items and
       extend with those ``> c.item_{k-1}``.
    4. Group, count, apply ``HAVING``.

    ``extra["io"]`` carries the measured page accesses (index build
    excluded, matching the paper's assumption of pre-existing indexes).
    """
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)
    encoded, catalog = database.encoded()

    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity=buffer_pages)

    item_tid_index = BPlusTree(pool, key_fields=2, entry_fields=2)
    item_tid_index.bulk_load(
        sorted((item, tid) for tid, item in encoded.sales_rows())
    )
    tid_index = BPlusTree(pool, key_fields=1, entry_fields=2)
    tid_index.bulk_load(sorted(encoded.sales_rows()))
    pool.flush_all()
    disk.reset_stats()

    unfiltered_c1 = encoded.item_counts()
    c_current: dict[tuple[int, ...], int] = {
        (item,): count
        for item, count in sorted(unfiltered_c1.items())
        if count >= threshold
    }
    count_relations: dict[int, dict[Pattern, int]] = {
        1: {catalog.decode(p): c for p, c in c_current.items()}
    }
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=encoded.num_sales_rows,
            supported_instances=encoded.num_sales_rows,
            candidate_patterns=len(unfiltered_c1),
            supported_patterns=len(c_current),
        )
    ]
    per_iteration_io: dict[int, object] = {1: disk.stats.snapshot()}
    previous_io = disk.stats.snapshot()

    k = 1
    while c_current:
        k += 1
        if max_length is not None and k > max_length:
            break
        candidates: dict[tuple[int, ...], int] = {}
        instances = 0
        for pattern in c_current:
            # Step 1: transactions containing item_1 (leaf range scan).
            tids = [tid for _, tid in item_tid_index.search_prefix((pattern[0],))]
            # Step 2: narrow by each further pattern item via index probes.
            for item in pattern[1:]:
                tids = [
                    tid
                    for tid in tids
                    if any(True for _ in item_tid_index.search((item, tid)))
                ]
                if not tids:
                    break
            # Steps 3-4: extend from the (trans_id) index.
            last = pattern[-1]
            for tid in tids:
                for _, item in tid_index.search_prefix((tid,)):
                    if item > last:
                        extended = pattern + (item,)
                        candidates[extended] = candidates.get(extended, 0) + 1
                        instances += 1
        c_next = {
            pattern: count
            for pattern, count in candidates.items()
            if count >= threshold
        }
        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=instances,
                supported_instances=sum(c_next.values()),
                candidate_patterns=len(candidates),
                supported_patterns=len(c_next),
            )
        )
        current_io = disk.stats.snapshot()
        per_iteration_io[k] = current_io.delta_since(previous_io)
        previous_io = current_io
        if c_next:
            count_relations[k] = {
                catalog.decode(p): c for p, c in c_next.items()
            }
        c_current = c_next

    total_io = disk.stats.snapshot()
    return MiningResult(
        algorithm="nested-loop-disk",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts={
            catalog.decode((item,))[0]: count
            for item, count in unfiltered_c1.items()
        },
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
        extra={
            "io": total_io,
            "per_iteration_io": per_iteration_io,
            "modelled_seconds": total_io.estimated_seconds(),
            "index_leaf_pages": {
                "item_trans_id": item_tid_index.num_leaf_pages,
                "trans_id": tid_index.num_leaf_pages,
            },
            "index_heights": {
                "item_trans_id": item_tid_index.height,
                "trans_id": tid_index.height,
            },
        },
    )
