"""Columnar relation kernel: dictionary-encoded, array-backed ``R_k`` relations.

Representations
---------------
The package carries two in-memory representations of the paper's ``R_k``
instance relations, and the choice is the whole performance story:

* **Tuples** (:mod:`repro.core.setm`): one Python tuple
  ``(trans_id, item_1, ..., item_k)`` per row.  This mirrors Figure 4
  line by line — every sort, scan, and filter is visible as the paper
  wrote it — which is exactly what the Figure 5/6 reproduction needs.
  The price is row-at-a-time Python: every merge-scan output allocates
  a fresh tuple, every count/filter step re-allocates ``tuple(row[1:])``,
  and sorts compare heterogeneous tuples element by element.

* **Columnar** (this module): an ``R_k`` relation is flat integer
  columns — one trans_id column plus one ``array('q')`` column per item
  position — with items dictionary-encoded to dense integer ids through
  :class:`~repro.core.transactions.ItemCatalog`.  Rows never exist as
  Python objects inside the loop.  Three ideas carry the speedup:

  1. **Run-length group delimitation.**  Trans_id groups in the sorted
     ``SALES`` column are delimited once, by a boundary scan
     (:func:`tid_group_bounds`), instead of per-row equality tests on
     every pass.
  2. **The merge-scan as index arithmetic.**  ``R_1`` never changes, so
     the merge-scan join degenerates: every ``R_k`` row remembers the
     *global sales position* of its last item (the ``last_sid``
     column), and its Figure-4 extensions are exactly the suffix of its
     transaction's run — ``sales[s+1 : txn_end(s)]``.
     :class:`SalesIndex` precomputes the run ends once;
     :func:`suffix_extend` then produces ``R'_k`` as a handful of
     C-driven ``map``/``chain`` passes (gather indices, suffix ranges,
     item gathers) with no per-row Python at all.
  3. **Packed-integer patterns.**  A pattern is one mixed-radix integer
     (:func:`pack_keys`); the merge maintains it incrementally
     (``key' = key * base + item``), so counting is a single
     :class:`collections.Counter` pass or a key-free integer sort
     (:func:`count_packed_keys`) — never ``tuple(row[1:])`` — and the
     minimum-support filter is an ``itertools.compress`` index copy
     (:func:`filter_by_keys`).

  The packed key column and ``last_sid`` together determine every
  logical column (``item_j`` by unpacking the key, ``trans_id`` by
  reading the sales tid at ``last_sid``), so inside the mining loop a
  relation physically carries only those two; the trans_id and item-id
  arrays materialize on first access (:attr:`InstanceRelation.tids`,
  :attr:`InstanceRelation.items`) for callers that want the plain
  columnar view.

Vectorized fast path
--------------------
When :mod:`numpy` is importable, the three hot primitives
(:func:`suffix_extend`, :func:`count_packed_keys`,
:func:`filter_by_keys`) run as a few whole-column ``int64`` operations
— ``np.repeat`` ragged-range expansion for the merge, sort-based
``np.unique`` for counting, ``np.isin`` masking for the filter —
operating on zero-copy ``frombuffer`` views of the same ``array('q')``
buffers.  numpy is strictly optional: every primitive keeps the
stdlib ``map``/``chain``/``compress`` implementation, the two paths are
differentially tested against each other, and the vectorized merge
falls back per-iteration when a packed key would no longer fit in 64
bits (``base ** k > 2^63 - 1``; Python's arbitrary-precision integers
take over).  No behaviour differs between paths beyond the emission
order of hash-counted groups, which nothing downstream depends on.

The tuple engine stays the faithful reference; this kernel feeds the
``setm-columnar`` engine (:mod:`repro.core.setm_columnar`) and is
differentially tested to produce identical counts and iteration
statistics.  The group/scan primitives (:func:`tid_group_bounds`,
:func:`count_sorted_rows`) are representation-level, not engine-level,
so the paged storage engine's :mod:`repro.storage.mergejoin` shares
them and can adopt the columnar merge in a follow-up.

This module is a dependency leaf: it imports only the standard library
and the leaf module :mod:`repro.core.transactions`, so
:mod:`repro.storage` can import it without creating a package cycle.
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_right
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from itertools import chain, compress, repeat
from operator import add, sub
from typing import Literal

from repro.core.transactions import ItemCatalog, TransactionDatabase

try:  # pragma: no cover - exercised implicitly by every kernel test
    import numpy as _np
except ImportError:  # minimal installs (e.g. CI) use the stdlib path
    _np = None

__all__ = [
    "InstanceRelation",
    "SalesIndex",
    "chunk_frames",
    "count_packed_keys",
    "count_sorted_rows",
    "extension_counts",
    "filter_by_keys",
    "pack_keys",
    "read_chunks",
    "suffix_extend",
    "take",
    "tid_group_bounds",
    "unpack_key",
]

#: Typecode of every materialized column: signed 64-bit, enough for any
#: trans_id or dictionary-encoded item id (the paper's 4-byte fields fit
#: trivially).
COLUMN_TYPECODE = "q"


#: Largest packed key the vectorized path can hold; beyond this the
#: stdlib path's arbitrary-precision integers take over.
_INT64_MAX = 2**63 - 1

#: Spill-chunk framing (see :meth:`InstanceRelation.to_chunk_bytes`):
#: magic, flags byte, pad, k (uint32), rows (int64), payload bytes (int64).
_CHUNK_MAGIC = b"RKC1"
_CHUNK_HEADER = struct.Struct("<4sBxIqq")
_CHUNK_FLAG_BIG_KEYS = 0x01


def _column(values: Iterable[int] = ()) -> array:
    return array(COLUMN_TYPECODE, values)


def _as_int64(values: Sequence[int]) -> "_np.ndarray":
    """A numpy int64 view/copy of any column representation.

    ``array('q')`` becomes a zero-copy buffer view; ``range`` becomes an
    ``arange``; lists are converted with ``fromiter``.  Only called when
    numpy is available.
    """
    if isinstance(values, _np.ndarray):
        return values
    if isinstance(values, array):
        return _np.frombuffer(values, dtype=_np.int64)
    if isinstance(values, range):
        return _np.arange(values.start, values.stop, values.step, dtype=_np.int64)
    return _np.fromiter(values, dtype=_np.int64, count=len(values))


def _as_plain(values: Sequence[int]) -> Sequence[int]:
    """Python-int form of a column (for the arbitrary-precision path)."""
    if _np is not None and isinstance(values, _np.ndarray):
        return values.tolist()
    return values


class InstanceRelation:
    """An ``R_k`` relation as flat integer columns.

    Logically every relation has ``k + 1`` columns — ``tids`` plus
    ``items[0..k-1]`` — and rows are maintained in
    ``(trans_id, item_1, ..., item_k)`` order by every kernel operation
    (simultaneously the merge-scan order and, within a transaction,
    lexicographic pattern order, so the explicit re-sorts of Figure 4
    become no-ops here).

    Physically a relation stores whichever columns it was built from:

    ``keys``
        The packed-integer pattern of each row (see :func:`pack_keys`),
        maintained incrementally by the merge so counting and filtering
        never rebuild per-row tuples.
    ``last_sid``
        Global ``SALES`` position of each row's last item — the cursor
        the suffix merge of :func:`suffix_extend` resumes from.

    Those two columns determine the rest, so relations produced inside
    the mining loop carry only them; ``tids`` and ``items`` materialize
    lazily (tid = sales tid at ``last_sid``; ``item_j`` by unpacking
    ``keys``).  Relations built from raw rows (:meth:`from_rows`) are
    eager instead and gain ``keys`` via :meth:`with_keys`.
    """

    __slots__ = ("_tids", "_items", "last_sid", "keys", "_k", "_index")

    def __init__(
        self,
        tids: array | None,
        items: tuple[array, ...] | None,
        *,
        last_sid: Sequence[int] | None = None,
        keys: Sequence[int] | None = None,
        k: int | None = None,
        index: "SalesIndex | None" = None,
    ) -> None:
        if items is None and (keys is None or k is None):
            raise ValueError(
                "a relation needs either materialized item columns or "
                "(keys, k) to derive them"
            )
        self._tids = tids
        self._items = items
        self.last_sid = last_sid
        self.keys = keys
        self._k = len(items) if items is not None else k
        self._index = index

    @classmethod
    def from_rows(
        cls, rows: Iterable[Sequence[int]], k: int
    ) -> "InstanceRelation":
        """Build eagerly from ``(trans_id, item_1..item_k)`` rows."""
        tids = _column()
        items = tuple(_column() for _ in range(k))
        for row in rows:
            tids.append(row[0])
            for j in range(k):
                items[j].append(row[j + 1])
        return cls(tids, items)

    @classmethod
    def sales_from_database(
        cls, database: TransactionDatabase, catalog: ItemCatalog
    ) -> "InstanceRelation":
        """The ``SALES`` relation (``R_1``), dictionary-encoded.

        Rows arrive in ``(trans_id, item)`` order because transactions
        are stored sorted and item ids preserve label order (the
        :class:`ItemCatalog` id-assignment invariant).  The item column
        is built by one C-driven ``map`` over the chained transactions;
        ``last_sid`` is the identity (row ``s``'s only item sits at
        sales position ``s``), ``keys`` aliases the item column (a
        1-pattern's packed key *is* its item id), and the trans_id
        column materializes lazily through the attached
        :class:`SalesIndex`.
        """
        items = _column(
            map(
                catalog.id_mapping().__getitem__,
                chain.from_iterable(txn.items for txn in database),
            )
        )
        return cls.sales_from_columns(
            items,
            base=len(catalog) + 1,
            run_lengths=[len(txn.items) for txn in database],
            trans_ids=[txn.trans_id for txn in database],
        )

    @classmethod
    def sales_from_columns(
        cls,
        items: array,
        *,
        base: int,
        run_lengths: Sequence[int],
        trans_ids: Sequence[int],
    ) -> "InstanceRelation":
        """``R_1`` directly from its physical columns (chunk-append path).

        The streaming ingest layer builds the encoded item column and
        the ``(trans_ids, run_lengths)`` run-length framing in bounded
        appends (see :func:`repro.data.ingest.stream_encode`) and
        finishes here; :meth:`sales_from_database` is the same
        construction with the columns derived from Python transaction
        objects in one pass.  Requirements are those of the whole-file
        path: rows grouped by ascending ``trans_id``, items ascending
        within a transaction, ``base`` strictly greater than every
        item id.
        """
        index = SalesIndex(
            items,
            base=base,
            run_lengths=run_lengths,
            trans_ids=trans_ids,
        )
        return cls(
            None,
            (items,),
            last_sid=range(len(items)),
            keys=items,
            k=1,
            index=index,
        )

    @property
    def k(self) -> int:
        """Pattern length: the number of (logical) item columns."""
        return self._k

    @property
    def index(self) -> "SalesIndex | None":
        """The :class:`SalesIndex` this relation derives from, if any."""
        return self._index

    def __len__(self) -> int:
        if self.keys is not None:
            return len(self.keys)
        return len(self._tids) if self._tids is not None else 0

    def _require_index(self) -> "SalesIndex":
        if self._index is None:
            raise ValueError(
                "this relation has no SalesIndex to derive tids/items "
                "from; pass index=... when deserializing chunks whose "
                "logical columns will be read"
            )
        return self._index

    @property
    def tids(self) -> array:
        """The trans_id column (materialized on first access if needed)."""
        if self._tids is None:
            self._tids = _column(
                map(self._require_index().tids.__getitem__, self.last_sid)
            )
        return self._tids

    @property
    def items(self) -> tuple[array, ...]:
        """The item-id columns (materialized on first access if needed)."""
        if self._items is None:
            base = self._require_index().base
            columns: list[array] = []
            keys: Iterable[int] = self.keys
            for _ in range(self._k):
                keys = list(keys)
                columns.append(_column(key % base for key in keys))
                keys = (key // base for key in keys)
            columns.reverse()
            self._items = tuple(columns)
        return self._items

    def with_keys(self, base: int) -> "InstanceRelation":
        """Ensure the packed-keys column exists (see :func:`pack_keys`)."""
        if self.keys is None:
            self.keys = pack_keys(self, base)
        return self

    def row(self, index: int) -> tuple[int, ...]:
        """Materialize one row as a tuple (tests and debugging only)."""
        return (self.tids[index], *(col[index] for col in self.items))

    def rows(self) -> Iterator[tuple[int, ...]]:
        """Materialize all rows (tests and debugging only)."""
        return zip(self.tids, *self.items)

    def __repr__(self) -> str:
        return f"InstanceRelation(k={self.k}, rows={len(self)})"

    # -- chunk serialization (out-of-core spill format) -----------------------------

    def to_chunk_bytes(self) -> bytes:
        """Serialize this relation's ``(keys, last_sid)`` columns to one chunk.

        The spill format of the out-of-core engine: a fixed header
        (magic, flags, ``k``, row count, payload length) followed by the
        ``last_sid`` column as flat native int64 and the ``keys`` column
        either as flat int64 (the common case) or — when a packed key no
        longer fits 64 bits, the same condition that sends
        :func:`suffix_extend` to its big-integer fallback — as
        length-prefixed big-endian integers.  ``(keys, last_sid, k)``
        fully determine a loop relation (tids and item columns derive
        from them), so the round trip is lossless; chunks are
        process-private scratch, hence native byte order.

        Requires the ``keys`` and ``last_sid`` columns (relations built
        by ``sales_from_database``/``suffix_extend`` have them).
        """
        sids = self.last_sid
        keys = self.keys
        if sids is None or keys is None:
            raise ValueError(
                "chunk serialization needs the keys/last_sid columns; "
                "build relations with sales_from_database/suffix_extend"
            )
        sid_bytes = _int64_column_bytes(sids)
        try:
            key_bytes = _int64_column_bytes(keys)
            flags = 0
        except OverflowError:
            # The > 64-bit fallback: packed keys are arbitrary-precision
            # Python integers; store each as length-prefixed big-endian.
            key_bytes = _bigint_column_bytes(keys)
            flags = _CHUNK_FLAG_BIG_KEYS
        payload = sid_bytes + key_bytes
        header = _CHUNK_HEADER.pack(
            _CHUNK_MAGIC, flags, self._k, len(self), len(payload)
        )
        return header + payload

    @classmethod
    def from_chunk_bytes(
        cls,
        data: bytes,
        offset: int = 0,
        *,
        index: "SalesIndex | None" = None,
    ) -> tuple["InstanceRelation", int]:
        """Deserialize one chunk at ``offset``; returns ``(relation, end)``.

        The inverse of :meth:`to_chunk_bytes`.  ``end`` is the offset of
        the byte following this chunk, so concatenated chunks (one spill
        file holds many) can be walked without a directory structure.
        ``index`` reattaches the run's shared :class:`SalesIndex` so the
        lazy ``tids``/``items`` columns keep deriving.
        """
        magic, flags, k, n, payload_len = _CHUNK_HEADER.unpack_from(data, offset)
        if magic != _CHUNK_MAGIC:
            raise ValueError(
                f"bad chunk magic {magic!r} at offset {offset}"
            )
        body = offset + _CHUNK_HEADER.size
        end = body + payload_len
        sids = array(COLUMN_TYPECODE)
        sids.frombytes(data[body : body + 8 * n])
        cursor = body + 8 * n
        if flags & _CHUNK_FLAG_BIG_KEYS:
            keys: Sequence[int] = _bigint_column_from_bytes(data, cursor, end, n)
        else:
            key_column = array(COLUMN_TYPECODE)
            key_column.frombytes(data[cursor:end])
            keys = key_column
        relation = cls(
            None, None, last_sid=sids, keys=keys, k=k, index=index
        )
        return relation, end


def _int64_column_bytes(values: Sequence[int]) -> bytes:
    """Flat native-int64 bytes of a column; ``OverflowError`` on big ints."""
    if _np is not None and isinstance(values, _np.ndarray):
        return values.tobytes()
    if isinstance(values, array):
        return values.tobytes()
    return array(COLUMN_TYPECODE, values).tobytes()


def _bigint_column_bytes(keys: Sequence[int]) -> bytes:
    """Length-prefixed big-endian encoding for > 64-bit packed keys."""
    parts: list[bytes] = []
    for key in keys:
        value = int(key)
        if value < 0:
            raise ValueError(f"packed keys are non-negative; got {value}")
        blob = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        parts.append(struct.pack("<I", len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _bigint_column_from_bytes(
    data: bytes, start: int, end: int, n: int
) -> list[int]:
    """Invert :func:`_bigint_column_bytes`; returns a plain int list."""
    keys: list[int] = []
    cursor = start
    for _ in range(n):
        (length,) = struct.unpack_from("<I", data, cursor)
        cursor += 4
        keys.append(int.from_bytes(data[cursor : cursor + length], "big"))
        cursor += length
    if cursor != end:
        raise ValueError(
            f"chunk payload length mismatch: ended at {cursor}, expected {end}"
        )
    return keys


def read_chunks(
    data: bytes, *, index: "SalesIndex | None" = None
) -> Iterator[InstanceRelation]:
    """Walk every serialized chunk in ``data`` (one spill file's contents)."""
    offset = 0
    while offset < len(data):
        relation, offset = InstanceRelation.from_chunk_bytes(
            data, offset, index=index
        )
        yield relation


def chunk_frames(
    data,
) -> Iterator[tuple[int, int, int, int, int, int, int]]:
    """Walk chunk *framing* in ``data`` without decoding any column.

    Yields ``(flags, k, n, start, sid_offset, key_offset, end)`` per
    chunk: the header fields plus the byte offsets of the ``last_sid``
    column, the ``keys`` column, and the chunk's end.  ``data`` may be
    any buffer (bytes, a :class:`memoryview` over shared memory, an
    ``mmap``) — nothing is sliced or copied, which is the point: the
    zero-copy transport decoders use these offsets to construct int64
    column views directly over the source buffer instead of copying the
    payload through intermediate ``bytes``.
    """
    offset = 0
    total = len(data)
    while offset < total:
        magic, flags, k, n, payload_len = _CHUNK_HEADER.unpack_from(
            data, offset
        )
        if magic != _CHUNK_MAGIC:
            raise ValueError(f"bad chunk magic {magic!r} at offset {offset}")
        body = offset + _CHUNK_HEADER.size
        yield flags, k, n, offset, body, body + 8 * n, body + payload_len
        offset = body + payload_len


def extension_counts(
    relation: InstanceRelation, index: "SalesIndex"
) -> Sequence[int]:
    """Per-row merge-scan output counts: ``|suffix_extend(relation)|`` termwise.

    ``counts[r]`` is how many ``R'_{k+1}`` rows row ``r`` will produce —
    the suffix length ``index.ext_counts[last_sid[r]]``.  The out-of-core
    engine uses this to size its extension slices and spill partitions
    *before* materializing anything: the exact ``|R'_k|`` is
    ``sum(extension_counts(r_prev))``, one cheap gather pass.
    """
    sids = relation.last_sid
    if sids is None:
        raise ValueError("extension_counts needs the last_sid column")
    if _np is not None:
        return index.ext_counts[_as_int64(sids)]
    return array(COLUMN_TYPECODE, map(index.ext_counts.__getitem__, sids))


def tid_group_bounds(tids: Sequence[int]) -> list[int]:
    """Boundary offsets of equal-trans_id runs in a tid-sorted column.

    Returns ``[0, b_1, ..., len(tids)]``: consecutive pairs delimit one
    transaction's rows.  This is the run-length boundary scan that
    replaces the per-row ``row[0] == current`` comparisons of the tuple
    representation: one pass, index arithmetic only, and every later
    scan works with offsets instead of re-comparing trans_ids.
    """
    n = len(tids)
    if n == 0:
        return [0]
    bounds = [0]
    bounds.extend(i for i in range(1, n) if tids[i] != tids[i - 1])
    bounds.append(n)
    return bounds


class SalesIndex:
    """Extension index over ``R_1``: the merge-scan join, precomputed.

    ``R_1`` is the one relation Figure 4 never modifies, so the
    merge-scan's group matching can be resolved *once*: for every sales
    position ``s``, ``ext_counts[s]`` is the number of strictly-greater
    items in the same transaction — the run of positions
    ``s+1 .. s+ext_counts[s]`` (within a transaction items are distinct
    and ascending, so "later position" equals the paper's
    ``q.item > p.item_{k-1}`` band condition).  A transaction run of
    length ``L`` therefore contributes exactly ``L-1, L-2, ..., 0``,
    and the whole column is one chained pass of ``reversed(range(L))``
    runs — run-length delimitation turned into run-length *generation*.
    :func:`suffix_extend` reads this array instead of re-merging
    trans_id groups every iteration.

    ``base`` is the pattern-packing radix: one more than the largest
    dictionary id, so packed keys are injective and numerically ordered
    like their patterns.  The per-row trans_id column is derived from
    ``(trans_ids, run_lengths)`` lazily — the mining loop never reads
    it.
    """

    __slots__ = ("items", "items_np", "ext_counts", "base", "_tids",
                 "_run_lengths", "_trans_ids")

    def __init__(
        self,
        items: array,
        base: int,
        *,
        run_lengths: Sequence[int],
        trans_ids: Sequence[int],
    ) -> None:
        self.items = items
        self.base = base
        self._run_lengths = run_lengths
        self._trans_ids = trans_ids
        self._tids: array | None = None
        if _np is not None:
            self.items_np = _as_int64(items)
            lengths = _as_int64(run_lengths)
            expanded = _np.repeat(lengths, lengths)
            position = _np.arange(len(items)) - _np.repeat(
                _np.cumsum(lengths) - lengths, lengths
            )
            self.ext_counts = expanded - 1 - position
        else:
            self.items_np = None
            self.ext_counts = _column(
                chain.from_iterable(map(reversed, map(range, run_lengths)))
            )

    @classmethod
    def from_relation(
        cls, sales: InstanceRelation, base: int
    ) -> "SalesIndex":
        """Build from an eager ``(trans_id, item)`` relation.

        Transaction runs are delimited by the :func:`tid_group_bounds`
        boundary scan (the database-backed path of
        :meth:`InstanceRelation.sales_from_database` knows the run
        lengths up front and skips it).
        """
        tids = sales.tids
        bounds = tid_group_bounds(tids)
        index = cls(
            sales.items[0],
            base,
            run_lengths=list(map(sub, bounds[1:], bounds)),
            trans_ids=[tids[bound] for bound in bounds[:-1]],
        )
        index._tids = tids
        return index

    @property
    def tids(self) -> array:
        """Per-row trans_id column (materialized on first access)."""
        if self._tids is None:
            self._tids = _column(
                chain.from_iterable(
                    map(repeat, self._trans_ids, self._run_lengths)
                )
            )
        return self._tids


def take(relation: InstanceRelation, indices: Sequence[int]) -> InstanceRelation:
    """Gather ``relation``'s rows at ``indices`` into a new relation.

    Column-at-a-time: each physically present column is copied in one
    C-level pass (``map(column.__getitem__, indices)``) — no per-row
    Python objects.  Lazy relations stay lazy: only ``keys`` and
    ``last_sid`` are gathered, and the logical columns keep deriving
    from them.
    """
    tids = items = None
    if relation._tids is not None:
        tids = _column(map(relation._tids.__getitem__, indices))
    if relation._items is not None:
        items = tuple(
            _column(map(column.__getitem__, indices))
            for column in relation._items
        )
    last_sid = keys = None
    if relation.last_sid is not None:
        last_sid = list(map(relation.last_sid.__getitem__, indices))
    if relation.keys is not None:
        keys = list(map(relation.keys.__getitem__, indices))
    return InstanceRelation(
        tids,
        items,
        last_sid=last_sid,
        keys=keys,
        k=relation.k,
        index=relation._index,
    )


def suffix_extend(
    r_prev: InstanceRelation, index: SalesIndex
) -> InstanceRelation:
    """The merge-scan join of Figure 4, fused and columnar.

    ``R'_k := merge-scan(R_{k-1}, R_1)``: every ``R_{k-1}`` row is
    extended with every strictly greater ``SALES`` item of the same
    transaction.  Because each row carries ``last_sid`` and the
    :class:`SalesIndex` knows each position's transaction run end, the
    extensions of row ``r`` are exactly sales positions
    ``last_sid[r]+1 .. ends[last_sid[r]]`` — so the whole join is a
    handful of C-driven bulk passes with no per-row Python:

    1. per-row extension counts — one ``map`` over ``ext_counts``;
    2. the new ``last_sid`` column — ``chain``-flattened ``range`` runs;
    3. the packed keys (``key' = key * base + item``) — previous keys
       are scaled *before* expansion (|R_{k-1}| multiplications, not
       |R'_k|), replicated by ``chain``-flattened ``repeat`` runs, and
       added to the sales items at the new positions.

    Output rows come out sorted by ``(trans_id, item_1, ..., item_k)``
    (prev rows are walked in sorted order; suffixes ascend within a
    transaction), so no re-sort is needed before counting or the next
    merge.  Requires ``r_prev.last_sid`` and ``r_prev.keys``.
    """
    sids = r_prev.last_sid
    prev_keys = r_prev.keys
    if sids is None or prev_keys is None:
        raise ValueError(
            "suffix_extend needs last_sid/keys columns; build relations "
            "with sales_from_database/suffix_extend, not raw constructors"
        )
    if _np is not None and index.base ** (r_prev.k + 1) <= _INT64_MAX:
        # Vectorized ragged-range expansion: whole-column int64 ops on
        # zero-copy views.  Guarded so a packed key never overflows 64
        # bits — deeper patterns fall back to Python's big integers.
        sids_np = _as_int64(sids)
        keys_np = _as_int64(prev_keys)
        counts_np = index.ext_counts[sids_np]
        total = int(counts_np.sum())
        offsets = _np.arange(total) - _np.repeat(
            _np.cumsum(counts_np) - counts_np, counts_np
        )
        new_sids_np = _np.repeat(sids_np + 1, counts_np) + offsets
        new_keys_np = (
            _np.repeat(keys_np * index.base, counts_np)
            + index.items_np[new_sids_np]
        )
        return InstanceRelation(
            None,
            None,
            last_sid=new_sids_np,
            keys=new_keys_np,
            k=r_prev.k + 1,
            index=index,
        )

    # stdlib path (and the > 64-bit fallback: plain Python integers).
    if _np is not None:
        # Reached only on key overflow: gather the counts vectorized,
        # then drop every column to Python ints for big-int packing.
        counts: Sequence[int] = index.ext_counts[_as_int64(sids)].tolist()
        starts: Sequence[int] = [s + 1 for s in _as_plain(sids)]
        prev_keys = _as_plain(prev_keys)
    else:
        ext_counts = index.ext_counts
        if isinstance(sids, range) and sids == range(len(ext_counts)):
            # R_1's identity cursor: the per-row gathers collapse away.
            counts = ext_counts
            starts = range(1, len(prev_keys) + 1)
        else:
            counts = list(map(ext_counts.__getitem__, sids))
            starts = list(map((1).__add__, sids))
    new_sids = list(
        chain.from_iterable(map(range, starts, map(add, starts, counts)))
    )
    scaled = map(index.base.__mul__, prev_keys)
    keys = list(
        map(
            add,
            chain.from_iterable(map(repeat, scaled, counts)),
            map(index.items.__getitem__, new_sids),
        )
    )
    return InstanceRelation(
        None,
        None,
        last_sid=new_sids,
        keys=keys,
        k=r_prev.k + 1,
        index=index,
    )


def pack_keys(relation: InstanceRelation, base: int) -> list[int]:
    """One packed integer per row: the item columns in mixed radix ``base``.

    ``base`` must exceed every item id, so distinct patterns map to
    distinct keys and numeric key order equals lexicographic pattern
    order.  Packing is column-at-a-time (one zip-driven pass per extra
    column), never ``tuple(row[1:])``.  The engine's merge maintains the
    keys incrementally (``relation.keys``); this standalone form exists
    for relations built from raw rows.
    """
    columns = relation.items
    keys = list(columns[0])
    for column in columns[1:]:
        keys = [key * base + item for key, item in zip(keys, column)]
    return keys


def unpack_key(key: int, k: int, base: int) -> tuple[int, ...]:
    """Invert :func:`pack_keys` for one key back to ``k`` item ids."""
    ids = [0] * k
    for position in range(k - 1, -1, -1):
        key, ids[position] = divmod(key, base)
    return tuple(ids)


def count_packed_keys(
    keys: Sequence[int], *, via: Literal["auto", "sort", "hash"] = "auto"
) -> list[tuple[int, int]]:
    """Group counts over packed keys.

    ``via="hash"`` is one :class:`collections.Counter` pass (C-speed
    integer hashing), emitted in deterministic first-occurrence order.
    ``via="sort"`` mirrors the paper's sort-then-scan: a key-free
    integer sort followed by run-length delimitation — vectorized as
    ``np.unique(return_counts=True)`` when numpy is available, binary
    run probes over ``sorted()`` otherwise — emitted in ascending key
    order, which equals lexicographic pattern order.  ``via="auto"``
    picks the fastest available strategy (vectorized sort, else hash).
    All strategies produce the same multiset of ``(key, count)`` pairs.
    """
    # Keys held in an ndarray or array('q') are 64-bit by construction;
    # a plain list may carry overflow-fallback big integers, which only
    # the pure-Python strategies can hold.
    vectorizable = _np is not None and isinstance(keys, (_np.ndarray, array))
    if via == "auto":
        via = "sort" if vectorizable else "hash"
    if via == "hash":
        return list(Counter(_as_plain(keys)).items())
    if vectorizable:
        unique, counts = _np.unique(_as_int64(keys), return_counts=True)
        return list(zip(unique.tolist(), counts.tolist()))
    ordered = sorted(keys)
    n = len(ordered)
    counts: list[tuple[int, int]] = []
    i = 0
    while i < n:
        key = ordered[i]
        j = bisect_right(ordered, key, i, n)
        counts.append((key, j - i))
        i = j
    return counts


def filter_by_keys(
    relation: InstanceRelation, supported: set[int]
) -> InstanceRelation:
    """``R_k`` from ``R'_k``: keep rows whose packed key is supported.

    One membership ``map`` builds the selector, then every physical
    column is copied through ``itertools.compress`` — all C-level
    passes, no per-row Python.  Input order is preserved, so the
    sorted-by-``(trans_id, items)`` invariant survives filtering.
    Requires ``relation.keys``.
    """
    keys = relation.keys
    if keys is None:
        raise ValueError("filter_by_keys needs the packed-keys column")
    if _np is not None and isinstance(keys, _np.ndarray):
        # A supported set may carry > 64-bit keys (from a sibling big-int
        # partition of the out-of-core engine); those cannot occur in an
        # int64 column, so drop them before the C conversion.
        wanted = [key for key in supported if -_INT64_MAX - 1 <= key <= _INT64_MAX]
        mask = _np.isin(keys, _np.fromiter(wanted, dtype=_np.int64,
                                           count=len(wanted)))
        if bool(mask.all()):
            return relation
        last_sid = relation.last_sid
        return InstanceRelation(
            None,
            None,
            last_sid=(
                _as_int64(last_sid)[mask] if last_sid is not None else None
            ),
            keys=keys[mask],
            k=relation.k,
            index=relation._index,
        )
    selector = list(map(supported.__contains__, keys))
    if all(selector):
        return relation
    tids = items = None
    if relation._tids is not None:
        tids = _column(compress(relation._tids, selector))
    if relation._items is not None:
        items = tuple(
            _column(compress(column, selector)) for column in relation._items
        )
    # The cursor column stays a flat int64 buffer (array('q'), never a
    # Python-int list): cursors always fit 64 bits, and downstream
    # consumers — chunk serialization, the workers' survivor replies —
    # round-trip it buffer-to-buffer via .tobytes()/.frombytes().
    last_sid = (
        _column(compress(relation.last_sid, selector))
        if relation.last_sid is not None
        else None
    )
    return InstanceRelation(
        tids,
        items,
        last_sid=last_sid,
        keys=list(compress(keys, selector)),
        k=relation.k,
        index=relation._index,
    )


def count_sorted_rows(
    rows: Iterable[Sequence],
) -> list[tuple[tuple, int]]:
    """Sequential-scan grouping of ``(trans_id, item...)`` rows sorted by items.

    The one shared implementation of "generating the counts involves a
    simple sequential scan" for *row-shaped* inputs: both the in-memory
    tuple engine (:func:`repro.core.setm.count_sorted_instances`) and the
    paged storage engine (:func:`repro.storage.mergejoin.counting_scan`)
    delegate here.  ``rows`` must be sorted by ``row[1:]``; emits
    ``(pattern, count)`` in sorted pattern order.
    """
    counts: list[tuple[tuple, int]] = []
    current: tuple | None = None
    run = 0
    for row in rows:
        pattern = tuple(row[1:])
        if pattern == current:
            run += 1
        else:
            if current is not None:
                counts.append((current, run))
            current, run = pattern, 1
    if current is not None:
        counts.append((current, run))
    return counts
