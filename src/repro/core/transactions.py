"""Transaction model: the ``SALES(trans_id, item)`` relation of the paper.

The paper (Section 2) stores customer transactions in a relational table

    SALES(trans_id, item)

with one row per item sold in a transaction.  This module provides the
in-memory equivalent used by every algorithm in this package:

* :class:`Transaction` — one customer transaction (a trans_id plus the set
  of items purchased, kept sorted so lexicographic pattern generation is a
  simple scan).
* :class:`TransactionDatabase` — an ordered collection of transactions with
  the derived statistics the paper's evaluation reports (number of
  transactions, number of ``SALES`` rows, distinct items).
* :class:`ItemCatalog` — a bijection between external item labels (strings
  such as ``"bread"`` or the paper's ``"A" ... "H"``) and dense integer ids,
  required by the paged storage engine where every field is a 4-byte integer
  (Section 3.2: "item values are represented by integers").

Items may be any totally ordered hashable Python values (strings and ints
are the common cases).  Within one database all items must be mutually
comparable; mixing ``str`` and ``int`` items raises :class:`TypeError` at
construction time rather than deep inside a sort.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = [
    "CatalogBuilder",
    "Item",
    "ItemCatalog",
    "Transaction",
    "TransactionDatabase",
    "absolute_support_threshold",
    "sales_rows_to_transactions",
]

# An item is any hashable, totally ordered label.  We alias it for
# documentation purposes; Python's typing cannot express "totally ordered".
Item = Hashable


def absolute_support_threshold(
    minimum_support: float | int, num_transactions: int
) -> int:
    """Convert a minimum support into an absolute count threshold.

    The shared semantics of :meth:`TransactionDatabase.absolute_support`
    and :meth:`repro.data.ingest.EncodedDataset.absolute_support`: an
    ``int`` is already an absolute transaction count (applied as-is,
    must be ``>= 1``); a ``float`` is a fraction in ``(0, 1]`` rounded
    up over ``num_transactions`` ("minimum support of 30%" over 10
    transactions means 3).  A threshold of at least 1 is enforced so
    empty patterns never qualify vacuously.
    """
    if isinstance(minimum_support, int) and not isinstance(
        minimum_support, bool
    ):
        if minimum_support < 1:
            raise ValueError(
                "absolute minimum_support must be >= 1, "
                f"got {minimum_support!r}"
            )
        return minimum_support
    if not 0.0 < minimum_support <= 1.0:
        raise ValueError(
            f"minimum_support must be in (0, 1], got {minimum_support!r}"
        )
    return max(1, math.ceil(minimum_support * num_transactions))


@dataclass(frozen=True, slots=True)
class Transaction:
    """One customer transaction: ``trans_id`` plus the items purchased.

    ``items`` is stored as a sorted tuple of distinct items.  Sortedness is
    an invariant relied on throughout the package: SETM generates patterns
    in lexicographic order by scanning suffixes of this tuple.
    """

    trans_id: int
    items: tuple[Item, ...]

    def __post_init__(self) -> None:
        try:
            deduped = tuple(sorted(set(self.items)))
        except TypeError as exc:
            names = sorted({type(item).__name__ for item in self.items})
            raise TypeError(
                "transaction items must be mutually comparable; found "
                "mixed types: " + ", ".join(names)
            ) from exc
        if deduped != self.items:
            object.__setattr__(self, "items", deduped)

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: Item) -> bool:
        return item in self.items

    def contains_all(self, pattern: Sequence[Item]) -> bool:
        """True when every item of ``pattern`` occurs in this transaction."""
        item_set = set(self.items)
        return all(item in item_set for item in pattern)


class ItemCatalog:
    """Bijective mapping between item labels and dense integer ids.

    Ids are assigned in sorted label order starting from ``first_id`` so
    that *lexicographic order of labels equals numeric order of ids*.  This
    property lets the storage engine and the in-memory algorithms agree on
    what "lexicographically ordered pattern" means.
    """

    def __init__(self, labels: Iterable[Item], *, first_id: int = 1) -> None:
        ordered = sorted(set(labels))
        self._first_id = first_id
        self._id_of: dict[Item, int] = {
            label: first_id + index for index, label in enumerate(ordered)
        }
        self._label_of: dict[int, Item] = {
            item_id: label for label, item_id in self._id_of.items()
        }

    def __len__(self) -> int:
        return len(self._id_of)

    def __contains__(self, label: Item) -> bool:
        return label in self._id_of

    def id_of(self, label: Item) -> int:
        """Integer id for ``label``; raises ``KeyError`` for unknown labels."""
        return self._id_of[label]

    def id_mapping(self) -> dict[Item, int]:
        """The full ``label -> id`` mapping, for bulk encoding hot paths.

        Returns the catalog's own dict so callers can drive C-level
        ``map(mapping.__getitem__, ...)`` passes without a per-item
        method call; treat it as read-only.
        """
        return self._id_of

    def label_of(self, item_id: int) -> Item:
        """Label for ``item_id``; raises ``KeyError`` for unknown ids."""
        return self._label_of[item_id]

    def encode(self, labels: Iterable[Item]) -> tuple[int, ...]:
        """Encode a label sequence to ids, preserving order."""
        return tuple(self._id_of[label] for label in labels)

    def decode(self, ids: Iterable[int]) -> tuple[Item, ...]:
        """Decode an id sequence back to labels, preserving order."""
        return tuple(self._label_of[item_id] for item_id in ids)

    def labels(self) -> list[Item]:
        """All labels in sorted (== id) order."""
        return [self._label_of[i] for i in sorted(self._label_of)]

    @classmethod
    def builder(cls) -> "CatalogBuilder":
        """An incremental bulk-encode builder (see :class:`CatalogBuilder`)."""
        return CatalogBuilder()


class CatalogBuilder:
    """Incremental bulk encoding for inputs read in bounded chunks.

    :class:`ItemCatalog` assigns ids in sorted label order — an
    invariant the packed-key machinery of :mod:`repro.core.columns`
    relies on (numeric id order must equal lexicographic label order).
    A streaming reader cannot honour that order up front because it has
    not seen all the labels yet, so this builder encodes with
    *provisional* ids in first-appearance order and :meth:`build`
    resolves them: it constructs the final sorted-order catalog and
    returns the ``provisional id -> final id`` remap the caller applies
    to everything it encoded along the way (one vectorizable gather per
    resident or spilled column).

    Provisional ids are 0-based and dense, so the remap is a plain list
    indexable by provisional id.
    """

    __slots__ = ("_provisional", "_labels")

    def __init__(self) -> None:
        self._provisional: dict[Item, int] = {}
        self._labels: list[Item] = []

    def __len__(self) -> int:
        return len(self._labels)

    def encode(self, labels: Iterable[Item]) -> list[int]:
        """Provisional ids for ``labels``, registering new ones in bulk."""
        provisional = self._provisional
        out: list[int] = []
        for label in labels:
            pid = provisional.get(label)
            if pid is None:
                pid = len(provisional)
                provisional[label] = pid
                self._labels.append(label)
            out.append(pid)
        return out

    def build(self, *, first_id: int = 1) -> tuple[ItemCatalog, list[int]]:
        """The final catalog plus the ``provisional -> final`` id remap.

        ``remap[pid]`` is the sorted-order id of the label that was
        provisionally encoded as ``pid``; mixing incomparable label
        types raises ``TypeError`` here, exactly as the whole-file
        :class:`ItemCatalog` construction would.
        """
        catalog = ItemCatalog(self._labels, first_id=first_id)
        mapping = catalog.id_mapping()
        remap = [mapping[label] for label in self._labels]
        return catalog, remap


class TransactionDatabase:
    """An ordered collection of :class:`Transaction` objects.

    This is the Python-object view of the paper's ``SALES`` relation.  The
    database is immutable after construction; all mining algorithms treat it
    as read-only input.

    Parameters
    ----------
    transactions:
        Iterable of :class:`Transaction`, or of ``(trans_id, items)`` pairs.
        Transaction ids must be unique; items within a transaction are
        de-duplicated and sorted.
    """

    def __init__(
        self, transactions: Iterable[Transaction | tuple[int, Iterable[Item]]]
    ) -> None:
        normalized: list[Transaction] = []
        seen_ids: set[int] = set()
        for entry in transactions:
            if isinstance(entry, Transaction):
                txn = entry
            else:
                trans_id, items = entry
                txn = Transaction(trans_id, tuple(items))
            if txn.trans_id in seen_ids:
                raise ValueError(f"duplicate trans_id {txn.trans_id!r}")
            seen_ids.add(txn.trans_id)
            normalized.append(txn)
        normalized.sort(key=lambda txn: txn.trans_id)
        self._transactions: tuple[Transaction, ...] = tuple(normalized)
        self._check_item_comparability()

    def _check_item_comparability(self) -> None:
        kinds = {type(item) for txn in self._transactions for item in txn.items}
        if len(kinds) > 1:
            # bool is a subclass of int and compares fine; allow that pair.
            if not all(issubclass(kind, (int, bool)) for kind in kinds):
                names = sorted(kind.__name__ for kind in kinds)
                raise TypeError(
                    "items must be mutually comparable; found mixed types: "
                    + ", ".join(names)
                )

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self._transactions[index]

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return self._transactions == other._transactions

    def __hash__(self) -> int:  # immutable, so hashable
        return hash(self._transactions)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(num_transactions={self.num_transactions}, "
            f"num_sales_rows={self.num_sales_rows}, "
            f"num_items={len(self.distinct_items())})"
        )

    # -- statistics the paper's evaluation reports --------------------------------

    @property
    def num_transactions(self) -> int:
        """Total number of customer transactions (the support denominator)."""
        return len(self._transactions)

    @property
    def num_sales_rows(self) -> int:
        """Number of rows of the ``SALES`` relation (``|R_1|`` in the paper)."""
        return sum(len(txn) for txn in self._transactions)

    def distinct_items(self) -> list[Item]:
        """Sorted list of distinct items across all transactions."""
        items: set[Item] = set()
        for txn in self._transactions:
            items.update(txn.items)
        return sorted(items)

    def average_transaction_length(self) -> float:
        """Mean number of items per transaction (0.0 for an empty database)."""
        if not self._transactions:
            return 0.0
        return self.num_sales_rows / self.num_transactions

    def item_counts(self) -> dict[Item, int]:
        """Transaction count per item (the unfiltered ``C_1`` of Figure 4)."""
        counts: dict[Item, int] = {}
        for txn in self._transactions:
            for item in txn.items:
                counts[item] = counts.get(item, 0) + 1
        return counts

    # -- support handling ----------------------------------------------------------

    def absolute_support(self, minimum_support: float | int) -> int:
        """Convert a minimum support into an absolute count threshold.

        A ``float`` is a fraction: the paper's worked example treats
        "minimum support of 30%" over 10 transactions as "3 transactions",
        i.e. ``ceil(fraction * N)``; a pattern qualifies when
        ``count >= threshold``.  An ``int`` is already an absolute
        transaction count and is applied as-is — this is what lets every
        engine honour ``MiningConfig(support=3)`` without a lossy
        count-to-fraction round trip.  A threshold of at least 1 is
        enforced so empty patterns never qualify vacuously.
        """
        return absolute_support_threshold(
            minimum_support, self.num_transactions
        )

    # -- relational view -----------------------------------------------------------

    def sales_rows(self) -> Iterator[tuple[int, Item]]:
        """Yield ``(trans_id, item)`` rows: the paper's ``SALES`` relation.

        Rows are emitted ordered by ``(trans_id, item)``, i.e. the order a
        clustered relational scan would produce after inserting whole
        transactions — exactly the order SETM's first merge-scan needs.
        """
        for txn in self._transactions:
            for item in txn.items:
                yield (txn.trans_id, item)

    def catalog(self, *, first_id: int = 1) -> ItemCatalog:
        """Build an :class:`ItemCatalog` over this database's items."""
        return ItemCatalog(self.distinct_items(), first_id=first_id)

    def encoded(self) -> tuple["TransactionDatabase", ItemCatalog]:
        """Return an integer-item copy of this database plus its catalog.

        The paged storage engine stores 4-byte integer fields only
        (Section 3.2); this is the bridge from labelled data to that world.
        """
        catalog = self.catalog()
        encoded = TransactionDatabase(
            (txn.trans_id, catalog.encode(txn.items)) for txn in self._transactions
        )
        return encoded, catalog

    def filter_items(self, keep: Iterable[Item]) -> "TransactionDatabase":
        """Project every transaction onto ``keep`` (dropping empty ones).

        Used by the customer-class extension and by tests; not part of the
        paper's algorithm (SETM deliberately does *not* pre-filter items).
        """
        keep_set = set(keep)
        projected = []
        for txn in self._transactions:
            retained = tuple(item for item in txn.items if item in keep_set)
            if retained:
                projected.append((txn.trans_id, retained))
        return TransactionDatabase(projected)


def sales_rows_to_transactions(
    rows: Iterable[tuple[int, Item]]
) -> TransactionDatabase:
    """Group ``(trans_id, item)`` rows into a :class:`TransactionDatabase`.

    The inverse of :meth:`TransactionDatabase.sales_rows`.  Duplicate
    ``(trans_id, item)`` rows collapse (the relation is a set).
    """
    grouped: dict[int, set[Item]] = {}
    for trans_id, item in rows:
        grouped.setdefault(trans_id, set()).add(item)
    return TransactionDatabase(
        (trans_id, tuple(items)) for trans_id, items in grouped.items()
    )
