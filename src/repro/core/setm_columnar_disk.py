"""Out-of-core SETM: the columnar kernel under a memory budget.

``setm-columnar`` holds every ``R'_k`` in RAM; on databases whose
intermediate relations exceed the machine this is fatal — and the
intermediates, not ``SALES``, are the multiplicatively large objects
(``|R'_2|`` alone can dwarf the input).  This engine bounds them:

* **Budgeted extension.**  ``R'_k := merge-scan(R_{k-1}, R_1)`` runs in
  *slices*: :func:`~repro.core.columns.extension_counts` prices every
  ``R_{k-1}`` row's output exactly (one gather over the precomputed
  :class:`~repro.core.columns.SalesIndex`), so input slices are chosen
  to emit at most a budget share of output rows each — ``|R'_k|`` is
  known exactly *before* a single row is materialized (the
  :class:`~repro.core.partitioning.PartitionPlan`).
* **Key-range spill partitions.**  When the planned ``R'_k`` exceeds
  its budget share, slice outputs are range-partitioned by packed
  pattern key into ``P = ceil(bytes / share)``
  :class:`~repro.core.partitioning.Partition` spill files (boundaries
  are quantiles sampled stride-wise from the *whole* input, so skewed
  or tid-correlated key distributions still split evenly).  Every
  occurrence of a pattern lands in exactly one partition, so
  per-partition counts are global counts.
* **Partition-at-a-time counting.**  ``C_k`` and the support filter run
  one partition at a time: load, count
  (:func:`~repro.core.columns.count_packed_keys`), filter
  (:func:`~repro.core.columns.filter_by_keys`), spill the survivors as
  ``R_k`` chunks, delete the partition.  Resident memory stays at one
  partition plus fixed overhead (``SALES`` + its index + ``C_k``, which
  the paper itself assumes memory-resident) regardless of ``|R'_k|``.

Because Figure 4's loop body has no cross-row dependencies — each row's
extensions depend only on its own ``last_sid``, and counts are
per-pattern — slicing and partitioning change *nothing observable*:
patterns, counts, and :class:`~repro.core.result.IterationStats` are
identical to ``setm`` and ``setm-columnar`` (the differential tests and
the benchmark runner hold it to that).  The partitioning machinery
itself — work units, boundary sampling, key-range routing, pricing —
lives in :mod:`repro.core.partitioning`, shared with the
``setm-parallel`` engine that counts the same partitions in worker
processes instead of one at a time.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Literal

from repro.core.columns import (
    InstanceRelation,
    count_packed_keys,
    extension_counts,
    filter_by_keys,
    suffix_extend,
)
from repro.core.partitioning import (
    ROW_BYTES,
    Partition,
    PartitionPlan,
    choose_boundaries,
    concat_columns,
    decode_vector_chunks,
    key_ranges,
    output_slices,
    sample_extension_boundaries,
    slice_rows,
    split_by_key_ranges,
)
from repro.core.result import MiningResult
from repro.core.setm import run_figure4_loop
from repro.core.setm_columnar import ColumnarKernel
from repro.core.transactions import TransactionDatabase
from repro.errors import InvalidConfigError
from repro.registry import register_engine

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "SpilledPartitions",
    "SpilledRelation",
    "SpillingColumnarKernel",
    "setm_columnar_disk",
]

#: Default ``memory_budget_bytes``: generous for laptops, small enough
#: that genuinely large workloads spill instead of swapping.
DEFAULT_MEMORY_BUDGET = 128 * 2**20


class SpilledRelation:
    """An ``R_k`` as serialized chunks on disk (unpartitioned).

    ``extension_rows`` is the exact ``|R'_{k+1}|`` this relation will
    produce — summed from :func:`extension_counts` when the survivors
    were written, so the next iteration can plan its partitions without
    re-reading anything.
    """

    __slots__ = ("paths", "num_rows", "k", "extension_rows")

    def __init__(
        self,
        paths: list[Path],
        num_rows: int,
        k: int,
        extension_rows: int,
    ) -> None:
        self.paths = paths
        self.num_rows = num_rows
        self.k = k
        self.extension_rows = extension_rows

    def delete(self) -> None:
        for path in self.paths:
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        self.paths = []

    def __repr__(self) -> str:
        return (
            f"SpilledRelation(k={self.k}, rows={self.num_rows}, "
            f"chunks={len(self.paths)})"
        )


class SpilledPartitions:
    """An ``R'_k`` range-partitioned into :class:`Partition` spill files.

    Each partition holds exactly the rows whose key falls in its
    boundary interval, so counting one partition yields global counts
    for every pattern it contains.
    """

    __slots__ = ("partitions", "num_rows", "k")

    def __init__(
        self, partitions: list[Partition], num_rows: int, k: int
    ) -> None:
        self.partitions = partitions
        self.num_rows = num_rows
        self.k = k

    def __repr__(self) -> str:
        return (
            f"SpilledPartitions(k={self.k}, rows={self.num_rows}, "
            f"partitions={len(self.partitions)})"
        )


class SpillingColumnarKernel(ColumnarKernel):
    """The columnar Figure-4 steps with budgeted, spill-backed relations.

    Budget layout: one quarter of ``memory_budget_bytes`` each for (a)
    the extension slice being materialized, (b) a loaded counting
    partition, leaving headroom for the counting structure, the filter
    copy, and the fixed residents (``SALES`` + index + ``C_k``).  A
    relation whose :class:`PartitionPlan` fits within a share is simply
    kept in memory — small workloads never touch the disk.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        *,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        count_via: Literal["auto", "sort", "hash"] = "auto",
        spill_dir: str | os.PathLike | None = None,
    ) -> None:
        super().__init__(database, count_via=count_via)
        if (
            isinstance(memory_budget_bytes, bool)
            or not isinstance(memory_budget_bytes, int)
            or memory_budget_bytes < 1
        ):
            raise InvalidConfigError(
                "memory_budget_bytes must be a positive integer; "
                f"got {memory_budget_bytes!r}"
            )
        self._budget = memory_budget_bytes
        self._share_bytes = max(ROW_BYTES, memory_budget_bytes // 4)
        self._slice_rows = max(1, self._share_bytes // ROW_BYTES)
        self._spill_dir_option = spill_dir
        self._spill_root: Path | None = None
        self._sequence = 0
        self._k = 1

        # Spill telemetry, surfaced through extra_stats().
        self._partitions_per_k: dict[int, int] = {}
        self._bytes_written = 0
        self._bytes_read = 0
        self._chunks_written = 0

    # -- spill-file plumbing --------------------------------------------------------

    def _spill_path(self, stem: str) -> Path:
        if self._spill_root is None:
            self._spill_root = Path(
                tempfile.mkdtemp(
                    prefix="repro-spill-", dir=self._spill_dir_option
                )
            )
        self._sequence += 1
        return self._spill_root / f"{stem}-{self._sequence:06d}.chunks"

    def _decode_chunks(self, data: bytes) -> list[InstanceRelation]:
        self._bytes_read += len(data)
        return decode_vector_chunks(data, index=self._index)

    def _load_chunks(self, path: Path) -> list[InstanceRelation]:
        return self._decode_chunks(path.read_bytes())

    def _iter_chunks(self, r, *, delete: bool = False):
        """Yield a relation's rows as bounded InstanceRelation chunks."""
        if isinstance(r, InstanceRelation):
            yield r
            return
        for path in list(r.paths):
            yield from self._load_chunks(path)
            if delete:
                os.remove(path)
        if delete:
            r.paths = []

    def _write_chunk(self, relation: InstanceRelation, handle) -> None:
        blob = relation.to_chunk_bytes()
        handle.write(blob)
        self._bytes_written += len(blob)
        self._chunks_written += 1

    # -- Figure-4 steps -------------------------------------------------------------

    def merge_extend(self, r, sales):
        index = self._index
        assert index is not None  # make_sales always ran first
        if isinstance(r, InstanceRelation):
            plan = PartitionPlan.from_extension_counts(
                r, index, self._share_bytes
            )
        else:
            plan = PartitionPlan.from_predicted_rows(
                r.extension_rows, self._share_bytes
            )

        if plan.fits_in_memory:
            # Fits one budget share: materialize in memory, as the plain
            # columnar kernel would.
            pieces = [
                suffix_extend(chunk, index)
                for chunk in self._iter_chunks(r, delete=True)
            ]
            if len(pieces) == 1:
                return pieces[0]
            return InstanceRelation(
                None,
                None,
                last_sid=concat_columns([p.last_sid for p in pieces]),
                keys=concat_columns([p.keys for p in pieces]),
                k=r.k + 1,
                index=index,
            )

        # Out-of-core: partition R'_k by pattern-key range as it is
        # produced, one bounded slice at a time.
        partitions = plan.num_partitions
        self._partitions_per_k[self._k] = partitions
        boundaries = sample_extension_boundaries(
            self._iter_chunks(r), index, self.size(r), partitions
        )
        paths = [
            self._spill_path(f"rprime-k{self._k}-p{p}")
            for p in range(partitions)
        ]
        handles = [open(path, "wb") for path in paths]
        try:
            for chunk in self._iter_chunks(r, delete=True):
                counts = extension_counts(chunk, index)
                for start, stop in output_slices(counts, self._slice_rows):
                    out = suffix_extend(slice_rows(chunk, start, stop), index)
                    if len(out) == 0:
                        continue
                    if boundaries is None:
                        boundaries = choose_boundaries(out.keys, partitions)
                    for p, rows in split_by_key_ranges(out, boundaries):
                        self._write_chunk(rows, handles[p])
        finally:
            for handle in handles:
                handle.close()
        return SpilledPartitions(
            [
                Partition(r.k + 1, key_low=low, key_high=high, path=path)
                for (low, high), path in zip(
                    key_ranges(boundaries, partitions), paths
                )
            ],
            plan.predicted_rows,
            r.k + 1,
        )

    def count_and_filter(self, r_prime, threshold: int):
        if isinstance(r_prime, InstanceRelation):
            return super().count_and_filter(r_prime, threshold)

        index = self._index
        candidate_patterns = 0
        c_k: dict[int, int] = {}
        out_path: Path | None = None
        out_handle = None
        out_rows = 0
        out_extension_rows = 0
        try:
            for partition in list(r_prime.partitions):
                chunks = self._decode_chunks(partition.read_bytes())
                partition.delete()
                if not chunks:
                    continue
                # Key ranges are disjoint across partitions, so these
                # counts are global — the HAVING clause applies locally.
                counts = count_packed_keys(
                    concat_columns([chunk.keys for chunk in chunks]),
                    via=self._count_via,
                )
                candidate_patterns += len(counts)
                supported = {
                    key: count for key, count in counts if count >= threshold
                }
                if not supported:
                    continue
                c_k.update(supported)
                supported_keys = set(supported)
                for chunk in chunks:
                    survivors = filter_by_keys(chunk, supported_keys)
                    if len(survivors) == 0:
                        continue
                    if out_handle is None:
                        out_path = self._spill_path(f"r-k{self._k}")
                        out_handle = open(out_path, "wb")
                    self._write_chunk(survivors, out_handle)
                    out_rows += len(survivors)
                    out_extension_rows += int(
                        sum(extension_counts(survivors, index))
                    )
        finally:
            if out_handle is not None:
                out_handle.close()
        r_prime.partitions = []
        r_next = SpilledRelation(
            [out_path] if out_path is not None else [],
            out_rows,
            r_prime.k,
            out_extension_rows,
        )
        return candidate_patterns, c_k, r_next

    def size(self, r) -> int:
        if isinstance(r, InstanceRelation):
            return len(r)
        return r.num_rows

    # -- lifecycle ------------------------------------------------------------------

    def begin_iteration(self, k: int) -> None:
        self._k = k

    def extra_stats(self) -> dict[str, Any]:
        return {
            **super().extra_stats(),
            "memory_budget_bytes": self._budget,
            "spill": {
                "partitions": dict(self._partitions_per_k),
                "max_partitions": max(
                    self._partitions_per_k.values(), default=0
                ),
                "bytes_written": self._bytes_written,
                "bytes_read": self._bytes_read,
                "chunks_written": self._chunks_written,
            },
        }

    def close(self) -> None:
        if self._spill_root is not None:
            shutil.rmtree(self._spill_root, ignore_errors=True)
            self._spill_root = None


@register_engine(
    "setm-columnar-disk",
    description=(
        "out-of-core SETM: columnar kernel spilling R'_k key-range "
        "partitions under a memory budget"
    ),
    representation="columnar",
    out_of_core=True,
    streaming_ingest=True,
    accepted_options=(
        "count_via",
        "memory_budget_bytes",
        "spill_dir",
        "measure_memory",
    ),
)
def setm_columnar_disk(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    count_via: Literal["auto", "sort", "hash"] = "auto",
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    spill_dir: str | os.PathLike | None = None,
    measure_memory: bool = True,
) -> MiningResult:
    """Mine with bounded resident memory; identical results to ``setm``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fractional minimum support in ``(0, 1]`` or absolute count.
    max_length:
        Optional cap on pattern length.
    count_via:
        Counting strategy per partition — see
        :func:`repro.core.setm_columnar.setm_columnar`.
    memory_budget_bytes:
        Target resident size for the mining loop's relations.  Any
        ``R'_k`` predicted to exceed a quarter of this is spilled as
        ``ceil(bytes / (budget/4))`` key-range partitions and processed
        partition-at-a-time.  The fixed residents (``SALES``, its
        extension index, the ``C_k`` count relations) are outside the
        budget — the paper itself assumes ``C_k`` memory-resident.
    spill_dir:
        Directory for the run's private spill files (a fresh
        subdirectory is created and removed); defaults to the system
        temporary directory.

    Returns
    -------
    MiningResult
        Patterns, counts, and iteration statistics identical to
        :func:`repro.core.setm.setm`.  ``extra`` additionally carries
        ``memory_budget_bytes`` and a ``"spill"`` block — partitions
        per iteration, bytes written/read, chunks written — plus the
        loop-level ``peak_memory_bytes`` every kernel reports.
    """
    return run_figure4_loop(
        database,
        minimum_support,
        SpillingColumnarKernel(
            database,
            memory_budget_bytes=memory_budget_bytes,
            count_via=count_via,
            spill_dir=spill_dir,
        ),
        algorithm="setm-columnar-disk",
        max_length=max_length,
        extra={"count_via": count_via},
        measure_memory=measure_memory,
    )
