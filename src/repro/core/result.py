"""Result containers for mining runs: count relations and iteration stats.

The paper's evaluation (Section 6) is phrased entirely in terms of the
per-iteration relations SETM materializes:

* ``R_k``  — instances of supported ``k``-patterns, one row per
  ``(trans_id, item_1, ..., item_k)``; Figure 5 plots its size in Kbytes.
* ``C_k``  — the count relation ``(item_1, ..., item_k, count)``; Figure 6
  plots its cardinality.

:class:`IterationStats` records both (plus the pre-filter ``R'_k``), and
:class:`MiningResult` bundles the full run: every count relation, the
iteration trace, and the timing information the Section 6.2 table reports.
All algorithms in this package (SETM in-memory/SQL/disk, nested-loop, AIS,
Apriori, brute force) return a :class:`MiningResult`, which makes
differential testing trivial.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.core.transactions import Item

__all__ = [
    "BYTES_PER_FIELD",
    "IterationStats",
    "MiningResult",
    "Pattern",
    "pattern_bytes",
]

#: The paper represents every field (trans_id or item) as a 4-byte integer
#: (Section 3.2: "each item and transaction id is represented using 4 bytes").
BYTES_PER_FIELD = 4

#: A pattern is a lexicographically ordered tuple of items.
Pattern = tuple[Item, ...]


def pattern_bytes(pattern_length: int, cardinality: int) -> int:
    """Size in bytes of an ``R_k`` relation under the paper's layout.

    Each ``R_k`` tuple is ``(trans_id, item_1, ..., item_k)``:
    ``k + 1`` fields of 4 bytes (Section 4.3: "The size of a tuple from
    R_i is (i + 1) x 4 bytes").
    """
    return cardinality * (pattern_length + 1) * BYTES_PER_FIELD


@dataclass(frozen=True, slots=True)
class IterationStats:
    """Bookkeeping for one SETM iteration ``k``.

    Attributes
    ----------
    k:
        Pattern length of this iteration (1 for the initial ``SALES`` pass).
    candidate_instances:
        ``|R'_k|`` — rows produced by the merge-scan join *before* the
        minimum-support filter.  For ``k = 1`` this equals ``|R_1|``.
    supported_instances:
        ``|R_k|`` — rows retained after filtering against ``C_k``.
    candidate_patterns:
        Distinct patterns grouped out of ``R'_k`` (the ``GROUP BY`` input).
    supported_patterns:
        ``|C_k|`` — patterns meeting minimum support (Figure 6's y-axis).
    """

    k: int
    candidate_instances: int
    supported_instances: int
    candidate_patterns: int
    supported_patterns: int

    @property
    def r_bytes(self) -> int:
        """Size of ``R_k`` in bytes under the paper's 4-byte-field layout."""
        return pattern_bytes(self.k, self.supported_instances)

    @property
    def r_kbytes(self) -> float:
        """Size of ``R_k`` in Kbytes — the quantity Figure 5 plots."""
        return self.r_bytes / 1024.0

    @property
    def r_prime_bytes(self) -> int:
        """Size of the pre-filter ``R'_k`` in bytes."""
        return pattern_bytes(self.k, self.candidate_instances)


@dataclass
class MiningResult:
    """Complete outcome of one frequent-pattern mining run.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm (``"setm"``, ``"apriori"``, ...).
    num_transactions:
        Size of the mined database (the support denominator).
    minimum_support:
        The fractional minimum support requested.
    support_threshold:
        Absolute transaction-count threshold actually applied.
    count_relations:
        ``{k: {pattern: count}}`` — the supported patterns per length; the
        union of the ``C_k`` relations (each pattern lexicographically
        ordered).  ``count_relations[1]`` is the minsup-filtered ``C_1`` of
        the Section 3.1 SQL.
    unfiltered_item_counts:
        The *unfiltered* ``C_1`` of Figure 4's pseudocode ("C1 := generate
        counts from R1" has no HAVING clause); this is what makes
        ``|C_1| = 59`` constant across minsups in Figure 6.
    iterations:
        Per-iteration statistics, index 0 holding ``k = 1``.
    elapsed_seconds:
        Wall-clock mining time (0.0 when the caller did not time the run).
    extra:
        Algorithm-specific extras (e.g. page-access counts for the disk
        variant, candidate counts for Apriori/AIS).
    """

    algorithm: str
    num_transactions: int
    minimum_support: float
    support_threshold: int
    count_relations: dict[int, dict[Pattern, int]]
    unfiltered_item_counts: dict[Item, int] = field(default_factory=dict)
    iterations: list[IterationStats] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    # -- pattern access -----------------------------------------------------------

    def patterns_of_length(self, k: int) -> dict[Pattern, int]:
        """The ``C_k`` relation as ``{pattern: count}`` (empty if absent)."""
        return dict(self.count_relations.get(k, {}))

    def all_patterns(self) -> dict[Pattern, int]:
        """Every supported pattern of every length, merged into one mapping."""
        merged: dict[Pattern, int] = {}
        for relation in self.count_relations.values():
            merged.update(relation)
        return merged

    def iter_patterns(self) -> Iterator[tuple[Pattern, int]]:
        """Yield ``(pattern, count)`` pairs ordered by length then pattern."""
        for k in sorted(self.count_relations):
            relation = self.count_relations[k]
            for pattern in sorted(relation):
                yield pattern, relation[pattern]

    def support_count(self, pattern: Pattern) -> int | None:
        """Absolute support count of ``pattern`` or ``None`` if unsupported.

        The pattern is canonicalized (sorted) before lookup, so callers may
        pass items in any order.
        """
        canonical = tuple(sorted(pattern))
        relation = self.count_relations.get(len(canonical))
        if relation is None:
            return None
        return relation.get(canonical)

    def support_fraction(self, pattern: Pattern) -> float | None:
        """Fractional support of ``pattern`` or ``None`` if unsupported."""
        count = self.support_count(pattern)
        if count is None:
            return None
        return count / self.num_transactions

    @property
    def max_pattern_length(self) -> int:
        """Length of the longest supported pattern (0 when nothing qualifies)."""
        lengths = [k for k, rel in self.count_relations.items() if rel]
        return max(lengths, default=0)

    # -- evaluation-figure accessors ------------------------------------------------

    def r_sizes_kbytes(self) -> list[tuple[int, float]]:
        """``(k, Kbytes of R_k)`` series — one curve of Figure 5."""
        return [(stats.k, stats.r_kbytes) for stats in self.iterations]

    def c_cardinalities(self) -> list[tuple[int, int]]:
        """``(k, |C_k|)`` series — one curve of Figure 6.

        For ``k = 1`` the *unfiltered* cardinality is reported when
        available, matching the paper's "``|C_1| = 59`` in all cases".
        """
        series: list[tuple[int, int]] = []
        for stats in self.iterations:
            if stats.k == 1 and self.unfiltered_item_counts:
                series.append((1, len(self.unfiltered_item_counts)))
            else:
                series.append((stats.k, stats.supported_patterns))
        return series

    # -- comparison helpers ----------------------------------------------------------

    def same_patterns_as(self, other: "MiningResult") -> bool:
        """True when both runs found exactly the same supported patterns.

        Compares patterns *and* counts; ignores iteration traces, timings
        and algorithm names.  This is the core differential-testing check.
        """
        return self.all_patterns() == other.all_patterns()

    def __repr__(self) -> str:
        total = sum(len(rel) for rel in self.count_relations.values())
        return (
            f"MiningResult(algorithm={self.algorithm!r}, "
            f"patterns={total}, max_length={self.max_pattern_length}, "
            f"minsup={self.minimum_support}, "
            f"elapsed={self.elapsed_seconds:.3f}s)"
        )
