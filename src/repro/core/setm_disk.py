"""Algorithm SETM on paged storage, with the paper's I/O accounting.

This variant runs Figure 4 against the simulated disk of
:mod:`repro.storage`: ``SALES`` and every ``R_k`` / ``R'_k`` live in heap
files of 4 KB pages, sorting is a real external merge sort, and the
merge-scan join streams pages in file order.  The
:class:`~repro.storage.disk.IOStatistics` accumulated during the run are
returned in ``MiningResult.extra`` so experiments can compare *measured*
page accesses against the Section 4.3 bound:

    total ≤ (n-1)·‖R_1‖ + Σ‖R'_i‖ + 2·Σ‖R_i‖ + ...

(see :func:`repro.analysis.cost_model.sort_merge_page_accesses` for the
closed form).  Pattern labels are integer-encoded through the database's
:class:`~repro.core.transactions.ItemCatalog` — the storage engine stores
4-byte integer fields only, as the paper assumes — and decoded back before
the result is returned, so callers see the same patterns the in-memory
:func:`repro.core.setm.setm` produces.
"""

from __future__ import annotations

import time

from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine
from repro.storage.bufferpool import BufferPool
from repro.storage.disk import IOStatistics, SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.mergejoin import counting_scan, filter_scan, merge_scan_join
from repro.storage.page import PageFormat
from repro.storage.sort import external_sort

__all__ = ["setm_disk"]


@register_engine(
    "setm-disk",
    description="SETM on the paged storage engine (measures page accesses)",
    reports_page_accesses=True,
    representation="paged",
    accepted_options=("buffer_pages", "sort_memory_pages", "track_sort_order"),
)
def setm_disk(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    buffer_pages: int = 64,
    sort_memory_pages: int = 32,
    max_length: int | None = None,
    track_sort_order: bool = False,
) -> MiningResult:
    """Run disk-based SETM and report both patterns and page accesses.

    Parameters
    ----------
    database:
        Transactions to mine (items of any label type; encoded internally).
    minimum_support:
        Fractional minimum support in ``(0, 1]``.
    buffer_pages:
        Buffer-pool capacity.  Small relative to the data, so scans really
        hit the disk; large enough to hold the handful of hot pages the
        paper assumes resident.
    sort_memory_pages:
        Pages of sort memory for run generation / merge fan-in.
    max_length:
        Optional cap on pattern length.
    track_sort_order:
        The Section 4.1/4.3 optimization: produce ``R_k`` by a *filtered
        sort* of ``R'_k`` straight into ``(trans_id, items)`` order — the
        ``INSERT INTO R_k ... ORDER BY`` plan — so the next iteration's
        merge-scan needs no separate sort and the filter pass costs no
        extra read ("the sorting we did in the last step ... enables an
        efficient execution plan if the sort order of the relations is
        tracked across iterations").  Off by default to match Figure 4
        verbatim ("We have not included in this algorithm the
        optimizations mentioned in Section 4.3").

    Returns
    -------
    MiningResult
        ``extra`` carries:

        * ``"io"`` — total :class:`IOStatistics` for the mining run
          (excluding the initial load of ``SALES``, which the paper also
          excludes: the relation pre-exists);
        * ``"per_iteration_io"`` — ``{k: IOStatistics}`` deltas;
        * ``"page_counts"`` — ``{k: pages of R_k}`` (the ‖R_k‖ of §4.3);
        * ``"r_prime_page_counts"`` — ``{k: pages of R'_k}``;
        * ``"modelled_seconds"`` — I/O time under the 10 ms/20 ms model.
    """
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)
    encoded, catalog = database.encoded()

    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity=buffer_pages)

    # Materialize SALES in (trans_id, item) order — the clustered order
    # transactions are inserted in, which sales_rows() already yields.
    sales = HeapFile(pool, PageFormat(2))
    sales.extend(encoded.sales_rows())
    pool.flush_all()
    disk.reset_stats()  # the paper's costs start with SALES already on disk

    def decode(pattern: tuple[int, ...]) -> Pattern:
        return catalog.decode(pattern)

    # "sort R1 on item; C1 := generate counts from R1"
    r1_by_item = external_sort(
        sales, key=lambda record: record[1:], memory_pages=sort_memory_pages
    ).output
    unfiltered_c1 = counting_scan(r1_by_item)
    r1_by_item.drop()
    filtered_c1 = {
        decode(pattern): count
        for pattern, count in unfiltered_c1
        if count >= threshold
    }

    count_relations: dict[int, dict[Pattern, int]] = {1: filtered_c1}
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=sales.num_records,
            supported_instances=sales.num_records,
            candidate_patterns=len(unfiltered_c1),
            supported_patterns=len(filtered_c1),
        )
    ]
    page_counts: dict[int, int] = {1: sales.num_pages}
    r_prime_page_counts: dict[int, int] = {}
    per_iteration_io: dict[int, IOStatistics] = {
        1: disk.stats.snapshot()
    }
    previous_io = disk.stats.snapshot()

    # R_1 is SALES itself, already in (trans_id, item) order.
    r_current = sales
    r_current_is_sorted = True  # SALES arrives clustered by (trans_id, item)
    r_current_is_sales = True
    k = 1
    while r_current.num_records:
        k += 1
        if max_length is not None and k > max_length:
            break
        # sort R_{k-1} on trans_id, item_1, ..., item_{k-1} — skipped when
        # the previous iteration already produced that order ("We assume
        # R1 to be sorted" covers the first pass).
        if r_current_is_sorted:
            r_sorted = r_current
        else:
            r_sorted = external_sort(
                r_current, memory_pages=sort_memory_pages, drop_source=True
            ).output
        # R'_k := merge-scan(R_{k-1}, R_1)
        r_prime = merge_scan_join(r_sorted, sales)
        if not r_current_is_sales:
            r_sorted.drop()
        r_prime_page_counts[k] = r_prime.num_pages
        # sort R'_k on item_1, ..., item_k
        r_prime_by_items = external_sort(
            r_prime,
            key=lambda record: record[1:],
            memory_pages=sort_memory_pages,
            drop_source=True,
        ).output
        # C_k := generate counts (kept in memory, as the paper assumes)
        all_counts = counting_scan(r_prime_by_items)
        c_k = {
            pattern: count for pattern, count in all_counts if count >= threshold
        }
        # R_k := filter R'_k to retain supported patterns
        if track_sort_order:
            # Section 4.1's third statement as one fused pass: the
            # filtered sort writes R_k already in (trans_id, items)
            # order, so the next iteration's sort disappears.
            supported = set(c_k)
            r_next = external_sort(
                r_prime_by_items,
                memory_pages=sort_memory_pages,
                predicate=lambda record: record[1:] in supported,
            ).output
            r_next_is_sorted = True
        else:
            r_next = filter_scan(r_prime_by_items, set(c_k))
            r_next_is_sorted = False
        r_prime_by_items.drop()
        pool.flush_all()

        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=sum(count for _, count in all_counts),
                supported_instances=r_next.num_records,
                candidate_patterns=len(all_counts),
                supported_patterns=len(c_k),
            )
        )
        page_counts[k] = r_next.num_pages
        current_io = disk.stats.snapshot()
        per_iteration_io[k] = current_io.delta_since(previous_io)
        previous_io = current_io

        if c_k:
            count_relations[k] = {
                decode(pattern): count for pattern, count in c_k.items()
            }
        r_current = r_next
        r_current_is_sorted = r_next_is_sorted
        r_current_is_sales = False

    total_io = disk.stats.snapshot()
    return MiningResult(
        algorithm="setm-disk",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts={
            decode(pattern)[0]: count for pattern, count in unfiltered_c1
        },
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
        extra={
            "io": total_io,
            "per_iteration_io": per_iteration_io,
            "page_counts": page_counts,
            "r_prime_page_counts": r_prime_page_counts,
            "modelled_seconds": total_io.estimated_seconds(),
            "buffer_pages": buffer_pages,
            "sort_memory_pages": sort_memory_pages,
            "track_sort_order": track_sort_order,
        },
    )
