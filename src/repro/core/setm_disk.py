"""Algorithm SETM on paged storage, with the paper's I/O accounting.

This variant runs Figure 4 against the simulated disk of
:mod:`repro.storage`: ``SALES`` and every ``R_k`` / ``R'_k`` live in heap
files of 4 KB pages, sorting is a real external merge sort, and the
merge-scan join streams pages in file order.  The
:class:`~repro.storage.disk.IOStatistics` accumulated during the run are
returned in ``MiningResult.extra`` so experiments can compare *measured*
page accesses against the Section 4.3 bound:

    total ≤ (n-1)·‖R_1‖ + Σ‖R'_i‖ + 2·Σ‖R_i‖ + ...

(see :func:`repro.analysis.cost_model.sort_merge_page_accesses` for the
closed form).  Pattern labels are integer-encoded through the database's
:class:`~repro.core.transactions.ItemCatalog` — the storage engine stores
4-byte integer fields only, as the paper assumes — and decoded back before
the result is returned, so callers see the same patterns the in-memory
:func:`repro.core.setm.setm` produces.

Control flow vs. data movement
------------------------------
The engine is a :class:`PagedKernel` plugged into the one shared
:func:`~repro.core.setm.run_figure4_loop`: the loop owns the
``repeat ... until R_k = {}`` skeleton and the
:class:`~repro.core.result.IterationStats`, while the kernel owns
everything page-shaped — heap files, external sorts, file drops, and the
per-iteration :class:`IOStatistics` snapshots taken in its
``end_iteration`` lifecycle hook.  The kernel also tracks whether the
current ``R_k`` already sits in ``(trans_id, items)`` order ("We assume
R1 to be sorted" covers the first pass; the ``track_sort_order``
optimization extends that across iterations), so the loop's
``resort_by_tid`` step becomes a no-op exactly when the paper says it
can.
"""

from __future__ import annotations

from typing import Any

from repro.core.result import MiningResult, Pattern
from repro.core.setm import KernelLifecycle, run_figure4_loop
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine
from repro.storage.bufferpool import BufferPool
from repro.storage.disk import IOStatistics, SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.mergejoin import counting_scan, filter_scan, merge_scan_join
from repro.storage.page import PageFormat
from repro.storage.sort import external_sort

__all__ = ["PagedKernel", "setm_disk"]


class PagedKernel(KernelLifecycle):
    """Figure 4's steps over heap files on the simulated disk.

    Pattern keys are integer-id tuples (encoded through the database's
    :class:`~repro.core.transactions.ItemCatalog`); relations are
    :class:`~repro.storage.heapfile.HeapFile` objects whose page
    accesses the simulated disk books.  The lifecycle hooks collect the
    Section 4.3 telemetry the flat loop cannot see: per-iteration
    :class:`IOStatistics` deltas, ``‖R_k‖`` / ``‖R'_k‖`` page counts,
    and the modelled 10 ms/20 ms I/O time.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        *,
        buffer_pages: int = 64,
        sort_memory_pages: int = 32,
        track_sort_order: bool = False,
    ) -> None:
        self._database = database
        self._buffer_pages = buffer_pages
        self._sort_memory_pages = sort_memory_pages
        self._track_sort_order = track_sort_order

        self._disk = SimulatedDisk()
        self._pool = BufferPool(self._disk, capacity=buffer_pages)
        self._catalog = None
        self._sales: HeapFile | None = None

        # Sort-order bookkeeping: whether the current R_{k-1} is already
        # in (trans_id, items) order, and whether it *is* the SALES file
        # (which must never be dropped — the merge joins it every pass).
        self._current_is_sorted = True
        self._current_is_sales = True

        # Telemetry accumulated by the lifecycle hooks.
        self._k = 1
        self._page_counts: dict[int, int] = {}
        self._r_prime_page_counts: dict[int, int] = {}
        self._per_iteration_io: dict[int, IOStatistics] = {}
        self._previous_io = self._disk.stats.snapshot()

    # -- data movement --------------------------------------------------------------

    def make_sales(self) -> HeapFile:
        # Materialize SALES in (trans_id, item) order — the clustered
        # order transactions are inserted in, which sales_rows() already
        # yields.
        encoded, self._catalog = self._database.encoded()
        sales = HeapFile(self._pool, PageFormat(2))
        sales.extend(encoded.sales_rows())
        self._pool.flush_all()
        # The paper's costs start with SALES already on disk.
        self._disk.reset_stats()
        self._previous_io = self._disk.stats.snapshot()
        self._sales = sales
        return sales

    def c1_counts(self, sales: HeapFile) -> list[tuple[tuple[int, ...], int]]:
        # "sort R1 on item; C1 := generate counts from R1"
        r1_by_item = external_sort(
            sales,
            key=lambda record: record[1:],
            memory_pages=self._sort_memory_pages,
        ).output
        counts = counting_scan(r1_by_item)
        r1_by_item.drop()
        return counts

    def resort_by_tid(self, r: HeapFile) -> HeapFile:
        # Skipped when the previous iteration already produced that
        # order ("We assume R1 to be sorted" covers the first pass).
        if self._current_is_sorted:
            return r
        return external_sort(
            r, memory_pages=self._sort_memory_pages, drop_source=True
        ).output

    def merge_extend(self, r: HeapFile, sales: HeapFile) -> HeapFile:
        r_prime = merge_scan_join(r, sales)
        if not self._current_is_sales:
            r.drop()
        self._r_prime_page_counts[self._k] = r_prime.num_pages
        return r_prime

    def count_and_filter(
        self, r_prime: HeapFile, threshold: int
    ) -> tuple[int, dict[tuple[int, ...], int], HeapFile]:
        # sort R'_k on item_1, ..., item_k
        r_prime_by_items = external_sort(
            r_prime,
            key=lambda record: record[1:],
            memory_pages=self._sort_memory_pages,
            drop_source=True,
        ).output
        # C_k := generate counts (kept in memory, as the paper assumes)
        all_counts = counting_scan(r_prime_by_items)
        c_k = {
            pattern: count for pattern, count in all_counts if count >= threshold
        }
        # R_k := filter R'_k to retain supported patterns
        if self._track_sort_order:
            # Section 4.1's third statement as one fused pass: the
            # filtered sort writes R_k already in (trans_id, items)
            # order, so the next iteration's sort disappears.
            supported = set(c_k)
            r_next = external_sort(
                r_prime_by_items,
                memory_pages=self._sort_memory_pages,
                predicate=lambda record: record[1:] in supported,
            ).output
            self._current_is_sorted = True
        else:
            r_next = filter_scan(r_prime_by_items, set(c_k))
            self._current_is_sorted = False
        r_prime_by_items.drop()
        self._pool.flush_all()
        self._current_is_sales = False
        return len(all_counts), c_k, r_next

    def size(self, r: HeapFile) -> int:
        return r.num_records

    def decode(self, key: tuple[int, ...], k: int) -> Pattern:
        return self._catalog.decode(key)

    # -- lifecycle ------------------------------------------------------------------

    def begin_iteration(self, k: int) -> None:
        self._k = k

    def end_iteration(self, k: int, r_prime: HeapFile, r_next: HeapFile) -> None:
        self._page_counts[k] = r_next.num_pages
        current = self._disk.stats.snapshot()
        self._per_iteration_io[k] = (
            current if k == 1 else current.delta_since(self._previous_io)
        )
        self._previous_io = current

    def extra_stats(self) -> dict[str, Any]:
        total_io = self._disk.stats.snapshot()
        return {
            "io": total_io,
            "per_iteration_io": dict(self._per_iteration_io),
            "page_counts": dict(self._page_counts),
            "r_prime_page_counts": dict(self._r_prime_page_counts),
            "modelled_seconds": total_io.estimated_seconds(),
            "buffer_pages": self._buffer_pages,
            "sort_memory_pages": self._sort_memory_pages,
            "track_sort_order": self._track_sort_order,
        }


@register_engine(
    "setm-disk",
    description="SETM on the paged storage engine (measures page accesses)",
    reports_page_accesses=True,
    representation="paged",
    accepted_options=(
        "buffer_pages",
        "sort_memory_pages",
        "track_sort_order",
        "measure_memory",
    ),
)
def setm_disk(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    buffer_pages: int = 64,
    sort_memory_pages: int = 32,
    max_length: int | None = None,
    track_sort_order: bool = False,
    measure_memory: bool = True,
) -> MiningResult:
    """Run disk-based SETM and report both patterns and page accesses.

    Parameters
    ----------
    database:
        Transactions to mine (items of any label type; encoded internally).
    minimum_support:
        Fractional minimum support in ``(0, 1]``.
    buffer_pages:
        Buffer-pool capacity.  Small relative to the data, so scans really
        hit the disk; large enough to hold the handful of hot pages the
        paper assumes resident.
    sort_memory_pages:
        Pages of sort memory for run generation / merge fan-in.
    max_length:
        Optional cap on pattern length.
    track_sort_order:
        The Section 4.1/4.3 optimization: produce ``R_k`` by a *filtered
        sort* of ``R'_k`` straight into ``(trans_id, items)`` order — the
        ``INSERT INTO R_k ... ORDER BY`` plan — so the next iteration's
        merge-scan needs no separate sort and the filter pass costs no
        extra read ("the sorting we did in the last step ... enables an
        efficient execution plan if the sort order of the relations is
        tracked across iterations").  Off by default to match Figure 4
        verbatim ("We have not included in this algorithm the
        optimizations mentioned in Section 4.3").

    Returns
    -------
    MiningResult
        ``extra`` carries:

        * ``"io"`` — total :class:`IOStatistics` for the mining run
          (excluding the initial load of ``SALES``, which the paper also
          excludes: the relation pre-exists);
        * ``"per_iteration_io"`` — ``{k: IOStatistics}`` deltas;
        * ``"page_counts"`` — ``{k: pages of R_k}`` (the ‖R_k‖ of §4.3);
        * ``"r_prime_page_counts"`` — ``{k: pages of R'_k}``;
        * ``"modelled_seconds"`` — I/O time under the 10 ms/20 ms model.
    """
    return run_figure4_loop(
        database,
        minimum_support,
        PagedKernel(
            database,
            buffer_pages=buffer_pages,
            sort_memory_pages=sort_memory_pages,
            track_sort_order=track_sort_order,
        ),
        algorithm="setm-disk",
        max_length=max_length,
        measure_memory=measure_memory,
    )
