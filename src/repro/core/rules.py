"""Rule generation from the count relations (Section 5 of the paper).

    "For any pattern of length k, we consider all possible combinations of
    k-1 items in the antecedent.  The remaining item not used in the
    combinations is in the consequent.  [...] In order to check the
    confidence factor, we need the count for the current pattern (available
    in the current count relation C_k) and the count for the pattern
    comprising the antecedent (available by lookup in a previous count
    relation C_{k-1})."

The paper emits rules with a **single-item consequent** only; that is what
:func:`generate_rules` implements.  Multi-item consequents (the Apriori-era
generalization) live in :mod:`repro.extensions.multi_consequent`.

Rules render in the paper's notation ``X ==> I, [c%, s%]`` where ``c`` is
the confidence factor and ``s`` the support percentage — the format of the
Section 5 listings, reproduced verbatim by ``examples/quickstart.py``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.result import MiningResult, Pattern

__all__ = ["Rule", "generate_rules", "rules_as_paper_lines"]


@dataclass(frozen=True, slots=True)
class Rule:
    """An association rule ``antecedent => consequent``.

    Attributes
    ----------
    antecedent:
        Lexicographically ordered items on the left-hand side.
    consequent:
        Items on the right-hand side (length 1 for paper-faithful rules).
    support_count:
        Number of transactions containing ``antecedent + consequent``.
    support:
        ``support_count / num_transactions`` — the paper's ``s``.
    confidence:
        ``supp(pattern) / supp(antecedent)`` — the paper's ``c``.
    lift:
        ``confidence / supp(consequent)``; not in the paper (the measure
        postdates it) but standard for downstream users, so exposed here.
    """

    antecedent: Pattern
    consequent: Pattern
    support_count: int
    support: float
    confidence: float
    lift: float

    @property
    def pattern(self) -> Pattern:
        """The underlying supported pattern (antecedent ∪ consequent)."""
        return tuple(sorted(self.antecedent + self.consequent))

    def as_paper_line(self) -> str:
        """Render in the paper's ``X ==> I, [c%, s%]`` notation."""
        lhs = " ".join(str(item) for item in self.antecedent)
        rhs = " ".join(str(item) for item in self.consequent)
        return (
            f"{lhs} ==> {rhs}, "
            f"[{self.confidence * 100:.1f}%, {self.support * 100:.1f}%]"
        )

    def __str__(self) -> str:
        return self.as_paper_line()


def _antecedent_count(
    result: MiningResult, antecedent: Pattern
) -> int | None:
    """Support count of ``antecedent`` from ``C_{k-1}`` (or unfiltered C_1).

    By downward closure every sub-pattern of a supported pattern is itself
    supported, so the lookup succeeds for complete mining runs; the
    unfiltered-``C_1`` fallback covers results produced with ``max_length``
    caps or by partial backends.
    """
    count = result.support_count(antecedent)
    if count is not None:
        return count
    if len(antecedent) == 1 and result.unfiltered_item_counts:
        return result.unfiltered_item_counts.get(antecedent[0])
    return None


def generate_rules(
    result: MiningResult,
    minimum_confidence: float,
    *,
    min_pattern_length: int = 2,
) -> list[Rule]:
    """Generate all qualifying single-consequent rules from a mining result.

    Parameters
    ----------
    result:
        A :class:`MiningResult` from any algorithm in this package.
    minimum_confidence:
        Fractional confidence threshold in ``(0, 1]``; a rule qualifies when
        ``confidence >= minimum_confidence`` ("meets or exceeds", Section 5).
    min_pattern_length:
        Rules are generated from patterns of at least this length (2 in the
        paper: a rule needs a non-empty antecedent and a consequent).

    Returns
    -------
    list[Rule]
        Ordered by pattern length, then antecedent, then consequent — the
        order the paper's listings follow (all ``C_2`` rules before ``C_3``
        rules).
    """
    if not 0.0 < minimum_confidence <= 1.0:
        raise ValueError(
            f"minimum_confidence must be in (0, 1], got {minimum_confidence!r}"
        )
    if min_pattern_length < 2:
        raise ValueError("min_pattern_length must be at least 2")

    rules: list[Rule] = []
    n = result.num_transactions
    for k in sorted(result.count_relations):
        if k < min_pattern_length:
            continue
        for pattern in sorted(result.count_relations[k]):
            pattern_count = result.count_relations[k][pattern]
            for index, consequent_item in enumerate(pattern):
                antecedent = pattern[:index] + pattern[index + 1 :]
                antecedent_count = _antecedent_count(result, antecedent)
                if not antecedent_count:
                    continue
                confidence = pattern_count / antecedent_count
                if confidence < minimum_confidence:
                    continue
                consequent_count = _antecedent_count(
                    result, (consequent_item,)
                )
                lift = (
                    confidence / (consequent_count / n)
                    if consequent_count
                    else float("nan")
                )
                rules.append(
                    Rule(
                        antecedent=antecedent,
                        consequent=(consequent_item,),
                        support_count=pattern_count,
                        support=pattern_count / n,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda rule: (len(rule.pattern), rule.antecedent, rule.consequent))
    return rules


def rules_as_paper_lines(rules: Iterable[Rule]) -> list[str]:
    """Render rules in the paper's listing format, one string per rule."""
    return [rule.as_paper_line() for rule in rules]
