"""Partition-parallel SETM: counting ``R'_k`` in worker processes.

Figure 4's count/filter pass has no cross-row dependencies, and
key-range partitioning makes per-partition counts *global* counts —
the same two facts the out-of-core engine exploits to count
partition-at-a-time.  This engine exploits them sideways: the
:class:`~repro.core.partitioning.Partition` work units are counted
*simultaneously* in a :mod:`multiprocessing` pool instead of one at a
time.

The division of labour per iteration:

* the parent builds ``R'_k`` exactly as ``setm-columnar`` does
  (:func:`~repro.core.columns.suffix_extend`), then splits it into one
  key-range partition per worker
  (:func:`~repro.core.partitioning.boundaries_from_keys` +
  :func:`~repro.core.partitioning.split_by_key_ranges`);
* each worker receives a picklable :class:`Partition` (chunk bytes in
  the spill format, including the big-key fallback), counts its keys
  with :func:`~repro.core.columns.count_packed_keys`, and sends back
  compact ``(keys, counts)`` arrays;
* the parent merges results **in submission order** (ascending key
  range, so disjoint — merging is concatenation, never reconciliation),
  applies the HAVING threshold, and filters ``R'_k`` in-process.

Because the filter runs on the parent's intact ``R'_k``, the surviving
relation is *the same object in the same row order* the serial columnar
kernel would produce — patterns, rules, and
:class:`~repro.core.result.IterationStats` are identical to ``setm``
(differentially tested over QUEST × minsup × workers grids).

Small iterations short-circuit to in-process counting below
``parallel_threshold`` rows: the QUEST tails (a few thousand rows by
``k = 3``) would pay more in chunk serialization and IPC than the count
costs.  Worker pools are created lazily, keyed by
``(start_method, workers)``, and **reused across runs** — a long-lived
mining session (the ROADMAP's serve layer) pays pool start-up once, not
per request.  :func:`shutdown_worker_pools` tears them down; an
``atexit`` hook does the same at interpreter exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from array import array
from multiprocessing.pool import RUN as _POOL_RUN
from typing import Any, Literal, Sequence

from repro.core.columns import count_packed_keys, filter_by_keys
from repro.core.partitioning import (
    Partition,
    boundaries_from_keys,
    concat_columns,
    decode_buffer_chunks,
    key_ranges,
    split_by_key_ranges,
)
from repro.core.result import MiningResult
from repro.core.setm import run_figure4_loop
from repro.core.setm_columnar import ColumnarKernel
from repro.core.transactions import TransactionDatabase
from repro.core.transport import (
    TransportSession,
    negotiate_pool_transport,
    pack_buffers,
    partition_buffer,
    resolve_transport,
)
from repro.errors import InvalidConfigError
from repro.registry import register_engine

__all__ = [
    "DEFAULT_PARALLEL_THRESHOLD",
    "ParallelColumnarKernel",
    "PoolTransportMixin",
    "default_workers",
    "pool_map",
    "pool_stats",
    "resolve_start_method",
    "resolved_start_method",
    "setm_parallel",
    "shutdown_worker_pools",
    "validate_workers",
]


def default_workers() -> int:
    """The worker count a parallel engine uses when none is given.

    One owner for the default: the kernel applies it, and
    ``Miner.explain`` quotes it when describing a run it has not
    started.
    """
    return os.cpu_count() or 1

#: Rows below which an iteration is counted in-process.  Calibrated to
#: where the pool stops paying for itself: below ~64k rows the
#: vectorized count is single-digit milliseconds, less than the chunk
#: serialization + IPC round trip it would replace.
DEFAULT_PARALLEL_THRESHOLD = 65536

#: Environment override for the pool start method (the CI matrix runs
#: the suite under both ``fork`` and ``spawn`` through this).
START_METHOD_ENV = "REPRO_MP_START_METHOD"

#: Live pools keyed by ``(start_method, workers)``.  Shared across
#: kernels and runs on purpose: pool start-up (especially under
#: ``spawn``) costs more than a whole small mining run, and a serving
#: process should pay it once.  ``setm-spill-parallel`` dispatches its
#: on-disk partitions to these same pools.
_POOLS: dict[tuple[str | None, int], Any] = {}

#: Guards every read-modify-write of ``_POOLS``.  The serve layer's
#: scheduler threads hit the cache concurrently; without the lock two
#: threads could both miss and each start a pool (leaking one), or one
#: could evict an entry mid-lookup of another.  Reentrant because an
#: eviction path may run inside a section that already holds it.
_POOLS_LOCK = threading.RLock()


def validate_workers(workers: int | None) -> int:
    """``workers`` as a validated positive int (``None`` → CPU count).

    Shared by every parallel kernel so the error message — and the
    ``os.cpu_count()`` default — have exactly one owner.
    """
    if workers is None:
        workers = default_workers()
    if (
        isinstance(workers, bool)
        or not isinstance(workers, int)
        or workers < 1
    ):
        raise InvalidConfigError(
            f"workers must be a positive integer or None; got {workers!r}"
        )
    return workers


def resolve_start_method(start_method: str | None) -> str | None:
    """A validated pool start method (``None`` → env override → platform).

    ``None`` defers first to the ``REPRO_MP_START_METHOD`` environment
    variable (the CI matrix's knob), then to the platform default at
    pool-creation time.
    """
    if start_method is None:
        start_method = os.environ.get(START_METHOD_ENV) or None
    if (
        start_method is not None
        and start_method not in multiprocessing.get_all_start_methods()
    ):
        raise InvalidConfigError(
            f"start_method must be one of "
            f"{multiprocessing.get_all_start_methods()} or None; "
            f"got {start_method!r}"
        )
    return start_method


def resolved_start_method(start_method: str | None) -> str:
    """The concrete method a ``None`` configuration resolves to."""
    return start_method or multiprocessing.get_start_method()


def _pack_counts(counts: Sequence[tuple[int, int]]) -> tuple[str, Any, bytes]:
    """``(key, count)`` pairs as two flat buffers for the return pickle.

    Keys beyond 64 bits (the big-key fallback) go back as a plain list.
    """
    distinct = [key for key, _ in counts]
    tallies = array("q", (count for _, count in counts))
    try:
        return "q", array("q", map(int, distinct)).tobytes(), tallies.tobytes()
    except OverflowError:
        return "big", distinct, tallies.tobytes()


def _count_partition(
    task: tuple[Partition, str, str, str | None],
) -> tuple[str, tuple, int]:
    """Worker body: count one partition's packed keys.

    Runs in the pool process.  The partition arrives as whatever
    descriptor the session's transport published — inline bytes, a
    shared-memory slice, or a spool/spill path — and is decoded
    straight over that buffer
    (:func:`~repro.core.partitioning.decode_buffer_chunks`).  The
    reply's flat ``(keys, counts)`` buffers leave through the same
    transport: a parent-named reply segment under ``shm``, the result
    pickle otherwise.  Returns ``(kind, envelope, zero_copy_bytes)``.
    """
    partition, via, mode, reply_name = task
    with partition_buffer(partition, mode) as (buffer, source):
        chunks, zero_copy = decode_buffer_chunks(buffer)
        keys = concat_columns([chunk.keys for chunk in chunks])
        counts = count_packed_keys(keys, via=via)
        # The chunk columns borrow the shm/mmap buffer; drop them (and
        # any single-chunk key view) before the context releases it.
        del chunks, keys
    if source not in ("shm", "mmap"):
        # Inline/whole-read payloads were already copied to reach this
        # process; viewing them saves nothing worth reporting.
        zero_copy = 0
    kind, distinct, tally_bytes = _pack_counts(counts)
    return kind, pack_buffers([distinct, tally_bytes], reply_name), zero_copy


def _unpack_counts(
    packed: tuple[str, Any, bytes],
) -> tuple[Sequence[int], array]:
    """Invert the worker's reply into ``(keys, counts)`` columns."""
    kind, distinct, tally_bytes = packed
    tallies = array("q")
    tallies.frombytes(tally_bytes)
    if kind == "q":
        keys = array("q")
        keys.frombytes(distinct)
        return keys, tallies
    return distinct, tallies


def _pool_alive(pool: Any) -> bool:
    """Whether a pool can still accept work.

    A pool survives *worker* exceptions (they propagate out of ``map``
    and the processes live on), but a terminated/closed/broken pool is
    permanently dead — ``map`` would raise ``ValueError: Pool not
    running`` forever.  The state attribute is CPython-internal, so an
    implementation without it is conservatively treated as alive.
    """
    return getattr(pool, "_state", _POOL_RUN) == _POOL_RUN


def _shared_pool(start_method: str | None, workers: int):
    """The (lazily created, cached) pool for this configuration.

    A cached pool that died since the last run (terminated by a test,
    broken by a crashed worker) is discarded and transparently
    recreated — a stale cache entry must never fail a fresh run.

    Thread-safe: concurrent callers of the same configuration get the
    *same* pool object (one of them creates it; the others wait on the
    lock), never two racing pools.
    """
    key = (start_method, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and not _pool_alive(pool):
            del _POOLS[key]
            pool = None
        if pool is None:
            context = multiprocessing.get_context(start_method)
            pool = context.Pool(processes=workers)
            if not _POOLS:
                atexit.register(shutdown_worker_pools)
            _POOLS[key] = pool
        return pool


def pool_map(
    start_method: str | None, workers: int, func: Any, tasks: Sequence
) -> list:
    """Map ``func`` over ``tasks`` on the cached pool for this config.

    Worker exceptions propagate unchanged (the pool itself survives
    them and stays cached for the next run).  If the dispatch itself
    fails because the pool broke mid-flight, the dead pool is evicted
    from the cache so the next run starts a fresh one instead of
    hitting ``Pool not running`` forever.
    """
    key = (start_method, workers)
    pool = _shared_pool(start_method, workers)
    try:
        return pool.map(func, tasks, chunksize=1)
    except BaseException:
        with _POOLS_LOCK:
            if not _pool_alive(pool) and _POOLS.get(key) is pool:
                del _POOLS[key]
        raise


def pool_stats() -> list[dict[str, Any]]:
    """A snapshot of the cached pools: configuration and liveness.

    One entry per cached pool, sorted by configuration.  ``start_method``
    reports the *resolved* method (what ``None`` meant at creation
    time), ``alive`` whether the pool can still accept work.  The serve
    layer's ``stats`` op surfaces this.
    """
    with _POOLS_LOCK:
        snapshot = list(_POOLS.items())
    return [
        {
            "start_method": resolved_start_method(start_method),
            "workers": workers,
            "alive": _pool_alive(pool),
        }
        for (start_method, workers), pool in sorted(
            snapshot, key=lambda item: (item[0][0] or "", item[0][1])
        )
    ]


def shutdown_worker_pools() -> None:
    """Terminate every cached worker pool (idempotent and thread-safe).

    Long-lived processes that want to release the workers — or tests
    that must not leak them across start-method changes — call this;
    an ``atexit`` hook calls it at interpreter exit regardless.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.terminate()
        pool.join()


class PoolTransportMixin:
    """Transport negotiation + telemetry shared by the pooled kernels.

    Expects the host kernel to provide ``self._workers`` and
    ``self._start_method`` before :meth:`_init_transport` runs.  Both
    pooled kernels (in-memory and spill) dispatch through
    :meth:`_dispatch` — the one seam the crash-injection tests
    override — and report :meth:`transport_stats` in their
    ``extra_stats``.
    """

    #: What ``transport="auto"`` means for this kernel's partitions:
    #: ``shm`` for in-memory payloads, ``mmap`` for spill files.
    _AUTO_TRANSPORT = "shm"

    def _init_transport(self, transport: str | None) -> None:
        self._transport_requested = resolve_transport(transport)
        self._transport_mode: str | None = None
        self._transport_fallback: str | None = None
        self._transport_sessions = 0
        self._transport_counters: dict[str, int] = {}

    def _dispatch(self, func, tasks: list) -> list:
        """Run one iteration's tasks on the shared pool.

        The one seam between the kernel and the pool — the
        crash-injection tests override it to poison tasks mid-flight
        and prove the transport session cleans up anyway.
        """
        return pool_map(self._start_method, self._workers, func, tasks)

    def _negotiated_transport(self) -> str:
        """The concrete transport for this kernel's pool (cached).

        ``auto`` prefers the kernel's class default; ``shm`` (chosen or
        preferred) is proven through the real pool first and demotes to
        ``pickle`` — reason recorded in the telemetry — if the
        handshake fails.
        """
        if self._transport_mode is None:
            requested = self._transport_requested
            concrete = (
                self._AUTO_TRANSPORT if requested == "auto" else requested
            )
            self._transport_mode, self._transport_fallback = (
                negotiate_pool_transport(
                    concrete,
                    start_method=self._start_method,
                    workers=self._workers,
                    mapper=self._dispatch,
                )
            )
        return self._transport_mode

    def _record_transport(self, session: TransportSession) -> None:
        """Fold one closed session's counters into the run telemetry."""
        session.close()
        self._transport_sessions += 1
        for key, value in session.counters.items():
            self._transport_counters[key] = (
                self._transport_counters.get(key, 0) + value
            )

    def transport_stats(self) -> dict[str, Any]:
        """The ``extra["transport"]`` telemetry block for this run."""
        return {
            "requested": self._transport_requested,
            "mode": self._transport_mode,
            "fallback_reason": self._transport_fallback,
            "sessions": self._transport_sessions,
            **{
                key: self._transport_counters.get(key, 0)
                for key in (
                    "task_bytes_inline",
                    "task_bytes_shared",
                    "task_bytes_spooled",
                    "reply_bytes_inline",
                    "reply_bytes_shared",
                    "zero_copy_bytes",
                )
            },
        }


class ParallelColumnarKernel(PoolTransportMixin, ColumnarKernel):
    """The columnar Figure-4 steps with pooled partition counting.

    ``merge_extend`` and the support filter are inherited unchanged
    from :class:`ColumnarKernel`; only the counting of iterations with
    at least ``parallel_threshold`` candidate rows is farmed out, one
    key-range partition per worker.  ``workers=1`` degenerates to the
    serial columnar kernel (no pool is ever created).
    """

    def __init__(
        self,
        database: TransactionDatabase,
        *,
        workers: int | None = None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        count_via: Literal["auto", "sort", "hash"] = "auto",
        start_method: str | None = None,
        transport: str | None = None,
    ) -> None:
        super().__init__(database, count_via=count_via)
        if (
            isinstance(parallel_threshold, bool)
            or not isinstance(parallel_threshold, int)
            or parallel_threshold < 0
        ):
            raise InvalidConfigError(
                "parallel_threshold must be a non-negative integer; "
                f"got {parallel_threshold!r}"
            )
        self._workers = validate_workers(workers)
        self._parallel_threshold = parallel_threshold
        self._start_method = resolve_start_method(start_method)
        self._init_transport(transport)
        self._k = 1
        self._partitions_per_k: dict[int, int] = {}
        self._short_circuited: list[int] = []

    # -- Figure-4 steps -------------------------------------------------------------

    def count_and_filter(self, r_prime, threshold: int):
        if (
            self._workers <= 1
            or len(r_prime) < self._parallel_threshold
        ):
            if len(r_prime):
                self._short_circuited.append(self._k)
            return super().count_and_filter(r_prime, threshold)

        partitions = self._partition(r_prime)
        if len(partitions) < 2:
            # Degenerate key distribution (every row the same pattern):
            # nothing to parallelize over.  Empty iterations are not
            # "short-circuited" — there was nothing to count at all.
            if len(r_prime):
                self._short_circuited.append(self._k)
            return super().count_and_filter(r_prime, threshold)

        mode = self._negotiated_transport()
        candidate_patterns = 0
        c_k: dict[int, int] = {}
        with TransportSession(mode) as session:
            tasks = [
                (published, self._count_via, mode, session.reply_name(i))
                for i, published in enumerate(session.publish(partitions))
            ]
            replies = self._dispatch(_count_partition, tasks)

            # Submission order == ascending key range: partition results
            # are disjoint, so the merge is concatenation and the
            # per-partition HAVING clause is the global one.
            for kind, envelope, zero_copy in replies:
                session.note_zero_copy(zero_copy)
                distinct, tally_bytes = session.collect(envelope)
                keys, tallies = _unpack_counts((kind, distinct, tally_bytes))
                candidate_patterns += len(keys)
                for key, count in zip(keys, tallies):
                    if count >= threshold:
                        c_k[int(key)] = count
            self._record_transport(session)
        r_next = filter_by_keys(r_prime, set(c_k))
        self._partitions_per_k[self._k] = len(partitions)
        return candidate_patterns, c_k, r_next

    def _partition(self, r_prime) -> list[Partition]:
        """One picklable key-range work unit per worker."""
        boundaries = boundaries_from_keys(r_prime.keys, self._workers)
        if not boundaries:
            return []
        ranges = key_ranges(boundaries, len(boundaries) + 1)
        return [
            Partition.from_relation(
                rows, key_low=ranges[p][0], key_high=ranges[p][1]
            )
            for p, rows in split_by_key_ranges(r_prime, boundaries)
        ]

    # -- lifecycle ------------------------------------------------------------------

    def begin_iteration(self, k: int) -> None:
        self._k = k

    def extra_stats(self) -> dict[str, Any]:
        return {
            **super().extra_stats(),
            "workers": self._workers,
            "parallel": {
                "partitions": dict(self._partitions_per_k),
                "parallel_iterations": sorted(self._partitions_per_k),
                "short_circuited": sorted(set(self._short_circuited)),
                "threshold_rows": self._parallel_threshold,
                "start_method": resolved_start_method(self._start_method),
            },
            "transport": self.transport_stats(),
        }


@register_engine(
    "setm-parallel",
    description=(
        "partition-parallel SETM: R'_k key-range partitions counted "
        "in a multiprocessing pool"
    ),
    representation="columnar",
    parallel=True,
    streaming_ingest=True,
    accepted_options=(
        "count_via",
        "workers",
        "parallel_threshold",
        "start_method",
        "transport",
        "measure_memory",
    ),
)
def setm_parallel(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    count_via: Literal["auto", "sort", "hash"] = "auto",
    workers: int | None = None,
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
    start_method: str | None = None,
    transport: str | None = None,
    measure_memory: bool = True,
) -> MiningResult:
    """Mine with pooled partition counting; identical results to ``setm``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fractional minimum support in ``(0, 1]`` or absolute count.
    max_length:
        Optional cap on pattern length.
    count_via:
        Counting strategy per partition — see
        :func:`repro.core.setm_columnar.setm_columnar`.
    workers:
        Pool size; defaults to ``os.cpu_count()``.  ``workers=1``
        forces fully serial execution (no pool, byte-identical to
        ``setm-columnar``'s behavior).
    parallel_threshold:
        Iterations with fewer candidate rows than this are counted
        in-process — pool IPC costs more than counting small relations.
        ``0`` parallelizes every non-empty iteration (the differential
        tests use this to force the pool).
    start_method:
        ``multiprocessing`` start method for the pool (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` defers to the
        ``REPRO_MP_START_METHOD`` environment variable, then the
        platform default.
    transport:
        How partition payloads cross the process boundary —
        ``"pickle"`` (inside the task pickle), ``"shm"``
        (shared-memory descriptors, zero-copy worker views),
        ``"mmap"`` (spooled to files workers map), or
        ``"auto"``/``None`` (prefer ``shm``, proven by a per-pool
        handshake, demoting to ``pickle`` on failure).  Results are
        byte-identical on every transport.

    Returns
    -------
    MiningResult
        Patterns, counts, and iteration statistics identical to
        :func:`repro.core.setm.setm`.  ``extra`` additionally carries
        ``workers``, a ``"parallel"`` block — partitions per
        iteration, which iterations went to the pool, which
        short-circuited, and the resolved start method — and a
        ``"transport"`` block with the negotiated mode and
        bytes-moved / copies-avoided counters.
    """
    return run_figure4_loop(
        database,
        minimum_support,
        ParallelColumnarKernel(
            database,
            workers=workers,
            parallel_threshold=parallel_threshold,
            count_via=count_via,
            start_method=start_method,
            transport=transport,
        ),
        algorithm="setm-parallel",
        max_length=max_length,
        extra={"count_via": count_via},
        measure_memory=measure_memory,
    )
