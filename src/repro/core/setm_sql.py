"""SETM executed as SQL statements — the paper's headline claim, live.

    "The major contribution of this paper is that it shows that at least
    some aspects of data mining can be carried out by using general query
    languages such as SQL, rather than by developing specialized black
    box algorithms."

:func:`setm_sql` drives Figure 4's loop by issuing the *generated* SQL of
Sections 3.1/4.1 (see :mod:`repro.sql.generator`) against any backend
implementing the three-method :class:`SQLBackend` protocol.  Two backends
ship:

* :class:`NativeBackend` — the bundled SQL engine
  (:class:`repro.sql.database.SQLDatabase`);
* ``repro.sqlbridge.SQLiteBackend`` — the stdlib ``sqlite3``.

Both produce bit-identical count relations to the in-memory
:func:`repro.core.setm.setm`; the integration tests assert it.

Like every other SETM engine, the SQL variant is a kernel plugged into
the one shared :func:`~repro.core.setm.run_figure4_loop`:
:class:`SQLKernel`'s relations are *table names* and its five Figure-4
steps are the generated ``CREATE``/``INSERT`` statements, so the
``extra["statements"]`` transcript records a replayable script while the
loop owns the control flow, the iteration statistics, and the
peak-memory accounting.

:func:`setm_sql` can also run the **nested-loop formulation** (Section
3.1): pass ``strategy="nested-loop"`` and each ``C_k`` is produced by the
``C_{k-1} × SALES^k`` join instead of the materialized ``R'_k`` pipeline
(the kernel then reports no ``R'_k`` cardinalities — the join never
materializes them, and the supported-instance count is the sum of the
``C_k`` counts, exactly as before the port).
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.core.result import MiningResult, Pattern
from repro.core.setm import KernelLifecycle, run_figure4_loop
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine
from repro.sql import generator as gen

__all__ = ["NativeBackend", "SQLBackend", "SQLKernel", "setm_sql"]


class SQLBackend(Protocol):
    """What :func:`setm_sql` needs from a database."""

    def execute(
        self, sql: str, params: dict[str, object] | None = None
    ) -> list[tuple] | None:
        """Run one statement; SELECTs return rows, others may return None."""

    def query_count(self, table: str) -> int:
        """``SELECT COUNT(*) FROM table``."""

    def item_type(self) -> str:
        """SQL type of the item column: ``"INTEGER"`` or ``"TEXT"``."""


class NativeBackend:
    """The bundled SQL engine as a :class:`SQLBackend`."""

    def __init__(self, database: TransactionDatabase) -> None:
        from repro.sql.database import SQLDatabase  # local to avoid cycles

        self.db = SQLDatabase()
        items = database.distinct_items()
        self._item_type = (
            "TEXT"
            if any(isinstance(item, str) for item in items)
            else "INTEGER"
        )
        self.db.execute(gen.create_sales_table(self._item_type))
        self.db.insert_rows("SALES", database.sales_rows())

    def execute(
        self, sql: str, params: dict[str, object] | None = None
    ) -> list[tuple] | None:
        result = self.db.execute(sql, params)
        if result is None or isinstance(result, int):
            return None
        return list(result.rows)

    def query_count(self, table: str) -> int:
        result = self.db.execute(f"SELECT COUNT(*) FROM {table} t")
        assert result is not None and not isinstance(result, int)
        return result.rows[0][0]

    def item_type(self) -> str:
        return self._item_type


#: Relation placeholder for the nested-loop strategy's ``R'_k`` — the
#: ``C_{k-1} × SALES^k`` join never materializes instance relations, so
#: the kernel reports an empty one (``candidate_instances = 0``, as the
#: paper's Section 3.1 analysis also never prices ``|R'_k|``).
_NOT_MATERIALIZED = "(not materialized)"


class SQLKernel(KernelLifecycle):
    """Figure 4's steps as generated SQL against a :class:`SQLBackend`.

    Relations are table names (``"SALES"``, ``"R2"``, ...); pattern keys
    are the label tuples read back from the ``C_k`` tables, so
    :meth:`decode` is the identity.  Every statement issued through the
    kernel is recorded in order — ``extra["statements"]`` replays as a
    complete mining script.

    For ``strategy="nested-loop"`` the count relations double as the
    loop's ``R_k`` stand-ins: ``size`` of a ``{pattern: count}`` mapping
    is the summed instance count, which both terminates the loop at the
    right moment and reproduces the strategy's ``supported_instances``
    accounting.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        threshold: int,
        backend: SQLBackend,
        strategy: str,
    ) -> None:
        self._backend = backend
        self._strategy = strategy
        self._item_type = backend.item_type()
        self._params: dict[str, object] = {"minsupport": threshold}
        self.statements: list[str] = []
        self._k = 1

    def _run(self, sql: str) -> None:
        self.statements.append(sql)
        self._backend.execute(sql, self._params)

    def _read_counts(self, k: int) -> dict[Pattern, int]:
        rows = self._backend.execute(f"SELECT * FROM {gen.SQLNames.c(k)} t")
        assert rows is not None
        return {tuple(row[:-1]): row[-1] for row in rows}

    # -- Figure-4 steps -------------------------------------------------------------

    def make_sales(self) -> str:
        # R_1 := SALES (uniform item1 schema); C_1 with HAVING (Section
        # 3.1).  The SALES table itself pre-exists on the backend.
        self._run(gen.create_r_table(1, self._item_type))
        self._run(gen.insert_r1_query())
        self._run(gen.create_c_table(1, self._item_type))
        self._run(gen.insert_c1_query(filtered=True))
        return "SALES"

    def c1_counts(self, sales: str) -> list[tuple[Pattern, int]]:
        # The unfiltered C_1 of Figure 4's pseudocode; read directly (not
        # part of the mining script, which uses the HAVING form above).
        rows = self._backend.execute(
            "SELECT s.item, COUNT(*) FROM SALES s GROUP BY s.item"
        )
        assert rows is not None
        return [((item,), count) for item, count in rows]

    def resort_by_tid(self, r: str) -> str:
        # Sort orders live inside the generated execution plans; a table
        # name needs no re-sorting.
        return r

    def merge_extend(self, r: str, sales: str) -> str:
        self._run(gen.create_c_table(self._k, self._item_type))
        if self._strategy != "sort-merge":
            return _NOT_MATERIALIZED
        self._run(gen.create_r_table(self._k, self._item_type, prime=True))
        self._run(gen.insert_rk_prime_query(self._k))
        return gen.SQLNames.r_prime(self._k)

    def count_and_filter(
        self, r_prime: str, threshold: int
    ) -> tuple[int, dict[Pattern, int], Any]:
        k = self._k
        if self._strategy == "sort-merge":
            self._run(gen.insert_ck_query(k))
            c_next = self._read_counts(k)
            self._run(gen.create_r_table(k, self._item_type))
            self._run(gen.insert_rk_filter_query(k))
            return len(c_next), c_next, gen.SQLNames.r(k)
        self._run(gen.insert_ck_nested_loop_query(k))
        c_next = self._read_counts(k)
        return len(c_next), c_next, c_next

    def size(self, r: Any) -> int:
        if r == _NOT_MATERIALIZED:
            return 0
        if isinstance(r, dict):  # nested-loop: C_k stands in for R_k
            return sum(r.values())
        return self._backend.query_count(r)

    def decode(self, key: Pattern, k: int) -> Pattern:
        return key

    # -- lifecycle ------------------------------------------------------------------

    def begin_iteration(self, k: int) -> None:
        self._k = k

    def extra_stats(self) -> dict[str, Any]:
        return {"statements": self.statements, "strategy": self._strategy}


@register_engine(
    "setm-sql",
    description="SETM as generated SQL on the bundled engine (Section 4.1)",
    representation="sql",
    accepted_options=("backend", "strategy", "measure_memory"),
)
def setm_sql(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    backend: SQLBackend | None = None,
    strategy: str = "sort-merge",
    max_length: int | None = None,
    measure_memory: bool = True,
) -> MiningResult:
    """Mine ``database`` by executing the paper's SQL on ``backend``.

    Parameters
    ----------
    database:
        Transactions to mine.  When ``backend`` is provided it must already
        contain this database's ``SALES`` table (the bundled backends load
        it themselves).
    minimum_support:
        Fractional minimum support in ``(0, 1]``.
    backend:
        A :class:`SQLBackend`; defaults to a fresh :class:`NativeBackend`.
    strategy:
        ``"sort-merge"`` (Section 4.1: materialize ``R'_k``, count, filter)
        or ``"nested-loop"`` (Section 3.1: join ``C_{k-1}`` with ``k``
        copies of ``SALES``).
    max_length:
        Optional cap on pattern length.
    measure_memory:
        Record loop peak memory in ``extra["peak_memory_bytes"]``
        (the default); ``False`` for timing-sensitive runs.

    Returns
    -------
    MiningResult
        ``algorithm`` is ``"setm-sql"`` or ``"setm-sql-nested-loop"``;
        ``extra["statements"]`` records every SQL statement executed, in
        order — the full script is replayable.
    """
    if strategy not in ("sort-merge", "nested-loop"):
        raise ValueError(f"unknown strategy {strategy!r}")
    threshold = database.absolute_support(minimum_support)
    backend = backend if backend is not None else NativeBackend(database)
    return run_figure4_loop(
        database,
        minimum_support,
        SQLKernel(database, threshold, backend, strategy),
        algorithm=(
            "setm-sql" if strategy == "sort-merge" else "setm-sql-nested-loop"
        ),
        max_length=max_length,
        measure_memory=measure_memory,
    )
