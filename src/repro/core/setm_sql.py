"""SETM executed as SQL statements — the paper's headline claim, live.

    "The major contribution of this paper is that it shows that at least
    some aspects of data mining can be carried out by using general query
    languages such as SQL, rather than by developing specialized black
    box algorithms."

:func:`setm_sql` drives Figure 4's loop by issuing the *generated* SQL of
Sections 3.1/4.1 (see :mod:`repro.sql.generator`) against any backend
implementing the three-method :class:`SQLBackend` protocol.  Two backends
ship:

* :class:`NativeBackend` — the bundled SQL engine
  (:class:`repro.sql.database.SQLDatabase`);
* ``repro.sqlbridge.SQLiteBackend`` — the stdlib ``sqlite3``.

Both produce bit-identical count relations to the in-memory
:func:`repro.core.setm.setm`; the integration tests assert it.

:func:`setm_sql` can also run the **nested-loop formulation** (Section
3.1): pass ``strategy="nested-loop"`` and each ``C_k`` is produced by the
``C_{k-1} × SALES^k`` join instead of the materialized ``R'_k`` pipeline.
"""

from __future__ import annotations

import time
from typing import Protocol

from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine
from repro.sql import generator as gen

__all__ = ["NativeBackend", "SQLBackend", "setm_sql"]


class SQLBackend(Protocol):
    """What :func:`setm_sql` needs from a database."""

    def execute(
        self, sql: str, params: dict[str, object] | None = None
    ) -> list[tuple] | None:
        """Run one statement; SELECTs return rows, others may return None."""

    def query_count(self, table: str) -> int:
        """``SELECT COUNT(*) FROM table``."""

    def item_type(self) -> str:
        """SQL type of the item column: ``"INTEGER"`` or ``"TEXT"``."""


class NativeBackend:
    """The bundled SQL engine as a :class:`SQLBackend`."""

    def __init__(self, database: TransactionDatabase) -> None:
        from repro.sql.database import SQLDatabase  # local to avoid cycles

        self.db = SQLDatabase()
        items = database.distinct_items()
        self._item_type = (
            "TEXT"
            if any(isinstance(item, str) for item in items)
            else "INTEGER"
        )
        self.db.execute(gen.create_sales_table(self._item_type))
        self.db.insert_rows("SALES", database.sales_rows())

    def execute(
        self, sql: str, params: dict[str, object] | None = None
    ) -> list[tuple] | None:
        result = self.db.execute(sql, params)
        if result is None or isinstance(result, int):
            return None
        return list(result.rows)

    def query_count(self, table: str) -> int:
        result = self.db.execute(f"SELECT COUNT(*) FROM {table} t")
        assert result is not None and not isinstance(result, int)
        return result.rows[0][0]

    def item_type(self) -> str:
        return self._item_type


@register_engine(
    "setm-sql",
    description="SETM as generated SQL on the bundled engine (Section 4.1)",
    representation="sql",
    accepted_options=("backend", "strategy"),
)
def setm_sql(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    backend: SQLBackend | None = None,
    strategy: str = "sort-merge",
    max_length: int | None = None,
) -> MiningResult:
    """Mine ``database`` by executing the paper's SQL on ``backend``.

    Parameters
    ----------
    database:
        Transactions to mine.  When ``backend`` is provided it must already
        contain this database's ``SALES`` table (the bundled backends load
        it themselves).
    minimum_support:
        Fractional minimum support in ``(0, 1]``.
    backend:
        A :class:`SQLBackend`; defaults to a fresh :class:`NativeBackend`.
    strategy:
        ``"sort-merge"`` (Section 4.1: materialize ``R'_k``, count, filter)
        or ``"nested-loop"`` (Section 3.1: join ``C_{k-1}`` with ``k``
        copies of ``SALES``).
    max_length:
        Optional cap on pattern length.

    Returns
    -------
    MiningResult
        ``algorithm`` is ``"setm-sql"`` or ``"setm-sql-nested-loop"``;
        ``extra["statements"]`` records every SQL statement executed, in
        order — the full script is replayable.
    """
    if strategy not in ("sort-merge", "nested-loop"):
        raise ValueError(f"unknown strategy {strategy!r}")
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)
    backend = backend if backend is not None else NativeBackend(database)
    item_type = backend.item_type()
    params: dict[str, object] = {"minsupport": threshold}
    statements: list[str] = []

    def run(sql: str) -> None:
        statements.append(sql)
        backend.execute(sql, params)

    # R_1 := SALES (uniform item1 schema); C_1 with HAVING (Section 3.1).
    run(gen.create_r_table(1, item_type))
    run(gen.insert_r1_query())
    run(gen.create_c_table(1, item_type))
    run(gen.insert_c1_query(filtered=True))

    unfiltered = backend.execute(
        "SELECT s.item, COUNT(*) FROM SALES s GROUP BY s.item"
    )
    assert unfiltered is not None
    unfiltered_item_counts = {item: count for item, count in unfiltered}

    def read_counts(k: int) -> dict[Pattern, int]:
        rows = backend.execute(
            f"SELECT * FROM {gen.SQLNames.c(k)} t"
        )
        assert rows is not None
        return {tuple(row[:-1]): row[-1] for row in rows}

    c_current = read_counts(1)
    count_relations: dict[int, dict[Pattern, int]] = {1: c_current}
    sales_rows = database.num_sales_rows
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=sales_rows,
            supported_instances=sales_rows,
            candidate_patterns=len(unfiltered_item_counts),
            supported_patterns=len(c_current),
        )
    ]

    k = 1
    r_empty = False
    while not r_empty and (c_current or k == 1):
        k += 1
        if max_length is not None and k > max_length:
            break
        run(gen.create_c_table(k, item_type))
        if strategy == "sort-merge":
            run(gen.create_r_table(k, item_type, prime=True))
            run(gen.insert_rk_prime_query(k))
            candidate_instances = backend.query_count(gen.SQLNames.r_prime(k))
            run(gen.insert_ck_query(k))
            c_next = read_counts(k)
            run(gen.create_r_table(k, item_type))
            run(gen.insert_rk_filter_query(k))
            supported_instances = backend.query_count(gen.SQLNames.r(k))
            r_empty = supported_instances == 0
        else:
            run(gen.insert_ck_nested_loop_query(k))
            c_next = read_counts(k)
            candidate_instances = 0  # not materialized by this strategy
            supported_instances = sum(c_next.values())
            r_empty = not c_next

        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=candidate_instances,
                supported_instances=supported_instances,
                candidate_patterns=len(c_next) if c_next else 0,
                supported_patterns=len(c_next),
            )
        )
        if c_next:
            count_relations[k] = c_next
        c_current = c_next

    algorithm = (
        "setm-sql" if strategy == "sort-merge" else "setm-sql-nested-loop"
    )
    return MiningResult(
        algorithm=algorithm,
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts=unfiltered_item_counts,
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
        extra={"statements": statements, "strategy": strategy},
    )
