"""Pluggable partition transport: how chunk bytes cross process borders.

The parallel engines hand :class:`~repro.core.partitioning.Partition`
work units to pool workers and get ``(keys, counts)`` buffers back.
*How* those bytes move is a transport concern, and this module owns it
behind one small surface with three implementations:

``pickle``
    The original scheme and the conformance oracle: payload bytes ride
    inside the task pickle, replies ride inside the result pickle.
    Every byte is serialized, piped, and deserialized — correct
    everywhere, never zero-copy.

``shm``
    In-memory payloads are placed — once, contiguously — into a named
    :mod:`multiprocessing.shared_memory` segment; the task pickle
    shrinks to a ``(segment, offset, length)`` descriptor and workers
    rebuild int64 columns as ``frombuffer`` views *over the segment*
    (:func:`~repro.core.partitioning.decode_buffer_chunks`).  Replies
    come back the same way: the parent pre-names a reply segment per
    task, the worker fills it, the parent drains and unlinks it.
    Named segments are what make this start-method safe — a spawned
    worker shares no memory with the parent, but it can attach any
    segment by name.

``mmap``
    Path-backed partitions (the spill engines') are *mapped* by the
    worker instead of read whole; in-memory payloads are spooled to a
    per-session temp directory first.  Same zero-copy decode, backed by
    the page cache instead of POSIX shared memory.

Lifecycle is deliberately asymmetric: **the parent owns every named
segment** (the ones it creates for tasks, and the reply names it hands
out), mirroring the spill-root ownership audit of the serve layer.  A
module-level registry tracks live parent segments, ``atexit`` sweeps
them, :func:`leaked_segment_names` audits both the registry and the
``/dev/shm`` namespace so a worker crash mid-count can be *proven* to
leave nothing behind.

Python 3.11's :class:`~multiprocessing.shared_memory.SharedMemory`
registers every segment — even on attach — with the process-wide
``resource_tracker``, which would unlink parent-owned segments when any
attaching process exits.  Every create/attach here therefore goes
through :func:`_open_untracked`, which mutes that registration;
cleanup is this module's job, not the tracker's.
"""

from __future__ import annotations

import atexit
import mmap
import secrets
import shutil
import tempfile
import threading
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.partitioning import Partition

__all__ = [
    "SEGMENT_PREFIX",
    "TRANSPORT_CHOICES",
    "TransportSession",
    "attach_segment",
    "cleanup_segments",
    "leaked_segment_names",
    "live_segment_names",
    "negotiate_pool_transport",
    "pack_buffers",
    "partition_buffer",
    "read_segment_slice",
    "reset_negotiation_cache",
    "reset_transport_totals",
    "resolve_transport",
    "transport_totals",
    "unpack_buffers",
]

#: The legal values of the ``transport`` engine option / ``--transport``
#: CLI flag.  ``auto`` resolves per engine: shared memory for in-memory
#: partitions, mmap for path-backed ones.
TRANSPORT_CHOICES = ("auto", "pickle", "shm", "mmap")

#: Every segment this library creates is named with this prefix, so the
#: leak audit can sweep the ``/dev/shm`` namespace for strays without
#: touching anyone else's segments.
SEGMENT_PREFIX = "repro_shm_"

_SHM_DIR = Path("/dev/shm")


def resolve_transport(value: str | None) -> str:
    """Validate a transport name (``None`` means ``auto``)."""
    if value is None:
        return "auto"
    name = str(value).lower()
    if name not in TRANSPORT_CHOICES:
        choices = ", ".join(TRANSPORT_CHOICES)
        raise TransportError(
            f"unknown transport {value!r}; choose from: {choices}"
        )
    return name


# --------------------------------------------------------------------------
# Segment registry: the parent-side ownership ledger.

_LIVE_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = threading.Lock()


#: Serializes the register-mute window below.  Only this module opens
#: ``SharedMemory`` objects in this library, so the lock is never
#: contended against a tracked open.
_TRACKER_LOCK = threading.Lock()


@contextmanager
def _tracker_muted() -> Iterator[None]:
    """Silence the resource tracker for this module's segment calls.

    Python 3.11 registers every segment with the process-wide
    ``resource_tracker`` — even on attach — and would unlink
    parent-owned segments when any attaching process exits.  Worse,
    the tracker's name cache is a *set* shared by parent and workers:
    register/attach/unlink messages from several processes collapse on
    add and then underflow on remove, spraying ``KeyError`` tracebacks
    from the tracker process.  Segment ownership in this module is
    explicit (registry + session close + atexit + deterministic reply
    names), so the clean fix is to never talk to the tracker at all:
    the ``shared_memory`` rtype is muted — in both directions — for
    exactly the stdlib call under this context.
    """
    with _TRACKER_LOCK:
        register, unregister = (
            resource_tracker.register,
            resource_tracker.unregister,
        )

        def muted(original):
            def call(name, rtype):
                if rtype != "shared_memory":
                    original(name, rtype)

            return call

        resource_tracker.register = muted(register)
        resource_tracker.unregister = muted(unregister)
        try:
            yield
        finally:
            resource_tracker.register = register
            resource_tracker.unregister = unregister


def _open_untracked(**kwargs) -> shared_memory.SharedMemory:
    """Open a ``SharedMemory`` without resource-tracker registration."""
    with _tracker_muted():
        return shared_memory.SharedMemory(**kwargs)


def _unlink_untracked(segment: shared_memory.SharedMemory) -> None:
    """Unlink a segment without resource-tracker chatter; idempotent."""
    with _tracker_muted():
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def create_segment(size: int) -> shared_memory.SharedMemory:
    """Create (and register) a parent-owned named segment."""
    name = f"{SEGMENT_PREFIX}{secrets.token_hex(6)}"
    segment = _open_untracked(name=name, create=True, size=max(1, size))
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[segment.name] = segment
    return segment


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name (worker side); never unlinks."""
    return _open_untracked(name=name)


def release_segment(name: str) -> None:
    """Close and unlink a registry segment; idempotent."""
    with _LIVE_LOCK:
        segment = _LIVE_SEGMENTS.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except BufferError:  # pragma: no cover - caller kept a view alive
        pass
    _unlink_untracked(segment)


def _force_unlink(name: str) -> bool:
    """Unlink a segment by bare name (crash cleanup for reply segments)."""
    try:
        segment = _open_untracked(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    _unlink_untracked(segment)
    return True


def live_segment_names() -> tuple[str, ...]:
    """Names of parent-owned segments currently in the registry."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE_SEGMENTS))


def leaked_segment_names() -> tuple[str, ...]:
    """Every library-named segment still visible anywhere.

    The union of the in-process registry and a ``/dev/shm`` sweep for
    :data:`SEGMENT_PREFIX` names (covering reply segments created by
    workers and segments surviving a crashed process).  The serve
    drain audit asserts this is empty, exactly as it does for spill
    files.
    """
    names = set(live_segment_names())
    if _SHM_DIR.is_dir():
        names.update(
            entry.name
            for entry in _SHM_DIR.glob(f"{SEGMENT_PREFIX}*")
        )
    return tuple(sorted(names))


def cleanup_segments() -> int:
    """Close and unlink every leaked segment; returns how many."""
    cleaned = 0
    for name in live_segment_names():
        release_segment(name)
        cleaned += 1
    for name in leaked_segment_names():
        if _force_unlink(name):
            cleaned += 1
    return cleaned


atexit.register(cleanup_segments)


def read_segment_slice(descriptor: tuple[str, int, int]) -> bytes:
    """Copy one ``(name, offset, length)`` slice out of a segment."""
    name, offset, length = descriptor
    segment = attach_segment(name)
    try:
        view = segment.buf[offset : offset + length]
        data = bytes(view)
        view.release()
    finally:
        segment.close()
    return data


# --------------------------------------------------------------------------
# Worker-side buffer access.


@contextmanager
def partition_buffer(
    partition: "Partition", mode: str = "pickle"
) -> Iterator[tuple[object, str]]:
    """Yield ``(buffer, source)`` for a partition's chunk bytes.

    ``source`` names how the bytes were obtained: ``inline`` (payload
    carried by the pickle), ``shm`` (a memoryview over an attached
    segment), ``mmap`` (a map of the spill file), or ``read`` (a whole
    file read — the pickle-transport behaviour for path partitions, and
    the fallback for empty files that cannot be mapped).

    ``shm``/``mmap`` buffers borrow their backing store: the caller
    must drop every view derived from the buffer before the context
    exits (release failures are swallowed rather than raised so a
    sloppy caller degrades to a deferred close, never a crash).
    """
    if partition.payload is not None:
        yield partition.payload, "inline"
        return
    if partition.shm is not None:
        name, offset, length = partition.shm
        segment = attach_segment(name)
        view = segment.buf[offset : offset + length]
        try:
            yield view, "shm"
        finally:
            try:
                view.release()
            except BufferError:  # pragma: no cover - caller kept views
                pass
            try:
                segment.close()
            except BufferError:  # pragma: no cover - caller kept views
                pass
        return
    if partition.path is None:
        raise ValueError("partition already deleted; no chunk source left")
    if mode == "mmap":
        with open(partition.path, "rb") as handle:
            try:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError:  # empty file: cannot map, nothing to copy
                yield b"", "read"
                return
            try:
                yield mapped, "mmap"
            finally:
                try:
                    mapped.close()
                except BufferError:  # pragma: no cover - caller kept views
                    pass
        return
    yield partition.path.read_bytes(), "read"


# --------------------------------------------------------------------------
# Reply envelopes: how (keys, counts) buffers come back.


def pack_buffers(
    parts: Sequence[bytes], reply_name: str | None
) -> tuple:
    """Worker side: envelope raw reply buffers for the trip home.

    With a ``reply_name`` (shm transport), the worker creates the
    parent-named segment, copies the buffers in back-to-back, and the
    envelope shrinks to ``("shm", name, lengths)``.  Without one —
    or when any part is not a raw buffer (the big-key fallback's
    arbitrary-precision keys) — everything stays
    ``("inline", [bytes, ...])`` in the result pickle.
    """
    raw = all(isinstance(p, (bytes, bytearray, memoryview)) for p in parts)
    if reply_name is None or not raw:
        return (
            "inline",
            [
                bytes(p) if isinstance(p, (bytearray, memoryview)) else p
                for p in parts
            ],
        )
    lengths = [len(p) for p in parts]
    segment = _open_untracked(
        name=reply_name, create=True, size=max(1, sum(lengths))
    )
    offset = 0
    for part in parts:
        segment.buf[offset : offset + len(part)] = part
        offset += len(part)
    segment.close()
    return ("shm", reply_name, lengths)


def unpack_buffers(envelope: tuple) -> tuple[list[bytes], int]:
    """Parent side: open an envelope; returns ``(parts, shm_bytes)``.

    ``shm_bytes`` is how many reply bytes bypassed the result pickle.
    Shared envelopes are drained and their segment unlinked here — the
    parent owns every reply name it handed out.
    """
    if envelope[0] == "inline":
        return list(envelope[1]), 0
    _, name, lengths = envelope
    segment = attach_segment(name)
    parts: list[bytes] = []
    offset = 0
    try:
        for length in lengths:
            view = segment.buf[offset : offset + length]
            parts.append(bytes(view))
            view.release()
            offset += length
    finally:
        segment.close()
        _unlink_untracked(segment)
    return parts, sum(lengths)


# --------------------------------------------------------------------------
# Global telemetry (surfaced by `mine --json` and serve stats()).

_TOTALS_LOCK = threading.Lock()
_TOTALS_ZERO = {
    "sessions": 0,
    "segments": 0,
    "spool_files": 0,
    "task_bytes_inline": 0,
    "task_bytes_shared": 0,
    "task_bytes_spooled": 0,
    "reply_bytes_inline": 0,
    "reply_bytes_shared": 0,
    "zero_copy_bytes": 0,
}
_TOTALS = dict(_TOTALS_ZERO)


def transport_totals() -> dict:
    """Process-wide transport counters (all sessions, all engines)."""
    with _TOTALS_LOCK:
        return dict(_TOTALS)


def reset_transport_totals() -> None:
    """Zero the process-wide counters (test isolation)."""
    with _TOTALS_LOCK:
        _TOTALS.update(_TOTALS_ZERO)


# --------------------------------------------------------------------------
# The parent-side session: one pooled iteration's transport lifecycle.


class TransportSession:
    """Owns the shared state of one pooled dispatch, parent side.

    Create it around a pooled iteration, :meth:`publish` the in-memory
    partitions (a no-op for ``pickle``), hand each task a
    :meth:`reply_name`, :meth:`collect` each result envelope, and
    :meth:`close` in a ``finally`` — close is where task segments are
    unlinked, un-collected reply names are force-unlinked (the worker
    may have created them before crashing), the spool directory is
    removed, and the counters roll into :func:`transport_totals`.
    """

    def __init__(self, mode: str) -> None:
        if mode not in ("pickle", "shm", "mmap"):
            raise TransportError(
                f"TransportSession needs a concrete mode, not {mode!r}"
            )
        self.mode = mode
        self._nonce = f"{SEGMENT_PREFIX}{secrets.token_hex(6)}"
        self._segments: list[str] = []
        self._pending_replies: set[str] = set()
        self._spool_dir: Path | None = None
        self._spooled = 0
        self._closed = False
        self.counters = {
            "task_bytes_inline": 0,
            "task_bytes_shared": 0,
            "task_bytes_spooled": 0,
            "reply_bytes_inline": 0,
            "reply_bytes_shared": 0,
            "zero_copy_bytes": 0,
        }

    # -- task leg ----------------------------------------------------------

    def publish(self, partitions: Sequence["Partition"]) -> list["Partition"]:
        """Re-home in-memory payloads for this session's transport.

        Returns descriptor partitions to dispatch in place of the
        originals: ``pickle`` passes them through (payload travels in
        the task pickle), ``shm`` packs every payload into one fresh
        segment and returns ``(name, offset, length)`` descriptors,
        ``mmap`` spools each payload to a session temp file and
        returns path descriptors.  Path-backed inputs pass through
        untouched on every transport — they already travel by name.
        """
        from repro.core.partitioning import Partition

        if self._closed:
            raise TransportError("transport session is closed")
        inline = [p for p in partitions if p.payload is not None]
        if self.mode == "pickle" or not inline:
            for p in inline:
                self.counters["task_bytes_inline"] += len(p.payload)
            return list(partitions)
        if self.mode == "shm":
            total = sum(len(p.payload) for p in inline)
            segment = create_segment(total)
            self._segments.append(segment.name)
            out: list[Partition] = []
            offset = 0
            for p in partitions:
                if p.payload is None:
                    out.append(p)
                    continue
                size = len(p.payload)
                segment.buf[offset : offset + size] = p.payload
                out.append(
                    Partition(
                        p.k,
                        key_low=p.key_low,
                        key_high=p.key_high,
                        num_rows=p.num_rows,
                        shm=(segment.name, offset, size),
                    )
                )
                offset += size
            self.counters["task_bytes_shared"] += total
            return out
        # mmap: spool payloads so workers can map them.
        if self._spool_dir is None:
            self._spool_dir = Path(
                tempfile.mkdtemp(prefix="repro-spool-")
            )
        out = []
        for p in partitions:
            if p.payload is None:
                out.append(p)
                continue
            self._spooled += 1
            path = self._spool_dir / f"part-{self._spooled}.chunks"
            path.write_bytes(p.payload)
            self.counters["task_bytes_spooled"] += len(p.payload)
            out.append(
                Partition(
                    p.k,
                    key_low=p.key_low,
                    key_high=p.key_high,
                    num_rows=p.num_rows,
                    path=path,
                )
            )
        return out

    # -- reply leg ---------------------------------------------------------

    def reply_name(self, task_index: int) -> str | None:
        """A parent-owned segment name for task ``task_index``'s reply.

        Deterministic from the session nonce, so the parent can unlink
        it even when the worker died between creating and returning it.
        ``None`` on non-shm transports (replies stay in the pickle).
        """
        if self.mode != "shm":
            return None
        name = f"{self._nonce}_r{task_index}"
        self._pending_replies.add(name)
        return name

    def collect(self, envelope: tuple) -> list[bytes]:
        """Open one reply envelope, crediting the session counters."""
        parts, shm_bytes = unpack_buffers(envelope)
        if envelope[0] == "shm":
            self._pending_replies.discard(envelope[1])
            self.counters["reply_bytes_shared"] += shm_bytes
        else:
            self.counters["reply_bytes_inline"] += sum(
                len(p) for p in parts if isinstance(p, (bytes, bytearray))
            )
        return parts

    def note_zero_copy(self, nbytes: int) -> None:
        """Credit column bytes a worker viewed in place of copying."""
        self.counters["zero_copy_bytes"] += int(nbytes)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Tear down every named resource this session owns; idempotent."""
        if self._closed:
            return
        self._closed = True
        for name in self._segments:
            release_segment(name)
        for name in sorted(self._pending_replies):
            _force_unlink(name)
        self._pending_replies.clear()
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        with _TOTALS_LOCK:
            _TOTALS["sessions"] += 1
            _TOTALS["segments"] += len(self._segments)
            _TOTALS["spool_files"] += self._spooled
            for key, value in self.counters.items():
                _TOTALS[key] += value

    def __enter__(self) -> "TransportSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """This session's counters (merged into engine telemetry)."""
        return {
            "mode": self.mode,
            "segments": len(self._segments),
            "spool_files": self._spooled,
            **self.counters,
        }


# --------------------------------------------------------------------------
# Per-pool negotiation: prove shm works through *this* pool before
# trusting it with real work.

_PROBE_BYTES = b"repro-shm-handshake"
_NEGOTIATED: dict[tuple[str, int], tuple[str, str | None]] = {}
_NEGOTIATED_LOCK = threading.Lock()


def _probe_attach(task: tuple[str, int, bytes]) -> bool:
    """Pool-side handshake body: attach by name, compare bytes."""
    name, length, expected = task
    segment = attach_segment(name)
    try:
        view = segment.buf[:length]
        matched = bytes(view) == expected
        view.release()
    finally:
        segment.close()
    return matched


def negotiate_pool_transport(
    requested: str,
    *,
    start_method: str,
    workers: int,
    mapper: Callable[[Callable, list], list],
) -> tuple[str, str | None]:
    """Settle the concrete transport for one pool.

    Only ``shm`` needs negotiating: a tiny named segment is pushed
    through the *real* pool (``mapper`` runs tasks exactly as the
    engine will) and every worker must read it back byte-identical.
    Failure demotes to ``pickle`` with the reason recorded — mining
    proceeds either way.  Verdicts are cached per
    ``(start_method, workers)``; other transports pass through.
    """
    if requested != "shm":
        return requested, None
    key = (start_method, workers)
    with _NEGOTIATED_LOCK:
        cached = _NEGOTIATED.get(key)
    if cached is not None:
        return cached
    segment = None
    try:
        segment = create_segment(len(_PROBE_BYTES))
        segment.buf[: len(_PROBE_BYTES)] = _PROBE_BYTES
        tasks = [
            (segment.name, len(_PROBE_BYTES), _PROBE_BYTES)
        ] * max(2, workers)
        if all(mapper(_probe_attach, tasks)):
            verdict = ("shm", None)
        else:
            verdict = (
                "pickle",
                "shm handshake failed: worker read mismatched bytes",
            )
    except Exception as exc:
        verdict = ("pickle", f"shm handshake failed: {exc!r}")
    finally:
        if segment is not None:
            release_segment(segment.name)
    with _NEGOTIATED_LOCK:
        _NEGOTIATED[key] = verdict
    return verdict


def reset_negotiation_cache() -> None:
    """Forget cached handshake verdicts (test isolation)."""
    with _NEGOTIATED_LOCK:
        _NEGOTIATED.clear()
