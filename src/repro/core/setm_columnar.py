"""Algorithm SETM over the columnar relation kernel (``setm-columnar``).

Same Figure 4, different representation: relations are the
dictionary-encoded, array-backed columns of :mod:`repro.core.columns`
and patterns are packed integers, so the loop body runs as a handful of
fused column passes instead of per-row tuple work.  The engine is
differentially held to :func:`repro.core.setm.setm` — identical count
relations *and* identical :class:`~repro.core.result.IterationStats`
cardinalities — because both drive the shared
:func:`~repro.core.setm.run_figure4_loop` skeleton.

Why the explicit sorts of Figure 4 disappear here: the columnar
merge-scan emits rows ordered by ``(trans_id, item_1, ..., item_k)``
(prev rows are walked in sorted order; within a transaction the band
extension walks ascending sales items), and the support filter keeps
row order.  ``(trans_id, items)`` order is therefore a loop invariant,
``sort R_{k-1} on trans_id, ...`` is a no-op, and ``sort R'_k on
item_1, ..., item_k`` collapses into the counting step — a key-free
integer sort of the packed keys (``count_via="sort"``, vectorized as
``np.unique`` when numpy is available) or a single hash pass
(``count_via="hash"``): the perf engine has no obligation to sort where
the faithful one must.  The default ``"auto"`` picks whichever is
fastest for the active kernel path.
"""

from __future__ import annotations

from itertools import chain
from typing import Literal

from repro.core.columns import (
    InstanceRelation,
    SalesIndex,
    count_packed_keys,
    filter_by_keys,
    suffix_extend,
    unpack_key,
)
from repro.core.result import MiningResult, Pattern
from repro.core.setm import KernelLifecycle, run_figure4_loop
from repro.core.transactions import ItemCatalog, TransactionDatabase
from repro.registry import register_engine

__all__ = ["ColumnarKernel", "setm_columnar"]


class ColumnarKernel(KernelLifecycle):
    """Figure 4's steps over :class:`InstanceRelation` columns.

    Patterns travel as packed integers (mixed radix ``self._base``, which
    exceeds every dictionary id, so numeric order equals lexicographic
    pattern order); labels are decoded only for the final
    :class:`~repro.core.result.MiningResult`.

    ``database`` may be a classic :class:`TransactionDatabase` *or* a
    stream-encoded :class:`~repro.data.ingest.EncodedDataset`: the
    latter already carries the catalog and the physical ``R_1`` columns,
    so :meth:`make_sales` reattaches them instead of re-deriving
    anything — no Python transaction objects exist on that path, which
    is the point of streaming ingest.
    """

    def __init__(
        self,
        database,
        *,
        count_via: Literal["auto", "sort", "hash"] = "auto",
    ) -> None:
        self._database = database
        if isinstance(database, TransactionDatabase):
            # One C-level pass collects the labels (equivalent to
            # database.catalog(), minus its per-transaction set updates).
            self._catalog = ItemCatalog(
                set(chain.from_iterable(txn.items for txn in database))
            )
            self._ingest_stats: dict | None = None
        else:
            # An EncodedDataset (duck-typed to keep this module free of
            # a repro.data import): catalog and telemetry travel with it.
            self._catalog = database.catalog
            stats = database.stats
            self._ingest_stats = (
                stats.as_dict() if stats is not None else None
            )
        # Ids run 1..len(catalog); any base > max id packs injectively.
        self._base = len(self._catalog) + 1
        self._count_via: Literal["auto", "sort", "hash"] = count_via
        self._index: SalesIndex | None = None

    def make_sales(self) -> InstanceRelation:
        if isinstance(self._database, TransactionDatabase):
            # sales_from_database also resolves the merge-scan's group
            # matching over the static R_1, once for the whole run (the
            # attached SalesIndex).
            sales = InstanceRelation.sales_from_database(
                self._database, self._catalog
            )
        else:
            sales = self._database.sales_relation()
        self._index = sales.index
        return sales

    def extra_stats(self) -> dict:
        if self._ingest_stats is not None:
            return {"ingest": self._ingest_stats}
        return {}

    def c1_counts(self, sales: InstanceRelation) -> list[tuple[int, int]]:
        # For k = 1 the packed key *is* the item id; no pack pass needed.
        return count_packed_keys(sales.keys, via=self._count_via)

    def resort_by_tid(self, r: InstanceRelation) -> InstanceRelation:
        # No-op by invariant: merge output and filter both preserve
        # (trans_id, item_1, ..., item_k) order.  See the module
        # docstring for why the sort disappears.
        return r

    def merge_extend(
        self, r: InstanceRelation, sales: InstanceRelation
    ) -> InstanceRelation:
        assert self._index is not None  # make_sales always ran first
        return suffix_extend(r, self._index)

    def count_and_filter(
        self, r_prime: InstanceRelation, threshold: int
    ) -> tuple[int, dict[int, int], InstanceRelation]:
        all_counts = count_packed_keys(r_prime.keys, via=self._count_via)
        c_k = {key: count for key, count in all_counts if count >= threshold}
        r_next = filter_by_keys(r_prime, set(c_k))
        return len(all_counts), c_k, r_next

    def size(self, r: InstanceRelation) -> int:
        return len(r)

    def decode(self, key: int, k: int) -> Pattern:
        return self._catalog.decode(unpack_key(key, k, self._base))


@register_engine(
    "setm-columnar",
    description="SETM on dictionary-encoded array columns (fast in-memory)",
    representation="columnar",
    streaming_ingest=True,
    accepted_options=("count_via", "measure_memory"),
)
def setm_columnar(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    count_via: Literal["auto", "sort", "hash"] = "auto",
    measure_memory: bool = True,
) -> MiningResult:
    """Run SETM on the columnar kernel; same results, several times faster.

    Parameters
    ----------
    database:
        The transactions to mine (labels of any type; dictionary-encoded
        internally and decoded back in the result).
    minimum_support:
        Fractional minimum support in ``(0, 1]`` or absolute count.
    max_length:
        Optional cap on pattern length.
    count_via:
        ``"auto"`` (default: the fastest strategy the kernel path
        offers), ``"hash"`` (one Counter pass over packed keys), or
        ``"sort"`` (key-free integer sort + run-length scan — the
        paper-shaped strategy, vectorized as ``np.unique`` when numpy
        is available).  Identical counts any way; the knob feeds the
        counting-strategy ablation benchmark.

    Returns
    -------
    MiningResult
        With ``algorithm="setm-columnar"``; count relations, unfiltered
        item counts, and :class:`~repro.core.result.IterationStats` are
        byte-identical to :func:`repro.core.setm.setm` on the same
        input.  ``extra["iteration_seconds"]`` carries per-iteration
        wall-clock from the shared loop skeleton.
    """
    return run_figure4_loop(
        database,
        minimum_support,
        ColumnarKernel(database, count_via=count_via),
        algorithm="setm-columnar",
        max_length=max_length,
        extra={"count_via": count_via},
        measure_memory=measure_memory,
    )
