"""Algorithm SETM (Figure 4 of the paper), in-memory reference implementation.

This module is a *faithful* transliteration of the pseudocode:

.. code-block:: text

    k := 1;
    sort R1 on item;
    C1 := generate counts from R1;
    repeat
        k := k + 1;
        sort R_{k-1} on trans_id, item_1, ..., item_{k-1};
        R'_k := merge-scan R_{k-1}, R_1;
        sort R'_k on item_1, ..., item_k;
        C_k := generate counts from R'_k;
        R_k := filter R'_k to retain supported patterns;
    until R_k = {}

Faithfulness notes (also recorded in DESIGN.md):

* ``R'_k`` extends every ``R_{k-1}`` instance with **every** later item of
  the same transaction — including infrequent items.  Filtering happens
  only afterwards, against ``C_k``.  This is SETM's signature behaviour
  (and its signature inefficiency relative to Apriori's candidate pruning);
  we keep it because the paper's Figure 5/6 curves depend on it.
* Counting is done exactly as the paper describes: sort ``R'_k`` on the
  item columns, then a single sequential scan emits group counts.  (A hash
  aggregate would be equivalent and is used by the Apriori baseline; the
  ``count_via`` knob exists for the ablation benchmark.)
* Patterns are generated in lexicographic order (``q.item > p.item_{k-1}``),
  so each ``k``-subset of a transaction appears exactly once.
* ``R_1`` is the full ``SALES`` relation; it is *not* filtered to frequent
  items before joining (the Section 4.1 SQL joins ``SALES q`` directly).

Representations
---------------
Figure 4's *control flow* is representation-independent, so this module
splits it out as :func:`run_figure4_loop`, parameterized by a kernel
object that supplies the representation-specific steps (sort, merge,
count, filter).  This is the **only** Figure-4 loop in the codebase;
every SETM engine is a kernel plugged into it:

* :class:`TupleKernel` (here) — an ``R_k`` instance is the plain Python
  tuple ``(trans_id, item_1, ..., item_k)``; every sort and scan is
  visible exactly as the paper wrote it.  This is the **faithful**
  engine: its row-at-a-time costs (fresh tuples out of the merge,
  ``tuple(row[1:])`` per count/filter probe, element-wise tuple
  comparisons in sorts) are part of what the Figure 5/6 reproduction
  measures, so it is deliberately *not* optimized.
* ``ColumnarKernel`` (:mod:`repro.core.setm_columnar`) — the same loop
  over the dictionary-encoded, array-backed relations of
  :mod:`repro.core.columns`: flat integer columns, packed-integer
  patterns, fused merge/count/filter passes.  Same counts, same
  iteration statistics, several times faster — the ``setm-columnar``
  engine for workloads where speed matters more than transliteration.
* ``PagedKernel`` (:mod:`repro.core.setm_disk`) — relations live in
  4 KB-page heap files on the simulated disk, sorts are real external
  merge sorts, and the kernel's lifecycle hooks account page accesses
  per iteration for the Section 4.3 I/O analysis (``setm-disk``).
* ``SpillingColumnarKernel`` (:mod:`repro.core.setm_columnar_disk`) —
  the columnar representation under a ``memory_budget_bytes`` cap:
  ``R'_k`` is range-partitioned by packed pattern key into spill files
  and counted/filtered partition-at-a-time, so resident memory stays
  bounded while results stay identical (``setm-columnar-disk``).

The merge-scan join of the tuple kernel is a real two-cursor merge over
trans_id groups, not a hash shortcut, so the intermediate cardinalities
reported in :class:`~repro.core.result.IterationStats` are exactly the
paper's ``|R'_k|`` and ``|R_k|``.
"""

from __future__ import annotations

import time
import tracemalloc
from collections import Counter
from collections.abc import Sequence
from typing import Any, Literal, Protocol

from repro.core.columns import count_sorted_rows
from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import Item, TransactionDatabase
from repro.registry import register_engine

__all__ = [
    "setm",
    "merge_scan_extend",
    "count_sorted_instances",
    "run_figure4_loop",
    "KernelLifecycle",
    "SetmKernel",
    "TupleKernel",
]

#: Row of an ``R_k`` relation: ``(trans_id, item_1, ..., item_k)``.
Instance = tuple


def merge_scan_extend(
    r_prev: Sequence[Instance], sales: Sequence[tuple[int, Item]]
) -> list[Instance]:
    """The merge-scan join of Figure 4: ``R'_k := merge-scan(R_{k-1}, R_1)``.

    Both inputs must be sorted by ``trans_id`` (``r_prev`` additionally by
    its item columns, ``sales`` by item — the orders the surrounding sorts
    establish).  For every pair of rows sharing a ``trans_id``, an output
    row is produced when the ``SALES`` item is lexicographically greater
    than the last item of the ``R_{k-1}`` row — the paper's
    ``q.item > p.item_{k-1}`` band condition.

    Returns the new instances ordered by ``(trans_id, item_1, ..., item_k)``
    (the natural output order of the merge, since within a transaction the
    extension scan walks ``sales`` in item order).
    """
    output: list[Instance] = []
    i, j = 0, 0
    n_prev, n_sales = len(r_prev), len(sales)
    while i < n_prev and j < n_sales:
        tid = r_prev[i][0]
        sales_tid = sales[j][0]
        if tid < sales_tid:
            i += 1
            continue
        if tid > sales_tid:
            j += 1
            continue
        # Delimit the trans_id group on both sides.
        i_end = i
        while i_end < n_prev and r_prev[i_end][0] == tid:
            i_end += 1
        j_end = j
        while j_end < n_sales and sales[j_end][0] == tid:
            j_end += 1
        group = sales[j:j_end]
        for row in r_prev[i:i_end]:
            last_item = row[-1]
            # Group is sorted by item: binary-search-free scan from the end
            # would also work; a linear scan keeps the merge-scan character.
            for _, item in group:
                if item > last_item:
                    output.append(row + (item,))
        i, j = i_end, j_end
    return output


def count_sorted_instances(
    instances: Sequence[Instance],
) -> list[tuple[Pattern, int]]:
    """Sequential-scan grouping of instances sorted by their item columns.

    ``instances`` must be sorted by ``(item_1, ..., item_k)`` — the state
    after Figure 4's second sort.  Emits ``(pattern, count)`` in sorted
    pattern order, mirroring "generating the counts involves a simple
    sequential scan".  The scan itself is the shared
    :func:`repro.core.columns.count_sorted_rows` — the same helper the
    paged storage engine's counting scan uses.
    """
    return count_sorted_rows(instances)


def _hash_counts(instances: Sequence[Instance]) -> list[tuple[Pattern, int]]:
    """Hash-aggregate alternative to :func:`count_sorted_instances`.

    One :class:`collections.Counter` pass — a single hash per row, where
    the previous ``counts.get``/store pair hashed every pattern twice.
    """
    counts = Counter(tuple(row[1:]) for row in instances)
    return sorted(counts.items())


class SetmKernel(Protocol):
    """Representation-specific steps of Figure 4's loop.

    A kernel owns an opaque relation type ``R`` (the tuple kernel uses
    ``list[tuple]``; the columnar kernel uses
    :class:`~repro.core.columns.InstanceRelation`; the paged kernel
    uses heap files) and opaque pattern keys (label tuples / packed
    integers).  :func:`run_figure4_loop` drives the control flow and
    bookkeeping; the kernel does the data movement.

    Beyond the five data-movement steps, a kernel participates in the
    loop's *lifecycle*: :meth:`begin_iteration` / :meth:`end_iteration`
    bracket every iteration (including ``k = 1``), :meth:`extra_stats`
    contributes representation-specific result extras (I/O counters,
    spill statistics), and :meth:`close` releases any resources the
    kernel holds (spill files, pools) — called exactly once, even when
    the loop raises.  :class:`KernelLifecycle` provides no-op defaults
    so purely in-memory kernels implement none of them.
    """

    def make_sales(self) -> Any:
        """``R_1``: the SALES relation in ``(trans_id, item)`` order."""

    def c1_counts(self, sales: Any) -> list[tuple[Any, int]]:
        """'sort R1 on item; C1 := generate counts' — unfiltered."""

    def resort_by_tid(self, r: Any) -> Any:
        """'sort R_{k-1} on trans_id, item_1, ..., item_{k-1}'."""

    def merge_extend(self, r: Any, sales: Any) -> Any:
        """'R'_k := merge-scan(R_{k-1}, R_1)'."""

    def count_and_filter(
        self, r_prime: Any, threshold: int
    ) -> tuple[int, dict[Any, int], Any]:
        """'sort R'_k on items; C_k := counts; R_k := filter R'_k'.

        Returns ``(candidate_patterns, c_k, r_k)``: the number of
        distinct patterns before the HAVING clause, the supported
        ``{key: count}`` relation, and the filtered relation.  The
        kernel may consume (drop, spill, delete) ``r_prime`` — the loop
        reads its size before calling this.
        """

    def size(self, r: Any) -> int:
        """Row count of a relation (the ``|R|`` of the paper's figures)."""

    def decode(self, key: Any, k: int) -> Pattern:
        """A pattern key back to the caller-facing label tuple."""

    def begin_iteration(self, k: int) -> None:
        """Lifecycle hook: iteration ``k`` is about to run."""

    def end_iteration(self, k: int, r_prime: Any, r_next: Any) -> None:
        """Lifecycle hook: iteration ``k`` finished; its stats are in.

        ``r_prime`` is the pre-filter relation (possibly already
        consumed by :meth:`count_and_filter`), ``r_next`` the filtered
        one.  For ``k = 1`` both are the SALES relation.
        """

    def extra_stats(self) -> dict[str, Any]:
        """Representation-specific entries merged into ``result.extra``."""

    def close(self) -> None:
        """Release kernel resources; called once, in a ``finally``."""


class KernelLifecycle:
    """No-op lifecycle defaults for kernels without per-iteration state.

    The in-memory kernels inherit these; the paged and spilling kernels
    override what they need (I/O snapshots, spill-file cleanup).
    """

    def begin_iteration(self, k: int) -> None:
        """Nothing to prepare."""

    def end_iteration(self, k: int, r_prime: Any, r_next: Any) -> None:
        """Nothing to record."""

    def extra_stats(self) -> dict[str, Any]:
        """No representation-specific extras."""
        return {}

    def close(self) -> None:
        """No resources to release."""


def run_figure4_loop(
    database: TransactionDatabase,
    minimum_support: float,
    kernel: SetmKernel,
    *,
    algorithm: str,
    max_length: int | None = None,
    extra: dict[str, Any] | None = None,
    measure_memory: bool = True,
) -> MiningResult:
    """Figure 4's control flow, shared by every SETM kernel.

    Everything representation-independent lives here: the support
    threshold, the ``repeat ... until R_k = {}`` loop, the per-iteration
    :class:`IterationStats`, per-iteration wall-clock telemetry
    (``extra["iteration_seconds"]``), peak-memory accounting
    (``extra["peak_memory_bytes"]``, measured with :mod:`tracemalloc`),
    and the final :class:`MiningResult` assembly.  The kernel supplies
    the representation-specific steps and lifecycle hooks — see
    :class:`SetmKernel`.
    """
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)

    # Peak resident memory of the mining loop, for every engine alike —
    # and the measurement the out-of-core engine's budget acceptance is
    # held to.  When the caller already traces, reuse the trace (resetting
    # the peak so the figure covers this run only) instead of restarting.
    # ``measure_memory=False`` skips metering entirely: tracemalloc taxes
    # every allocation (~10x on the tuple kernel), so timing-sensitive
    # callers (the benchmark runner's timing rounds) opt out and take one
    # separate metered run instead.
    started_tracing = measure_memory and not tracemalloc.is_tracing()
    if started_tracing:
        tracemalloc.start()
    if measure_memory:
        tracemalloc.reset_peak()
    try:
        # R_1 := SALES.  "sort R1 on item; C1 := generate counts from
        # R1" — the pseudocode's C_1 carries no HAVING clause; the
        # Section 3.1 SQL applies one.  We compute both: unfiltered
        # counts for Figure 6, filtered C_1 for rule generation.
        kernel.begin_iteration(1)
        sales = kernel.make_sales()
        unfiltered_c1 = kernel.c1_counts(sales)
        filtered_c1 = {
            kernel.decode(key, 1): count
            for key, count in unfiltered_c1
            if count >= threshold
        }

        count_relations: dict[int, dict[Pattern, int]] = {1: filtered_c1}
        num_sales = kernel.size(sales)
        iterations = [
            IterationStats(
                k=1,
                candidate_instances=num_sales,
                supported_instances=num_sales,
                candidate_patterns=len(unfiltered_c1),
                supported_patterns=len(filtered_c1),
            )
        ]
        kernel.end_iteration(1, sales, sales)
        iteration_seconds = {1: time.perf_counter() - started}

        r_current = sales  # joined unfiltered, per Section 4.1
        # |R_{k-1}| is carried across iterations rather than re-asked:
        # size() can be a real query (SELECT COUNT(*) for the SQL
        # kernel), so the loop reads each relation's size exactly once.
        current_size = num_sales
        k = 1
        while current_size:
            k += 1
            if max_length is not None and k > max_length:
                break
            tick = time.perf_counter()
            kernel.begin_iteration(k)
            # sort R_{k-1} on trans_id, item_1, ..., item_{k-1}
            r_current = kernel.resort_by_tid(r_current)
            # R'_k := merge-scan(R_{k-1}, R_1)
            r_prime = kernel.merge_extend(r_current, sales)
            # |R'_k| before count_and_filter, which may consume r_prime
            # (the paged kernel drops its heap file, the spilling kernel
            # deletes its partitions).
            candidate_instances = kernel.size(r_prime)
            # sort R'_k on item_1, ..., item_k; C_k := generate counts
            # (with the minimum-support HAVING); R_k := filter R'_k
            # ("simple table look-ups on relation C_k")
            candidate_patterns, c_k, r_next = kernel.count_and_filter(
                r_prime, threshold
            )

            current_size = kernel.size(r_next)
            iterations.append(
                IterationStats(
                    k=k,
                    candidate_instances=candidate_instances,
                    supported_instances=current_size,
                    candidate_patterns=candidate_patterns,
                    supported_patterns=len(c_k),
                )
            )
            if c_k:
                count_relations[k] = {
                    kernel.decode(key, k): count for key, count in c_k.items()
                }
            kernel.end_iteration(k, r_prime, r_next)
            iteration_seconds[k] = time.perf_counter() - tick
            r_current = r_next

        loop_extra: dict[str, Any] = {
            **(extra or {}),
            **kernel.extra_stats(),
            "iteration_seconds": iteration_seconds,
        }
        if measure_memory:
            loop_extra["peak_memory_bytes"] = tracemalloc.get_traced_memory()[1]
        return MiningResult(
            algorithm=algorithm,
            num_transactions=database.num_transactions,
            minimum_support=minimum_support,
            support_threshold=threshold,
            count_relations=count_relations,
            unfiltered_item_counts={
                kernel.decode(key, 1)[0]: count
                for key, count in unfiltered_c1
            },
            iterations=iterations,
            elapsed_seconds=time.perf_counter() - started,
            extra=loop_extra,
        )
    finally:
        if started_tracing:
            tracemalloc.stop()
        kernel.close()


class TupleKernel(KernelLifecycle):
    """The faithful row-at-a-time kernel: relations are lists of tuples."""

    def __init__(
        self,
        database: TransactionDatabase,
        *,
        count_via: Literal["sort", "hash"] = "sort",
    ) -> None:
        self._database = database
        self._counter = (
            count_sorted_instances if count_via == "sort" else _hash_counts
        )

    def make_sales(self) -> list[Instance]:
        # sales_rows() yields rows ordered by (trans_id, item):
        # simultaneously the merge-scan order and, within each
        # transaction, item order.
        return list(self._database.sales_rows())

    def c1_counts(self, sales: list[Instance]) -> list[tuple[Pattern, int]]:
        r1_by_item = sorted(sales, key=lambda row: row[1:])
        return self._counter(r1_by_item)

    def resort_by_tid(self, r: list[Instance]) -> list[Instance]:
        r.sort()
        return r

    def merge_extend(
        self, r: list[Instance], sales: list[Instance]
    ) -> list[Instance]:
        return merge_scan_extend(r, sales)

    def count_and_filter(
        self, r_prime: list[Instance], threshold: int
    ) -> tuple[int, dict[Pattern, int], list[Instance]]:
        r_prime.sort(key=lambda row: row[1:])
        all_counts = self._counter(r_prime)
        c_k = {
            pattern: count for pattern, count in all_counts if count >= threshold
        }
        r_next = [row for row in r_prime if tuple(row[1:]) in c_k]
        return len(all_counts), c_k, r_next

    def size(self, r: list[Instance]) -> int:
        return len(r)

    def decode(self, key: Pattern, k: int) -> Pattern:
        return key


@register_engine(
    "setm",
    description="in-memory Algorithm SETM (Figure 4)",
    accepted_options=("count_via", "measure_memory"),
)
def setm(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    count_via: Literal["sort", "hash"] = "sort",
    measure_memory: bool = True,
) -> MiningResult:
    """Run Algorithm SETM and return every count relation ``C_k``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fractional minimum support in ``(0, 1]``; converted to an absolute
        transaction-count threshold via
        :meth:`TransactionDatabase.absolute_support`.
    max_length:
        Optional cap on pattern length (the paper runs until ``R_k`` is
        empty; the cap exists for interactive exploration).
    count_via:
        ``"sort"`` (paper-faithful: sort then sequential scan) or ``"hash"``
        (hash aggregation).  Both produce identical counts; the knob feeds
        the counting-strategy ablation benchmark.
    measure_memory:
        Record loop peak memory in ``extra["peak_memory_bytes"]``
        (:mod:`tracemalloc`; the default).  ``False`` skips metering for
        timing-sensitive runs — tracemalloc taxes every allocation.

    Returns
    -------
    MiningResult
        With ``algorithm="setm"``, one :class:`IterationStats` per iteration
        (including the terminal empty one, matching the paper's
        ``|R_4| = 0`` points in Figures 5 and 6), and the unfiltered item
        counts used by Figure 6's constant ``|C_1|``.
    """
    return run_figure4_loop(
        database,
        minimum_support,
        TupleKernel(database, count_via=count_via),
        algorithm="setm",
        max_length=max_length,
        extra={"count_via": count_via},
        measure_memory=measure_memory,
    )
