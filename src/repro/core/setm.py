"""Algorithm SETM (Figure 4 of the paper), in-memory reference implementation.

This module is a *faithful* transliteration of the pseudocode:

.. code-block:: text

    k := 1;
    sort R1 on item;
    C1 := generate counts from R1;
    repeat
        k := k + 1;
        sort R_{k-1} on trans_id, item_1, ..., item_{k-1};
        R'_k := merge-scan R_{k-1}, R_1;
        sort R'_k on item_1, ..., item_k;
        C_k := generate counts from R'_k;
        R_k := filter R'_k to retain supported patterns;
    until R_k = {}

Faithfulness notes (also recorded in DESIGN.md):

* ``R'_k`` extends every ``R_{k-1}`` instance with **every** later item of
  the same transaction — including infrequent items.  Filtering happens
  only afterwards, against ``C_k``.  This is SETM's signature behaviour
  (and its signature inefficiency relative to Apriori's candidate pruning);
  we keep it because the paper's Figure 5/6 curves depend on it.
* Counting is done exactly as the paper describes: sort ``R'_k`` on the
  item columns, then a single sequential scan emits group counts.  (A hash
  aggregate would be equivalent and is used by the Apriori baseline; the
  ``count_via`` knob exists for the ablation benchmark.)
* Patterns are generated in lexicographic order (``q.item > p.item_{k-1}``),
  so each ``k``-subset of a transaction appears exactly once.
* ``R_1`` is the full ``SALES`` relation; it is *not* filtered to frequent
  items before joining (the Section 4.1 SQL joins ``SALES q`` directly).

The implementation works on plain Python tuples: an ``R_k`` instance is the
tuple ``(trans_id, item_1, ..., item_k)``.  The merge-scan join is a real
two-cursor merge over trans_id groups, not a hash shortcut, so the
intermediate cardinalities reported in :class:`~repro.core.result.IterationStats`
are exactly the paper's ``|R'_k|`` and ``|R_k|``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Literal

from repro.core.result import IterationStats, MiningResult, Pattern
from repro.core.transactions import Item, TransactionDatabase
from repro.registry import register_engine

__all__ = ["setm", "merge_scan_extend", "count_sorted_instances"]

#: Row of an ``R_k`` relation: ``(trans_id, item_1, ..., item_k)``.
Instance = tuple


def merge_scan_extend(
    r_prev: Sequence[Instance], sales: Sequence[tuple[int, Item]]
) -> list[Instance]:
    """The merge-scan join of Figure 4: ``R'_k := merge-scan(R_{k-1}, R_1)``.

    Both inputs must be sorted by ``trans_id`` (``r_prev`` additionally by
    its item columns, ``sales`` by item — the orders the surrounding sorts
    establish).  For every pair of rows sharing a ``trans_id``, an output
    row is produced when the ``SALES`` item is lexicographically greater
    than the last item of the ``R_{k-1}`` row — the paper's
    ``q.item > p.item_{k-1}`` band condition.

    Returns the new instances ordered by ``(trans_id, item_1, ..., item_k)``
    (the natural output order of the merge, since within a transaction the
    extension scan walks ``sales`` in item order).
    """
    output: list[Instance] = []
    i, j = 0, 0
    n_prev, n_sales = len(r_prev), len(sales)
    while i < n_prev and j < n_sales:
        tid = r_prev[i][0]
        sales_tid = sales[j][0]
        if tid < sales_tid:
            i += 1
            continue
        if tid > sales_tid:
            j += 1
            continue
        # Delimit the trans_id group on both sides.
        i_end = i
        while i_end < n_prev and r_prev[i_end][0] == tid:
            i_end += 1
        j_end = j
        while j_end < n_sales and sales[j_end][0] == tid:
            j_end += 1
        group = sales[j:j_end]
        for row in r_prev[i:i_end]:
            last_item = row[-1]
            # Group is sorted by item: binary-search-free scan from the end
            # would also work; a linear scan keeps the merge-scan character.
            for _, item in group:
                if item > last_item:
                    output.append(row + (item,))
        i, j = i_end, j_end
    return output


def count_sorted_instances(
    instances: Sequence[Instance],
) -> list[tuple[Pattern, int]]:
    """Sequential-scan grouping of instances sorted by their item columns.

    ``instances`` must be sorted by ``(item_1, ..., item_k)`` — the state
    after Figure 4's second sort.  Emits ``(pattern, count)`` in sorted
    pattern order, mirroring "generating the counts involves a simple
    sequential scan".
    """
    counts: list[tuple[Pattern, int]] = []
    current: Pattern | None = None
    run = 0
    for row in instances:
        pattern = tuple(row[1:])
        if pattern == current:
            run += 1
        else:
            if current is not None:
                counts.append((current, run))
            current, run = pattern, 1
    if current is not None:
        counts.append((current, run))
    return counts


def _hash_counts(instances: Sequence[Instance]) -> list[tuple[Pattern, int]]:
    """Hash-aggregate alternative to :func:`count_sorted_instances`."""
    counts: dict[Pattern, int] = {}
    for row in instances:
        pattern = tuple(row[1:])
        counts[pattern] = counts.get(pattern, 0) + 1
    return sorted(counts.items())


@register_engine(
    "setm",
    description="in-memory Algorithm SETM (Figure 4)",
    accepted_options=("count_via",),
)
def setm(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
    count_via: Literal["sort", "hash"] = "sort",
) -> MiningResult:
    """Run Algorithm SETM and return every count relation ``C_k``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fractional minimum support in ``(0, 1]``; converted to an absolute
        transaction-count threshold via
        :meth:`TransactionDatabase.absolute_support`.
    max_length:
        Optional cap on pattern length (the paper runs until ``R_k`` is
        empty; the cap exists for interactive exploration).
    count_via:
        ``"sort"`` (paper-faithful: sort then sequential scan) or ``"hash"``
        (hash aggregation).  Both produce identical counts; the knob feeds
        the counting-strategy ablation benchmark.

    Returns
    -------
    MiningResult
        With ``algorithm="setm"``, one :class:`IterationStats` per iteration
        (including the terminal empty one, matching the paper's
        ``|R_4| = 0`` points in Figures 5 and 6), and the unfiltered item
        counts used by Figure 6's constant ``|C_1|``.
    """
    started = time.perf_counter()
    threshold = database.absolute_support(minimum_support)
    counter = count_sorted_instances if count_via == "sort" else _hash_counts

    # R_1 := SALES, materialized as (trans_id, item) instances.  sales_rows()
    # yields rows ordered by (trans_id, item): simultaneously the merge-scan
    # order and, within each transaction, item order.
    sales: list[Instance] = list(database.sales_rows())

    # "sort R1 on item; C1 := generate counts from R1" — the pseudocode's C_1
    # carries no HAVING clause; the Section 3.1 SQL applies one.  We compute
    # both: unfiltered counts for Figure 6, filtered C_1 for rule generation.
    r1_by_item = sorted(sales, key=lambda row: row[1:])
    unfiltered_c1 = counter(r1_by_item)
    filtered_c1 = {
        pattern: count for pattern, count in unfiltered_c1 if count >= threshold
    }

    count_relations: dict[int, dict[Pattern, int]] = {1: filtered_c1}
    iterations = [
        IterationStats(
            k=1,
            candidate_instances=len(sales),
            supported_instances=len(sales),
            candidate_patterns=len(unfiltered_c1),
            supported_patterns=len(filtered_c1),
        )
    ]

    r_current: list[Instance] = sales  # joined unfiltered, per Section 4.1
    k = 1
    while r_current:
        k += 1
        if max_length is not None and k > max_length:
            break
        # sort R_{k-1} on trans_id, item_1, ..., item_{k-1}
        r_current.sort()
        # R'_k := merge-scan(R_{k-1}, R_1)
        r_prime = merge_scan_extend(r_current, sales)
        # sort R'_k on item_1, ..., item_k
        r_prime.sort(key=lambda row: row[1:])
        # C_k := generate counts from R'_k (with the minimum-support HAVING)
        all_counts = counter(r_prime)
        c_k = {
            pattern: count for pattern, count in all_counts if count >= threshold
        }
        # R_k := filter R'_k to retain supported patterns ("simple table
        # look-ups on relation C_k")
        r_next = [row for row in r_prime if tuple(row[1:]) in c_k]

        iterations.append(
            IterationStats(
                k=k,
                candidate_instances=len(r_prime),
                supported_instances=len(r_next),
                candidate_patterns=len(all_counts),
                supported_patterns=len(c_k),
            )
        )
        if c_k:
            count_relations[k] = c_k
        r_current = r_next

    return MiningResult(
        algorithm="setm",
        num_transactions=database.num_transactions,
        minimum_support=minimum_support,
        support_threshold=threshold,
        count_relations=count_relations,
        unfiltered_item_counts={
            pattern[0]: count for pattern, count in unfiltered_c1
        },
        iterations=iterations,
        elapsed_seconds=time.perf_counter() - started,
        extra={"count_via": count_via},
    )
