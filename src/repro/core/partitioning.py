"""Partitioned execution layer: first-class ``R'_k`` work units.

The paper's central claim is that Figure 4's merge/count/filter passes
are pure set operations with no cross-row dependencies.  Two engines
exploit the same consequence in two directions:

* the **spill** engine (:mod:`repro.core.setm_columnar_disk`) range-
  partitions ``R'_k`` by packed pattern key into *files* and counts one
  partition at a time to bound resident memory;
* the **parallel** engine (:mod:`repro.core.setm_parallel`) range-
  partitions ``R'_k`` into *picklable payloads* and counts all
  partitions at once in worker processes.

Both need exactly the same machinery, which this module owns (it used
to live inline in the spill kernel):

* :class:`Partition` — one key-range slice of a relation as serialized
  chunks (:meth:`~repro.core.columns.InstanceRelation.to_chunk_bytes`),
  held either in memory (``payload``) or on disk (``path``).  Picklable
  either way, so a partition can be handed to a worker process as-is.
* :class:`PartitionPlan` — partition count and placement priced from
  :func:`~repro.core.columns.extension_counts` *before* a single
  ``R'_k`` row is materialized.
* :func:`choose_boundaries` / :func:`sample_extension_boundaries` /
  :func:`boundaries_from_keys` — quantile boundary choosers; the
  extension sampler strides across the *whole* of ``R_{k-1}`` so
  tid-correlated key drift cannot funnel rows into one partition.
* :func:`split_by_key_ranges` — route a relation's rows to partitions
  (one ``searchsorted``/``bisect`` pass plus per-partition compress).

Key-range partitioning (as opposed to hashing or row slicing) is what
makes per-partition counts *global* counts: every occurrence of a
pattern lands in exactly one partition, so the support filter can be
applied locally and results merged by plain concatenation — no
cross-partition count reconciliation.

This module is a dependency near-leaf: it imports only the standard
library and :mod:`repro.core.columns`.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_right
from itertools import compress
from math import ceil
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.core.columns import (
    _CHUNK_FLAG_BIG_KEYS,
    InstanceRelation,
    SalesIndex,
    chunk_frames,
    extension_counts,
    read_chunks,
    suffix_extend,
)
from repro.errors import PartitionFormatError

try:  # pragma: no cover - same optional dependency as repro.core.columns
    import numpy as _np
except ImportError:
    _np = None

__all__ = [
    "PARTITION_PICKLE_VERSION",
    "ROW_BYTES",
    "Partition",
    "PartitionPlan",
    "boundaries_from_keys",
    "choose_boundaries",
    "concat_columns",
    "decode_buffer_chunks",
    "decode_vector_chunks",
    "key_ranges",
    "output_slices",
    "sample_extension_boundaries",
    "slice_rows",
    "split_by_key_ranges",
]

#: Resident bytes per relation row: the two int64 columns
#: (key, last_sid) a loop relation physically carries.  This is the
#: unit every :class:`PartitionPlan` prices in.
ROW_BYTES = 16

#: Input rows sampled (strided, across the whole input) to place
#: partition boundaries.  Bounded so the sample's own extension stays a
#: sliver of any realistic budget.
BOUNDARY_SAMPLE_ROWS = 2048


def _int64_view(column):
    """A numpy int64 view of an ``array('q')`` column (zero copy)."""
    if isinstance(column, _np.ndarray):
        return column
    return _np.frombuffer(column, dtype=_np.int64)


def decode_vector_chunks(
    data: bytes, *, index: "SalesIndex | None" = None
) -> list[InstanceRelation]:
    """Deserialize a spill blob into chunks with vectorized columns.

    The one decoder both partition consumers read spill bytes through
    (the serial kernel in-process, the pooled engine inside its
    workers), so they can never drift: int64 chunks load as
    ``array('q')`` and are wrapped in zero-copy numpy views for the
    counting/filter primitives; big-key fallback chunks stay plain
    lists.  ``index`` reattaches the lazily-derived columns.
    """
    chunks = list(read_chunks(data, index=index))
    if _np is not None:
        for chunk in chunks:
            if not isinstance(chunk.keys, list):
                chunk.keys = _int64_view(chunk.keys)
                chunk.last_sid = _int64_view(chunk.last_sid)
    return chunks


def decode_buffer_chunks(
    data, *, index: "SalesIndex | None" = None
) -> tuple[list[InstanceRelation], int]:
    """Decode chunks from *any* buffer, int64 columns as zero-copy views.

    The transport-aware sibling of :func:`decode_vector_chunks`:
    ``data`` may be a :class:`memoryview` over a shared-memory segment
    or an ``mmap``-ed spill file, and when numpy is available the int64
    ``keys``/``last_sid`` columns are built with ``np.frombuffer``
    *directly over that buffer* — no intermediate ``bytes``, no
    ``array`` copy.  Big-key fallback chunks (arbitrary-precision
    Python integers) and the stdlib path necessarily copy, exactly as
    :func:`decode_vector_chunks` does.

    Returns ``(chunks, zero_copy_bytes)`` where ``zero_copy_bytes``
    counts the column bytes that were *viewed* rather than copied — the
    transport telemetry's ``copies_avoided`` evidence.

    The views borrow ``data``: the caller must drop every chunk before
    releasing the underlying segment or map (the worker bodies do, by
    construction — replies are packed into fresh buffers).
    """
    if _np is None:
        payload = data if isinstance(data, bytes) else bytes(data)
        return decode_vector_chunks(payload, index=index), 0
    chunks: list[InstanceRelation] = []
    zero_copy_bytes = 0
    for flags, k, n, start, sid_off, key_off, end in chunk_frames(data):
        if flags & _CHUNK_FLAG_BIG_KEYS:
            chunk, _ = InstanceRelation.from_chunk_bytes(
                data, start, index=index
            )
            if not isinstance(chunk.keys, list):
                chunk.keys = _int64_view(chunk.keys)
                chunk.last_sid = _int64_view(chunk.last_sid)
            chunks.append(chunk)
            continue
        sids = _np.frombuffer(data, dtype=_np.int64, count=n, offset=sid_off)
        keys = _np.frombuffer(data, dtype=_np.int64, count=n, offset=key_off)
        zero_copy_bytes += 16 * n
        chunks.append(
            InstanceRelation(
                None, None, last_sid=sids, keys=keys, k=k, index=index
            )
        )
    return chunks, zero_copy_bytes


def concat_columns(columns: list) -> Any:
    """One column from per-chunk columns (ndarray when uniformly possible)."""
    if len(columns) == 1:
        return columns[0]
    if _np is not None and all(
        not isinstance(column, list) for column in columns
    ):
        return _np.concatenate([_int64_view(column) for column in columns])
    merged: list[int] = []
    for column in columns:
        merged.extend(column)
    return merged


def slice_rows(
    relation: InstanceRelation, start: int, stop: int
) -> InstanceRelation:
    """A zero-or-cheap-copy row range of a loop relation."""
    return InstanceRelation(
        None,
        None,
        last_sid=relation.last_sid[start:stop],
        keys=relation.keys[start:stop],
        k=relation.k,
        index=relation.index,
    )


def output_slices(counts, target_rows: int) -> list[tuple[int, int]]:
    """Input row ranges whose summed extension output is ≈ ``target_rows``.

    A single row's extensions are never split, so a slice may overshoot
    by at most one transaction's length — bounded and tiny relative to
    any realistic budget share.
    """
    n = len(counts)
    if n == 0:
        return []
    if _np is not None and isinstance(counts, _np.ndarray):
        cumulative = _np.cumsum(counts)
        total = int(cumulative[-1])
        if total <= target_rows:
            return [(0, n)]
        marks = _np.searchsorted(
            cumulative,
            _np.arange(target_rows, total, target_rows),
            side="left",
        )
        edges = [0]
        for mark in (marks + 1).tolist():
            if edges[-1] < mark < n:
                edges.append(mark)
        edges.append(n)
        return list(zip(edges, edges[1:]))
    slices: list[tuple[int, int]] = []
    start = 0
    emitted = 0
    for i, c in enumerate(counts):
        if emitted >= target_rows and i > start:
            slices.append((start, i))
            start, emitted = i, 0
        emitted += c
    slices.append((start, n))
    return slices


def choose_boundaries(keys, partitions: int) -> list[int]:
    """``partitions - 1`` ascending boundary keys (sample quantiles).

    Partition ``p`` then holds the keys ``k`` with
    ``boundaries[p-1] <= k < boundaries[p]`` under the
    ``bisect_right`` routing of :func:`split_by_key_ranges` (duplicated
    boundary values simply leave some partitions empty — coverage stays
    disjoint and total).
    """
    if _np is not None and isinstance(keys, _np.ndarray):
        ordered = _np.sort(keys)
        n = len(ordered)
        return [int(ordered[n * i // partitions]) for i in range(1, partitions)]
    ordered = sorted(keys)
    n = len(ordered)
    return [ordered[n * i // partitions] for i in range(1, partitions)]


def boundaries_from_keys(
    keys: Sequence[int],
    partitions: int,
    *,
    sample_rows: int = BOUNDARY_SAMPLE_ROWS,
) -> list[int] | None:
    """Boundaries for an already-materialized key column.

    A strided sample (never the column's prefix, which would inherit
    the tid-ordered input's position) feeds :func:`choose_boundaries`.
    Returns ``None`` on an empty column.
    """
    n = len(keys)
    if n == 0:
        return None
    stride = max(1, n // sample_rows)
    if _np is not None and isinstance(keys, (_np.ndarray, array)):
        sample = _int64_view(keys)[::stride]
        return choose_boundaries(_np.asarray(sample), partitions)
    sample = [keys[i] for i in range(0, n, stride)]
    return choose_boundaries(sample, partitions)


def sample_extension_boundaries(
    chunks: Iterable[InstanceRelation],
    index: SalesIndex,
    total_rows: int,
    partitions: int,
    *,
    sample_rows: int = BOUNDARY_SAMPLE_ROWS,
) -> list[int] | None:
    """Partition boundaries from a whole-input sample of *output* keys.

    Quantiles of a single merge slice's keys would inherit that slice's
    position in the tid-ordered input — a database whose packed keys
    drift with trans_id would then funnel most rows into one partition
    and void the memory bound.  Instead, rows strided across *all* of
    ``R_{k-1}`` are extended (exactly the keys the merge will emit for
    them) and the boundaries are quantiles of that global sample.  For
    spilled input this re-reads ``R_{k-1}`` once — the small filtered
    relation, not ``R'_k``.  Returns ``None`` when the sample has no
    extensions (the caller then falls back to first-slice quantiles).
    """
    stride = max(1, total_rows // sample_rows)
    sample_keys: list[int] = []
    for chunk in chunks:
        positions = range(0, len(chunk), stride)
        # Plain ints, not np.int64 scalars: the sampled relation may
        # feed the big-integer fallback of suffix_extend, whose
        # ``int.__mul__`` packing rejects numpy scalars.
        sampled = InstanceRelation(
            None,
            None,
            last_sid=[int(chunk.last_sid[i]) for i in positions],
            keys=[int(chunk.keys[i]) for i in positions],
            k=chunk.k,
            index=index,
        )
        extended = suffix_extend(sampled, index)
        if len(extended) == 0:
            continue
        sample_keys.extend(int(key) for key in extended.keys)
    if not sample_keys:
        return None
    return choose_boundaries(sample_keys, partitions)


def key_ranges(
    boundaries: list[int] | None, partitions: int
) -> list[tuple[int | None, int | None]]:
    """Per-partition ``(key_low, key_high)`` intervals for ``boundaries``.

    The one owner of the boundary-interval semantics both partition
    consumers label their :class:`Partition` work units with: partition
    ``p`` covers ``key_low`` inclusive to ``key_high`` exclusive (the
    :func:`split_by_key_ranges` routing), with ``None`` at unbounded
    ends.  Without boundaries every interval is unbounded.
    """
    if not boundaries:
        return [(None, None)] * partitions
    bounds = [None, *boundaries, None]
    return [(bounds[p], bounds[p + 1]) for p in range(partitions)]


def split_by_key_ranges(
    relation: InstanceRelation, boundaries: list[int]
) -> Iterator[tuple[int, InstanceRelation]]:
    """Route rows to key-range partitions; yield non-empty ``(p, rows)``.

    Partition indices ascend, so consuming the iterator in order visits
    partitions in ascending key-range order.  One ``searchsorted`` /
    ``bisect`` pass assigns every row; each partition's rows are then a
    mask/compress copy preserving input order.
    """
    keys = relation.keys
    if _np is not None and isinstance(keys, _np.ndarray):
        assignment = _np.searchsorted(
            _np.asarray(boundaries, dtype=_np.int64), keys, side="right"
        )
        for p in range(len(boundaries) + 1):
            mask = assignment == p
            if not mask.any():
                continue
            yield p, InstanceRelation(
                None,
                None,
                last_sid=relation.last_sid[mask],
                keys=keys[mask],
                k=relation.k,
                index=relation.index,
            )
        return
    assignment = [bisect_right(boundaries, key) for key in keys]
    for p in range(len(boundaries) + 1):
        selector = [a == p for a in assignment]
        if not any(selector):
            continue
        yield p, InstanceRelation(
            None,
            None,
            last_sid=list(compress(relation.last_sid, selector)),
            keys=list(compress(keys, selector)),
            k=relation.k,
            index=relation.index,
        )


#: Version tag written into every :class:`Partition` pickle.  Bumped
#: whenever the descriptor layout changes; a pool member reading a
#: different version raises the typed
#: :class:`~repro.errors.PartitionFormatError` instead of a garbled
#: unpickle (mixed-version pools are a deployment error, not a data
#: corruption).
PARTITION_PICKLE_VERSION = 2


class Partition:
    """One key-range slice of an ``R'_k`` relation, as serialized chunks.

    The first-class work unit of partitioned execution: it carries the
    pattern-key range it covers (``key_low`` inclusive, ``key_high``
    exclusive, ``None`` for unbounded ends) and a *descriptor* of its
    rows in the chunk format of
    :meth:`InstanceRelation.to_chunk_bytes` — exactly one of

    * ``payload`` — the chunk bytes inline (they travel inside the
      task pickle: the ``pickle`` transport);
    * ``shm`` — a ``(segment_name, offset, length)`` slice of a
      :mod:`multiprocessing.shared_memory` segment (the pickle shrinks
      to the descriptor; workers view the bytes in place: the ``shm``
      transport);
    * ``path`` — a spill file (workers read — or ``mmap`` — the file
      themselves: the spill engines and the ``mmap`` transport).

    Because every occurrence of a pattern falls in exactly one key
    range, counting a partition yields *global* counts for every
    pattern it contains.

    Partitions are picklable whatever the descriptor (including the
    length-prefixed big-key fallback chunks produced when packed keys
    exceed 64 bits); the pickle carries
    :data:`PARTITION_PICKLE_VERSION` so version skew inside a pool
    fails typed and early.
    """

    __slots__ = (
        "k", "key_low", "key_high", "num_rows", "payload", "path", "shm"
    )

    def __init__(
        self,
        k: int,
        *,
        key_low: int | None = None,
        key_high: int | None = None,
        num_rows: int = 0,
        payload: bytes | None = None,
        path: str | os.PathLike | None = None,
        shm: tuple[str, int, int] | None = None,
    ) -> None:
        sources = sum(
            source is not None for source in (payload, path, shm)
        )
        if sources != 1:
            raise ValueError(
                "a Partition is backed by exactly one chunk source: "
                "pass payload= (in memory), path= (spill file), or "
                "shm= (shared-memory slice)"
            )
        self.k = k
        self.key_low = key_low
        self.key_high = key_high
        self.num_rows = num_rows
        self.payload = payload
        self.path = Path(path) if path is not None else None
        self.shm = tuple(shm) if shm is not None else None

    @classmethod
    def from_relation(
        cls,
        relation: InstanceRelation,
        *,
        key_low: int | None = None,
        key_high: int | None = None,
    ) -> "Partition":
        """An in-memory partition holding ``relation``'s rows."""
        return cls(
            relation.k,
            key_low=key_low,
            key_high=key_high,
            num_rows=len(relation),
            payload=relation.to_chunk_bytes(),
        )

    def read_bytes(self) -> bytes:
        """This partition's raw chunk bytes (memory, shared memory, or disk).

        For ``shm``-backed partitions this *copies* the slice out of
        the segment — the convenience accessor; the zero-copy path is
        :func:`repro.core.transport.partition_buffer`.
        """
        if self.payload is not None:
            return self.payload
        if self.shm is not None:
            # Imported lazily: this module stays a dependency near-leaf
            # and the transport module imports Partition from here.
            from repro.core.transport import read_segment_slice

            return read_segment_slice(self.shm)
        if self.path is None:
            raise ValueError("partition already deleted; no chunk source left")
        return self.path.read_bytes()

    def load(
        self, *, index: SalesIndex | None = None
    ) -> list[InstanceRelation]:
        """Deserialize every chunk (``index`` reattaches lazy columns)."""
        return list(read_chunks(self.read_bytes(), index=index))

    def delete(self) -> None:
        """Drop the chunk source: unlink the spill file / free the payload.

        A ``shm`` descriptor is only *detached* here — the segment's
        create/unlink lifecycle belongs to the parent-side transport
        session, never to the (possibly many) partitions viewing it.
        Reading a deleted partition raises a clear :class:`ValueError`
        from :meth:`read_bytes`; deleting twice is a no-op.
        """
        if self.path is not None:
            try:
                os.remove(self.path)
            except FileNotFoundError:
                pass
            self.path = None
        self.payload = None
        self.shm = None

    # Explicit, versioned pickle state: the descriptor travels to pool
    # processes on every dispatch, so its layout is a wire format.  The
    # "v" tag turns a mixed-version pool into a typed refusal instead
    # of a garbled unpickle.
    def __getstate__(self):
        return {
            "v": PARTITION_PICKLE_VERSION,
            "k": self.k,
            "key_low": self.key_low,
            "key_high": self.key_high,
            "num_rows": self.num_rows,
            "payload": self.payload,
            "path": str(self.path) if self.path is not None else None,
            "shm": self.shm,
        }

    def __setstate__(self, state) -> None:
        version = state.get("v") if isinstance(state, dict) else None
        if version != PARTITION_PICKLE_VERSION:
            raise PartitionFormatError(PARTITION_PICKLE_VERSION, version)
        self.k = state["k"]
        self.key_low = state["key_low"]
        self.key_high = state["key_high"]
        self.num_rows = state["num_rows"]
        self.payload = state["payload"]
        path = state["path"]
        self.path = Path(path) if path is not None else None
        shm = state["shm"]
        self.shm = tuple(shm) if shm is not None else None

    def __repr__(self) -> str:
        if self.payload is not None:
            source = "payload"
        elif self.shm is not None:
            source = f"shm={self.shm[0]}+{self.shm[1]}"
        else:
            source = f"path={self.path}"
        return (
            f"Partition(k={self.k}, rows={self.num_rows}, "
            f"range=[{self.key_low}, {self.key_high}), {source})"
        )


class PartitionPlan:
    """How (and whether) to partition one ``R'_k`` — priced up front.

    Because :func:`~repro.core.columns.extension_counts` prices every
    ``R_{k-1}`` row's merge output exactly, ``|R'_k|`` is known *before*
    a single row is materialized; the plan turns that row count into a
    partition count against a byte budget share.  ``num_partitions == 1``
    means the relation fits the share and should not be partitioned at
    all (the spill engine keeps it in memory; the parallel engine
    counts it in-process).
    """

    __slots__ = ("predicted_rows", "num_partitions", "share_bytes", "row_bytes")

    def __init__(
        self,
        predicted_rows: int,
        num_partitions: int,
        *,
        share_bytes: int | None = None,
        row_bytes: int = ROW_BYTES,
    ) -> None:
        self.predicted_rows = predicted_rows
        self.num_partitions = num_partitions
        self.share_bytes = share_bytes
        self.row_bytes = row_bytes

    @classmethod
    def from_predicted_rows(
        cls,
        predicted_rows: int,
        share_bytes: int,
        *,
        row_bytes: int = ROW_BYTES,
    ) -> "PartitionPlan":
        """Plan against a byte budget: spill into ``ceil(bytes/share)``
        ranges when the priced relation exceeds one share."""
        if predicted_rows * row_bytes <= share_bytes:
            partitions = 1
        else:
            partitions = max(2, ceil(predicted_rows * row_bytes / share_bytes))
        return cls(
            predicted_rows,
            partitions,
            share_bytes=share_bytes,
            row_bytes=row_bytes,
        )

    @classmethod
    def from_extension_counts(
        cls,
        relation: InstanceRelation,
        index: SalesIndex,
        share_bytes: int,
        *,
        row_bytes: int = ROW_BYTES,
    ) -> "PartitionPlan":
        """Price ``relation``'s merge output exactly, then plan."""
        predicted = int(sum(extension_counts(relation, index)))
        return cls.from_predicted_rows(
            predicted, share_bytes, row_bytes=row_bytes
        )

    @property
    def fits_in_memory(self) -> bool:
        """True when the priced relation needs no partitioning."""
        return self.num_partitions == 1

    @property
    def predicted_bytes(self) -> int:
        """The priced resident size of the unpartitioned relation."""
        return self.predicted_rows * self.row_bytes

    def __repr__(self) -> str:
        return (
            f"PartitionPlan(rows={self.predicted_rows}, "
            f"partitions={self.num_partitions}, share={self.share_bytes})"
        )
