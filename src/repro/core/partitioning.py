"""Partitioned execution layer: first-class ``R'_k`` work units.

The paper's central claim is that Figure 4's merge/count/filter passes
are pure set operations with no cross-row dependencies.  Two engines
exploit the same consequence in two directions:

* the **spill** engine (:mod:`repro.core.setm_columnar_disk`) range-
  partitions ``R'_k`` by packed pattern key into *files* and counts one
  partition at a time to bound resident memory;
* the **parallel** engine (:mod:`repro.core.setm_parallel`) range-
  partitions ``R'_k`` into *picklable payloads* and counts all
  partitions at once in worker processes.

Both need exactly the same machinery, which this module owns (it used
to live inline in the spill kernel):

* :class:`Partition` — one key-range slice of a relation as serialized
  chunks (:meth:`~repro.core.columns.InstanceRelation.to_chunk_bytes`),
  held either in memory (``payload``) or on disk (``path``).  Picklable
  either way, so a partition can be handed to a worker process as-is.
* :class:`PartitionPlan` — partition count and placement priced from
  :func:`~repro.core.columns.extension_counts` *before* a single
  ``R'_k`` row is materialized.
* :func:`choose_boundaries` / :func:`sample_extension_boundaries` /
  :func:`boundaries_from_keys` — quantile boundary choosers; the
  extension sampler strides across the *whole* of ``R_{k-1}`` so
  tid-correlated key drift cannot funnel rows into one partition.
* :func:`split_by_key_ranges` — route a relation's rows to partitions
  (one ``searchsorted``/``bisect`` pass plus per-partition compress).

Key-range partitioning (as opposed to hashing or row slicing) is what
makes per-partition counts *global* counts: every occurrence of a
pattern lands in exactly one partition, so the support filter can be
applied locally and results merged by plain concatenation — no
cross-partition count reconciliation.

This module is a dependency near-leaf: it imports only the standard
library and :mod:`repro.core.columns`.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_right
from itertools import compress
from math import ceil
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.core.columns import (
    InstanceRelation,
    SalesIndex,
    extension_counts,
    read_chunks,
    suffix_extend,
)

try:  # pragma: no cover - same optional dependency as repro.core.columns
    import numpy as _np
except ImportError:
    _np = None

__all__ = [
    "ROW_BYTES",
    "Partition",
    "PartitionPlan",
    "boundaries_from_keys",
    "choose_boundaries",
    "concat_columns",
    "decode_vector_chunks",
    "key_ranges",
    "output_slices",
    "sample_extension_boundaries",
    "slice_rows",
    "split_by_key_ranges",
]

#: Resident bytes per relation row: the two int64 columns
#: (key, last_sid) a loop relation physically carries.  This is the
#: unit every :class:`PartitionPlan` prices in.
ROW_BYTES = 16

#: Input rows sampled (strided, across the whole input) to place
#: partition boundaries.  Bounded so the sample's own extension stays a
#: sliver of any realistic budget.
BOUNDARY_SAMPLE_ROWS = 2048


def _int64_view(column):
    """A numpy int64 view of an ``array('q')`` column (zero copy)."""
    if isinstance(column, _np.ndarray):
        return column
    return _np.frombuffer(column, dtype=_np.int64)


def decode_vector_chunks(
    data: bytes, *, index: "SalesIndex | None" = None
) -> list[InstanceRelation]:
    """Deserialize a spill blob into chunks with vectorized columns.

    The one decoder both partition consumers read spill bytes through
    (the serial kernel in-process, the pooled engine inside its
    workers), so they can never drift: int64 chunks load as
    ``array('q')`` and are wrapped in zero-copy numpy views for the
    counting/filter primitives; big-key fallback chunks stay plain
    lists.  ``index`` reattaches the lazily-derived columns.
    """
    chunks = list(read_chunks(data, index=index))
    if _np is not None:
        for chunk in chunks:
            if not isinstance(chunk.keys, list):
                chunk.keys = _int64_view(chunk.keys)
                chunk.last_sid = _int64_view(chunk.last_sid)
    return chunks


def concat_columns(columns: list) -> Any:
    """One column from per-chunk columns (ndarray when uniformly possible)."""
    if len(columns) == 1:
        return columns[0]
    if _np is not None and all(
        not isinstance(column, list) for column in columns
    ):
        return _np.concatenate([_int64_view(column) for column in columns])
    merged: list[int] = []
    for column in columns:
        merged.extend(column)
    return merged


def slice_rows(
    relation: InstanceRelation, start: int, stop: int
) -> InstanceRelation:
    """A zero-or-cheap-copy row range of a loop relation."""
    return InstanceRelation(
        None,
        None,
        last_sid=relation.last_sid[start:stop],
        keys=relation.keys[start:stop],
        k=relation.k,
        index=relation.index,
    )


def output_slices(counts, target_rows: int) -> list[tuple[int, int]]:
    """Input row ranges whose summed extension output is ≈ ``target_rows``.

    A single row's extensions are never split, so a slice may overshoot
    by at most one transaction's length — bounded and tiny relative to
    any realistic budget share.
    """
    n = len(counts)
    if n == 0:
        return []
    if _np is not None and isinstance(counts, _np.ndarray):
        cumulative = _np.cumsum(counts)
        total = int(cumulative[-1])
        if total <= target_rows:
            return [(0, n)]
        marks = _np.searchsorted(
            cumulative,
            _np.arange(target_rows, total, target_rows),
            side="left",
        )
        edges = [0]
        for mark in (marks + 1).tolist():
            if edges[-1] < mark < n:
                edges.append(mark)
        edges.append(n)
        return list(zip(edges, edges[1:]))
    slices: list[tuple[int, int]] = []
    start = 0
    emitted = 0
    for i, c in enumerate(counts):
        if emitted >= target_rows and i > start:
            slices.append((start, i))
            start, emitted = i, 0
        emitted += c
    slices.append((start, n))
    return slices


def choose_boundaries(keys, partitions: int) -> list[int]:
    """``partitions - 1`` ascending boundary keys (sample quantiles).

    Partition ``p`` then holds the keys ``k`` with
    ``boundaries[p-1] <= k < boundaries[p]`` under the
    ``bisect_right`` routing of :func:`split_by_key_ranges` (duplicated
    boundary values simply leave some partitions empty — coverage stays
    disjoint and total).
    """
    if _np is not None and isinstance(keys, _np.ndarray):
        ordered = _np.sort(keys)
        n = len(ordered)
        return [int(ordered[n * i // partitions]) for i in range(1, partitions)]
    ordered = sorted(keys)
    n = len(ordered)
    return [ordered[n * i // partitions] for i in range(1, partitions)]


def boundaries_from_keys(
    keys: Sequence[int],
    partitions: int,
    *,
    sample_rows: int = BOUNDARY_SAMPLE_ROWS,
) -> list[int] | None:
    """Boundaries for an already-materialized key column.

    A strided sample (never the column's prefix, which would inherit
    the tid-ordered input's position) feeds :func:`choose_boundaries`.
    Returns ``None`` on an empty column.
    """
    n = len(keys)
    if n == 0:
        return None
    stride = max(1, n // sample_rows)
    if _np is not None and isinstance(keys, (_np.ndarray, array)):
        sample = _int64_view(keys)[::stride]
        return choose_boundaries(_np.asarray(sample), partitions)
    sample = [keys[i] for i in range(0, n, stride)]
    return choose_boundaries(sample, partitions)


def sample_extension_boundaries(
    chunks: Iterable[InstanceRelation],
    index: SalesIndex,
    total_rows: int,
    partitions: int,
    *,
    sample_rows: int = BOUNDARY_SAMPLE_ROWS,
) -> list[int] | None:
    """Partition boundaries from a whole-input sample of *output* keys.

    Quantiles of a single merge slice's keys would inherit that slice's
    position in the tid-ordered input — a database whose packed keys
    drift with trans_id would then funnel most rows into one partition
    and void the memory bound.  Instead, rows strided across *all* of
    ``R_{k-1}`` are extended (exactly the keys the merge will emit for
    them) and the boundaries are quantiles of that global sample.  For
    spilled input this re-reads ``R_{k-1}`` once — the small filtered
    relation, not ``R'_k``.  Returns ``None`` when the sample has no
    extensions (the caller then falls back to first-slice quantiles).
    """
    stride = max(1, total_rows // sample_rows)
    sample_keys: list[int] = []
    for chunk in chunks:
        positions = range(0, len(chunk), stride)
        # Plain ints, not np.int64 scalars: the sampled relation may
        # feed the big-integer fallback of suffix_extend, whose
        # ``int.__mul__`` packing rejects numpy scalars.
        sampled = InstanceRelation(
            None,
            None,
            last_sid=[int(chunk.last_sid[i]) for i in positions],
            keys=[int(chunk.keys[i]) for i in positions],
            k=chunk.k,
            index=index,
        )
        extended = suffix_extend(sampled, index)
        if len(extended) == 0:
            continue
        sample_keys.extend(int(key) for key in extended.keys)
    if not sample_keys:
        return None
    return choose_boundaries(sample_keys, partitions)


def key_ranges(
    boundaries: list[int] | None, partitions: int
) -> list[tuple[int | None, int | None]]:
    """Per-partition ``(key_low, key_high)`` intervals for ``boundaries``.

    The one owner of the boundary-interval semantics both partition
    consumers label their :class:`Partition` work units with: partition
    ``p`` covers ``key_low`` inclusive to ``key_high`` exclusive (the
    :func:`split_by_key_ranges` routing), with ``None`` at unbounded
    ends.  Without boundaries every interval is unbounded.
    """
    if not boundaries:
        return [(None, None)] * partitions
    bounds = [None, *boundaries, None]
    return [(bounds[p], bounds[p + 1]) for p in range(partitions)]


def split_by_key_ranges(
    relation: InstanceRelation, boundaries: list[int]
) -> Iterator[tuple[int, InstanceRelation]]:
    """Route rows to key-range partitions; yield non-empty ``(p, rows)``.

    Partition indices ascend, so consuming the iterator in order visits
    partitions in ascending key-range order.  One ``searchsorted`` /
    ``bisect`` pass assigns every row; each partition's rows are then a
    mask/compress copy preserving input order.
    """
    keys = relation.keys
    if _np is not None and isinstance(keys, _np.ndarray):
        assignment = _np.searchsorted(
            _np.asarray(boundaries, dtype=_np.int64), keys, side="right"
        )
        for p in range(len(boundaries) + 1):
            mask = assignment == p
            if not mask.any():
                continue
            yield p, InstanceRelation(
                None,
                None,
                last_sid=relation.last_sid[mask],
                keys=keys[mask],
                k=relation.k,
                index=relation.index,
            )
        return
    assignment = [bisect_right(boundaries, key) for key in keys]
    for p in range(len(boundaries) + 1):
        selector = [a == p for a in assignment]
        if not any(selector):
            continue
        yield p, InstanceRelation(
            None,
            None,
            last_sid=list(compress(relation.last_sid, selector)),
            keys=list(compress(keys, selector)),
            k=relation.k,
            index=relation.index,
        )


class Partition:
    """One key-range slice of an ``R'_k`` relation, as serialized chunks.

    The first-class work unit of partitioned execution: it carries the
    pattern-key range it covers (``key_low`` inclusive, ``key_high``
    exclusive, ``None`` for unbounded ends) and its rows in the chunk
    format of :meth:`InstanceRelation.to_chunk_bytes` — either in
    memory (``payload``) or in a spill file (``path``).  Because every
    occurrence of a pattern falls in exactly one key range, counting a
    partition yields *global* counts for every pattern it contains.

    Partitions are picklable (bytes payloads and paths both travel), so
    the parallel engine can submit them to worker processes unchanged —
    including the length-prefixed big-key fallback chunks produced when
    packed keys exceed 64 bits.
    """

    __slots__ = ("k", "key_low", "key_high", "num_rows", "payload", "path")

    def __init__(
        self,
        k: int,
        *,
        key_low: int | None = None,
        key_high: int | None = None,
        num_rows: int = 0,
        payload: bytes | None = None,
        path: str | os.PathLike | None = None,
    ) -> None:
        if (payload is None) == (path is None):
            raise ValueError(
                "a Partition is backed by exactly one chunk source: "
                "pass payload= (in memory) or path= (spill file)"
            )
        self.k = k
        self.key_low = key_low
        self.key_high = key_high
        self.num_rows = num_rows
        self.payload = payload
        self.path = Path(path) if path is not None else None

    @classmethod
    def from_relation(
        cls,
        relation: InstanceRelation,
        *,
        key_low: int | None = None,
        key_high: int | None = None,
    ) -> "Partition":
        """An in-memory partition holding ``relation``'s rows."""
        return cls(
            relation.k,
            key_low=key_low,
            key_high=key_high,
            num_rows=len(relation),
            payload=relation.to_chunk_bytes(),
        )

    def read_bytes(self) -> bytes:
        """This partition's raw chunk bytes (from memory or disk)."""
        if self.payload is not None:
            return self.payload
        if self.path is None:
            raise ValueError("partition already deleted; no chunk source left")
        return self.path.read_bytes()

    def load(
        self, *, index: SalesIndex | None = None
    ) -> list[InstanceRelation]:
        """Deserialize every chunk (``index`` reattaches lazy columns)."""
        return list(read_chunks(self.read_bytes(), index=index))

    def delete(self) -> None:
        """Drop the chunk source: unlink the spill file / free the payload.

        Reading a deleted partition raises a clear :class:`ValueError`
        from :meth:`read_bytes`; deleting twice is a no-op.
        """
        if self.path is not None:
            try:
                os.remove(self.path)
            except FileNotFoundError:
                pass
            self.path = None
        self.payload = None

    # __slots__ classes need explicit state plumbing only when a slot
    # holds something unpicklable; Path and bytes both travel, so the
    # default protocol-2 reduction applies.  Spelled out anyway so the
    # pickle contract is visible and version-stable.
    def __getstate__(self):
        return {
            "k": self.k,
            "key_low": self.key_low,
            "key_high": self.key_high,
            "num_rows": self.num_rows,
            "payload": self.payload,
            "path": str(self.path) if self.path is not None else None,
        }

    def __setstate__(self, state) -> None:
        self.k = state["k"]
        self.key_low = state["key_low"]
        self.key_high = state["key_high"]
        self.num_rows = state["num_rows"]
        self.payload = state["payload"]
        path = state["path"]
        self.path = Path(path) if path is not None else None

    def __repr__(self) -> str:
        source = "payload" if self.payload is not None else f"path={self.path}"
        return (
            f"Partition(k={self.k}, rows={self.num_rows}, "
            f"range=[{self.key_low}, {self.key_high}), {source})"
        )


class PartitionPlan:
    """How (and whether) to partition one ``R'_k`` — priced up front.

    Because :func:`~repro.core.columns.extension_counts` prices every
    ``R_{k-1}`` row's merge output exactly, ``|R'_k|`` is known *before*
    a single row is materialized; the plan turns that row count into a
    partition count against a byte budget share.  ``num_partitions == 1``
    means the relation fits the share and should not be partitioned at
    all (the spill engine keeps it in memory; the parallel engine
    counts it in-process).
    """

    __slots__ = ("predicted_rows", "num_partitions", "share_bytes", "row_bytes")

    def __init__(
        self,
        predicted_rows: int,
        num_partitions: int,
        *,
        share_bytes: int | None = None,
        row_bytes: int = ROW_BYTES,
    ) -> None:
        self.predicted_rows = predicted_rows
        self.num_partitions = num_partitions
        self.share_bytes = share_bytes
        self.row_bytes = row_bytes

    @classmethod
    def from_predicted_rows(
        cls,
        predicted_rows: int,
        share_bytes: int,
        *,
        row_bytes: int = ROW_BYTES,
    ) -> "PartitionPlan":
        """Plan against a byte budget: spill into ``ceil(bytes/share)``
        ranges when the priced relation exceeds one share."""
        if predicted_rows * row_bytes <= share_bytes:
            partitions = 1
        else:
            partitions = max(2, ceil(predicted_rows * row_bytes / share_bytes))
        return cls(
            predicted_rows,
            partitions,
            share_bytes=share_bytes,
            row_bytes=row_bytes,
        )

    @classmethod
    def from_extension_counts(
        cls,
        relation: InstanceRelation,
        index: SalesIndex,
        share_bytes: int,
        *,
        row_bytes: int = ROW_BYTES,
    ) -> "PartitionPlan":
        """Price ``relation``'s merge output exactly, then plan."""
        predicted = int(sum(extension_counts(relation, index)))
        return cls.from_predicted_rows(
            predicted, share_bytes, row_bytes=row_bytes
        )

    @property
    def fits_in_memory(self) -> bool:
        """True when the priced relation needs no partitioning."""
        return self.num_partitions == 1

    @property
    def predicted_bytes(self) -> int:
        """The priced resident size of the unpartitioned relation."""
        return self.predicted_rows * self.row_bytes

    def __repr__(self) -> str:
        return (
            f"PartitionPlan(rows={self.predicted_rows}, "
            f"partitions={self.num_partitions}, share={self.share_bytes})"
        )
