"""The :class:`Miner` facade — a typed mining session over one database.

This is the front door of the package::

    from repro import Miner, MiningConfig

    miner = Miner(database)
    config = MiningConfig(support=0.30, confidence=0.70)
    result = miner.frequent_itemsets(config)   # MiningResult
    rules = miner.rules(config)                # list[Rule]
    print(miner.explain(config))               # the resolved plan

A ``Miner`` resolves the engine through :mod:`repro.registry`, rejects
unknown engine options *before* mining, times every run, and caches
results per config so the selective post-hoc queries — ``patterns()``,
``support_of()``, ``rules_about()`` — answer from the cached
:class:`~repro.core.result.MiningResult` instead of re-mining.  That
query-shaped access to an already-mined result echoes the selective
rule generation of Hahsler et al.: mine once, then ask narrow questions.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Iterator

from repro.config import MiningConfig, _validate_confidence
from repro.core.result import MiningResult, Pattern
from repro.core.rules import Rule, generate_rules
from repro.core.transactions import Item, TransactionDatabase
from repro.errors import InvalidConfigError, ReproError
from repro.registry import EngineSpec, get_engine

__all__ = ["Miner"]

#: Default result-cache bound; a session rarely sweeps more configs.
_CACHE_LIMIT = 8


class Miner:
    """A mining session bound to one :class:`TransactionDatabase`.

    Parameters
    ----------
    database:
        The transactions every call of this session mines — a
        :class:`TransactionDatabase`, or a stream-encoded
        :class:`~repro.data.ingest.EncodedDataset` (engines without the
        ``streaming_ingest`` capability transparently mine its
        materialized decoded form; see :meth:`EngineSpec.run`).
    default_config:
        Config used when a call omits one (default: ``MiningConfig()``,
        i.e. SETM at 1% support).
    cache_entries:
        Bound of the per-config result cache (LRU eviction).  ``0``
        disables caching entirely — every call re-mines, though
        :attr:`last_result` still tracks the latest run.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        *,
        default_config: MiningConfig | None = None,
        cache_entries: int = _CACHE_LIMIT,
    ) -> None:
        if (
            isinstance(cache_entries, bool)
            or not isinstance(cache_entries, int)
            or cache_entries < 0
        ):
            raise InvalidConfigError(
                f"cache_entries must be an integer >= 0; got {cache_entries!r}"
            )
        self._database = database
        self._default_config = default_config or MiningConfig()
        # LRU (least-recently-used first) cache of mined results, keyed
        # by the config fields that determine the pattern set.
        self._results: OrderedDict[tuple, MiningResult] = OrderedDict()
        self._cache_entries = cache_entries
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._last_result: MiningResult | None = None

    # -- config plumbing ----------------------------------------------------------

    @property
    def database(self) -> TransactionDatabase:
        return self._database

    @property
    def default_config(self) -> MiningConfig:
        return self._default_config

    def _resolve_config(
        self, config: MiningConfig | None, overrides: dict[str, object]
    ) -> MiningConfig:
        base = config if config is not None else self._default_config
        if not isinstance(base, MiningConfig):
            raise InvalidConfigError(
                f"expected a MiningConfig; got {base!r} "
                "(build one with MiningConfig(support=...))"
            )
        return base.replace(**overrides) if overrides else base

    def _pattern_key(self, config: MiningConfig) -> tuple:
        """A hashable key of the fields that determine the pattern set.

        Confidence is excluded (it only shapes rule generation), as are
        the ingest fields ``input_format``/``chunk_rows`` (they shape
        how a file is decoded, never the pattern set) and ``state_dir``
        (delta-merged results are byte-identical to from-scratch ones);
        the support *type* is included (``support=1`` means one absolute
        transaction; ``support=1.0`` means everything — ``==`` on the
        config would conflate them), and option values are keyed by
        ``repr`` so unhashable values (lists, dicts) never break caching.
        The dataset *generation* leads the key: an
        :meth:`~repro.data.ingest.EncodedDataset.append_chunks` bumps
        it, so every pre-append entry goes stale at once and an appended
        dataset can never be served pre-append patterns.
        """
        return (
            getattr(self._database, "generation", None),
            config.support,
            config.is_absolute_support,
            config.algorithm,
            config.max_length,
            tuple(sorted((k, repr(v)) for k, v in config.options.items())),
        )

    # -- mining -------------------------------------------------------------------

    def frequent_itemsets(
        self, config: MiningConfig | None = None, **overrides: object
    ) -> MiningResult:
        """Mine (or return the cached) frequent itemsets under ``config``.

        Keyword overrides refine the config for this call, e.g.
        ``miner.frequent_itemsets(algorithm="apriori", max_length=2)``.

        Raises
        ------
        UnknownAlgorithmError
            ``config.algorithm`` is not registered.
        EngineOptionError
            ``config.options`` contains an option the engine rejects
            (raised before any mining work happens).
        """
        config = self._resolve_config(config, overrides)
        key = self._pattern_key(config)
        with self._cache_lock:
            cached = self._results.get(key)
            if cached is not None:
                self._hits += 1
                self._results.move_to_end(key)
                self._last_result = cached
                return cached
            self._misses += 1
        spec = get_engine(config.algorithm)
        options = config.options_for(spec.name)
        if config.state_dir is not None and spec.incremental:
            # The config-level state handle only reaches engines that
            # maintain state; everything else would reject the option.
            options.setdefault("state_dir", config.state_dir)
        started = time.perf_counter()
        result = spec.run(
            self._database,
            config.support,
            max_length=config.max_length,
            options=options,
        )
        elapsed = time.perf_counter() - started
        result.extra.setdefault("session", {}).update(
            {"engine": spec.name, "api_elapsed_seconds": elapsed}
        )
        with self._cache_lock:
            self._last_result = result
            if self._cache_entries > 0:
                self._results[key] = result
                self._results.move_to_end(key)
                while len(self._results) > self._cache_entries:
                    self._results.popitem(last=False)
                    self._evictions += 1
        return result

    def rules(
        self, config: MiningConfig | None = None, **overrides: object
    ) -> list[Rule]:
        """Mine (or reuse) patterns under ``config`` and generate its rules.

        Requires ``config.confidence`` to be set.
        """
        config = self._resolve_config(config, overrides)
        if config.confidence is None:
            raise InvalidConfigError(
                "rule generation needs a confidence threshold; "
                "set MiningConfig(confidence=...)"
            )
        result = self.frequent_itemsets(config)
        return generate_rules(result, config.confidence)

    def mine_delta(
        self, config: MiningConfig | None = None, **overrides: object
    ) -> MiningResult:
        """Re-mine after appends, counting only the delta where possible.

        Resolves ``config`` like :meth:`frequent_itemsets`, then ensures
        the run goes through an ``incremental``-capable engine (a
        non-incremental ``algorithm`` is switched to
        ``"setm-incremental"`` — results are byte-identical by the
        conformance contract) with the config's ``state_dir``.  The
        first call over a dataset performs a full mine that materializes
        the state; every call after an
        :meth:`~repro.data.ingest.EncodedDataset.append_chunks` counts
        only the appended transactions and merges
        (``result.extra["incremental"]`` reports delta rows, state hits,
        and the targeted-recount fraction).  The result cache keys on
        the dataset generation, so served entries are always post-append.

        Raises
        ------
        InvalidConfigError
            No ``state_dir`` is configured — delta mining needs
            somewhere to keep the materialized counts.
        StateMismatchError
            The saved state does not cover this dataset/config.
        StateVersionError
            The saved state was written by a different format version.
        """
        config = self._resolve_config(config, overrides)
        if config.state_dir is None:
            raise InvalidConfigError(
                "mine_delta needs MiningConfig(state_dir=...) to hold the "
                "materialized count state between runs"
            )
        spec = get_engine(config.algorithm)
        if not spec.incremental:
            config = config.replace(algorithm="setm-incremental")
        return self.frequent_itemsets(config)

    def explain(self, config: MiningConfig | None = None, **overrides: object) -> str:
        """Describe how ``config`` would run — without mining anything.

        Resolves the engine, validates the options, and reports the
        capability flags and the absolute support threshold the run
        would apply.  Raises the same errors ``frequent_itemsets`` would,
        so ``explain`` doubles as a dry-run validator.
        """
        config = self._resolve_config(config, overrides)
        spec = get_engine(config.algorithm)
        options = config.options_for(spec.name)
        spec.validate_options(options, max_length=config.max_length)

        n = self._database.num_transactions
        threshold = config.support_threshold(n)
        support = (
            f"{config.support} transactions (absolute)"
            if config.is_absolute_support
            else f"{config.support:g} of {n:,} transactions"
        )
        accepted = (
            "(unchecked)"
            if spec.accepted_options is None
            else ", ".join(sorted(spec.accepted_options)) or "(none)"
        )
        lines = [
            f"engine: {spec.name}"
            + (f" — {spec.description}" if spec.description else ""),
            f"  supports max_length: {'yes' if spec.supports_max_length else 'no'}",
            f"  representation: {spec.representation}",
            "  reports page accesses: "
            + ("yes" if spec.reports_page_accesses else "no"),
            "  out of core: "
            + (
                "yes (honours memory_budget_bytes)"
                if spec.out_of_core
                else "no"
            ),
            "  parallel: "
            + (
                f"yes (workers={self._resolve_workers(options)})"
                if spec.parallel
                else "no"
            ),
            "  streaming ingest: "
            + (
                "yes (mines stream-encoded datasets directly)"
                if spec.streaming_ingest
                else "no (streamed inputs are materialized first)"
            ),
            "  incremental: "
            + (
                "yes (state_dir enables delta-only re-mining)"
                if spec.incremental
                else "no"
            ),
            f"  accepted options: {accepted}",
            f"minimum support: {support} -> threshold {threshold}",
            "minimum confidence: "
            + (
                f"{config.confidence:g}"
                if config.confidence is not None
                else "(not set — patterns only)"
            ),
            "max pattern length: "
            + (str(config.max_length) if config.max_length else "unbounded"),
            "options: "
            + (
                ", ".join(f"{k}={v!r}" for k, v in sorted(options.items()))
                or "(none)"
            ),
            "cached: "
            + ("yes" if self._find_cached(config) is not None else "no"),
        ]
        return "\n".join(lines)

    @staticmethod
    def _resolve_workers(options: dict[str, object]) -> object:
        """The worker count a parallel engine would actually use."""
        workers = options.get("workers")
        if workers is not None:
            return workers
        # Imported lazily: explain() must not drag the engine module in
        # for sessions that never touch the parallel engine.
        from repro.core.setm_parallel import default_workers

        return default_workers()

    # -- post-hoc queries over the cached result ----------------------------------

    def _find_cached(self, config: MiningConfig | None) -> MiningResult | None:
        with self._cache_lock:
            if config is None:
                return self._last_result
            return self._results.get(self._pattern_key(config))

    @property
    def last_result(self) -> MiningResult | None:
        """The most recently mined (or cache-served) result, if any."""
        return self._last_result

    def _require_result(self) -> MiningResult:
        result = self.last_result
        if result is None:
            raise ReproError(
                "no mining run cached yet; call frequent_itemsets() first"
            )
        return result

    def patterns(
        self,
        *,
        length: int | None = None,
        containing: Iterable[Item] | None = None,
        min_count: int | None = None,
    ) -> Iterator[tuple[Pattern, int]]:
        """Selectively iterate the cached patterns.

        Parameters
        ----------
        length:
            Only patterns of exactly this length.
        containing:
            Only patterns containing every one of these items.
        min_count:
            Only patterns with at least this absolute support count.
        """
        result = self._require_result()
        wanted = set(containing) if containing is not None else None
        for pattern, count in result.iter_patterns():
            if length is not None and len(pattern) != length:
                continue
            if wanted is not None and not wanted.issubset(pattern):
                continue
            if min_count is not None and count < min_count:
                continue
            yield pattern, count

    def support_of(self, *items: Item) -> float | None:
        """Fractional support of an itemset in the cached result.

        Items may be given in any order; returns ``None`` when the
        itemset is not frequent at the mined threshold.
        """
        return self._require_result().support_fraction(tuple(items))

    def rules_about(
        self,
        item: Item,
        *,
        confidence: float | None = None,
    ) -> list[Rule]:
        """Rules from the cached result that mention ``item`` on either side.

        ``confidence`` defaults to the session default config's value and
        must be set one way or the other.
        """
        if confidence is None:
            confidence = self._default_config.confidence
        if confidence is None:
            raise InvalidConfigError(
                "rules_about needs a confidence threshold; pass confidence=..."
            )
        _validate_confidence(confidence)
        result = self._require_result()
        return [
            rule
            for rule in generate_rules(result, confidence)
            if item in rule.pattern
        ]

    # -- introspection ------------------------------------------------------------

    def engine_spec(self, config: MiningConfig | None = None) -> EngineSpec:
        """The :class:`EngineSpec` that ``config`` resolves to."""
        config = self._resolve_config(config, {})
        return get_engine(config.algorithm)

    def cache_info(self) -> dict[str, object]:
        """A snapshot of the result cache: bound, fill, and hit counters.

        ``hit_rate`` is ``hits / (hits + misses)`` rounded to 4 places,
        or ``None`` before the first lookup.
        """
        with self._cache_lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._results),
                "max_entries": self._cache_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (
                    round(self._hits / lookups, 4) if lookups else None
                ),
            }

    def __repr__(self) -> str:
        return (
            f"Miner(transactions={self._database.num_transactions}, "
            f"cached_runs={len(self._results)})"
        )
