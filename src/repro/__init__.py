"""repro — a full reproduction of Houtsma & Swami's SETM (ICDE 1995).

*Set-Oriented Mining for Association Rules in Relational Databases*
expressed association-rule mining as plain SQL — sorting, merge-scan
joins, ``GROUP BY``/``HAVING`` — and showed the resulting Algorithm SETM
to be simple, fast, and stable across minimum-support values.

This package rebuilds the whole system:

* :mod:`repro.core` — Algorithm SETM in four guises (in-memory tuples,
  columnar arrays, SQL, paged-disk), the nested-loop strategy it
  rejects, and rule generation;
* :mod:`repro.sql` + :mod:`repro.relational` — a SQL subset engine, so
  the paper's queries run verbatim (``sqlite3`` is supported too);
* :mod:`repro.storage` — a simulated disk, buffer pool, external sort,
  merge-scan join and B+-tree matching the paper's cost-model constants;
* :mod:`repro.baselines` — AIS, Apriori, and a brute-force oracle;
* :mod:`repro.data` — the Figure 1 example, a generator calibrated to the
  paper's retail data set, Quest workloads, and the hypothetical analysis
  database;
* :mod:`repro.analysis` — the Section 3.2 / 4.3 cost models, to the page;
* :mod:`repro.serve` — mining as a service: a long-lived JSON/HTTP
  server (``python -m repro serve``) with admission control, shared
  session caches, and graceful drain.

The public API is the typed session layer: a :class:`MiningConfig`
(validated support as fraction *or* absolute count, confidence,
``max_length``, engine options) handed to a :class:`Miner` facade, which
resolves the engine through the capability-aware :mod:`repro.registry`
and caches the :class:`MiningResult` for selective follow-up queries.

Quickstart::

    from repro import Miner, MiningConfig, TransactionDatabase

    db = TransactionDatabase([(1, ["bread", "butter", "milk"]),
                              (2, ["bread", "butter"])])
    miner = Miner(db)
    config = MiningConfig(support=0.5, confidence=0.9)
    result = miner.frequent_itemsets(config)
    rules = miner.rules(config)
    print(miner.explain(config))          # the resolved plan, no mining
    miner.support_of("bread", "butter")   # post-hoc query, no re-mining

The flat pre-1.1 API (:func:`mine_frequent_itemsets`,
:func:`mine_association_rules`, ``ALGORITHMS``) remains as thin
compatibility wrappers over the session layer.

All errors raised at the API boundary derive from
:class:`~repro.errors.ReproError`; see :mod:`repro.errors`.
"""

from repro.api import ALGORITHMS, mine_association_rules, mine_frequent_itemsets
from repro.config import MiningConfig
from repro.core.result import IterationStats, MiningResult
from repro.core.rules import Rule, generate_rules
from repro.core.setm import setm
from repro.core.setm_columnar import setm_columnar
from repro.core.transactions import (
    ItemCatalog,
    Transaction,
    TransactionDatabase,
)
from repro.errors import (
    EngineOptionError,
    InvalidConfigError,
    InvalidSupportError,
    ReproError,
    ServeError,
    UnknownAlgorithmError,
)
from repro.miner import Miner
from repro.registry import (
    EngineSpec,
    available_engines,
    engine_specs,
    get_engine,
    register_engine,
)

__version__ = "1.10.0"

__all__ = [
    "ALGORITHMS",
    "EngineOptionError",
    "EngineSpec",
    "InvalidConfigError",
    "InvalidSupportError",
    "ItemCatalog",
    "IterationStats",
    "Miner",
    "MiningConfig",
    "MiningResult",
    "ReproError",
    "Rule",
    "ServeError",
    "Transaction",
    "TransactionDatabase",
    "UnknownAlgorithmError",
    "__version__",
    "available_engines",
    "engine_specs",
    "generate_rules",
    "get_engine",
    "mine_association_rules",
    "mine_frequent_itemsets",
    "register_engine",
    "setm",
    "setm_columnar",
]
