"""repro — a full reproduction of Houtsma & Swami's SETM (ICDE 1995).

*Set-Oriented Mining for Association Rules in Relational Databases*
expressed association-rule mining as plain SQL — sorting, merge-scan
joins, ``GROUP BY``/``HAVING`` — and showed the resulting Algorithm SETM
to be simple, fast, and stable across minimum-support values.

This package rebuilds the whole system:

* :mod:`repro.core` — Algorithm SETM in three guises (in-memory, SQL,
  paged-disk), the nested-loop strategy it rejects, and rule generation;
* :mod:`repro.sql` + :mod:`repro.relational` — a SQL subset engine, so
  the paper's queries run verbatim (``sqlite3`` is supported too);
* :mod:`repro.storage` — a simulated disk, buffer pool, external sort,
  merge-scan join and B+-tree matching the paper's cost-model constants;
* :mod:`repro.baselines` — AIS, Apriori, and a brute-force oracle;
* :mod:`repro.data` — the Figure 1 example, a generator calibrated to the
  paper's retail data set, Quest workloads, and the hypothetical analysis
  database;
* :mod:`repro.analysis` — the Section 3.2 / 4.3 cost models, to the page.

Quickstart::

    from repro import TransactionDatabase, mine_association_rules

    db = TransactionDatabase([(1, ["bread", "butter", "milk"]),
                              (2, ["bread", "butter"])])
    result, rules = mine_association_rules(
        db, minimum_support=0.5, minimum_confidence=0.9)
"""

from repro.api import ALGORITHMS, mine_association_rules, mine_frequent_itemsets
from repro.core.result import IterationStats, MiningResult
from repro.core.rules import Rule, generate_rules
from repro.core.setm import setm
from repro.core.transactions import (
    ItemCatalog,
    Transaction,
    TransactionDatabase,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ItemCatalog",
    "IterationStats",
    "MiningResult",
    "Rule",
    "Transaction",
    "TransactionDatabase",
    "__version__",
    "generate_rules",
    "mine_association_rules",
    "mine_frequent_itemsets",
    "setm",
]
