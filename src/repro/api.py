"""Front-door mining API.

Most users want two calls:

>>> from repro import TransactionDatabase, mine_association_rules
>>> db = TransactionDatabase([(1, ["bread", "butter", "milk"]),
...                           (2, ["bread", "butter"]),
...                           (3, ["beer"])])
>>> result, rules = mine_association_rules(db, minimum_support=0.5,
...                                        minimum_confidence=0.9)
>>> [str(r) for r in rules]
['butter ==> bread, [100.0%, 66.7%]', 'bread ==> butter, [100.0%, 66.7%]']

``algorithm`` selects the engine; ``"setm"`` (the paper's contribution)
is the default.  All engines return identical patterns — the test suite
holds them to that — so the choice only affects *how* the work is done:

===================  ==========================================================
``setm``             In-memory Algorithm SETM (Figure 4)
``setm-disk``        SETM on the paged storage engine (reports page accesses)
``setm-sql``         SETM as generated SQL on the bundled engine (Section 4.1)
``setm-sqlite``      The same SQL on stdlib sqlite3
``nested-loop``      The Section 3.1 formulation, in memory
``apriori``          Apriori baseline (VLDB '94)
``ais``              AIS baseline (SIGMOD '93, the paper's reference [4])
``bruteforce``       Exhaustive oracle (small inputs only)
===================  ==========================================================
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.ais import ais
from repro.baselines.apriori import apriori
from repro.baselines.bruteforce import bruteforce
from repro.core.nested_loop import nested_loop_mine
from repro.core.result import MiningResult
from repro.core.rules import Rule, generate_rules
from repro.core.setm import setm
from repro.core.setm_disk import setm_disk
from repro.core.setm_sql import setm_sql
from repro.core.transactions import TransactionDatabase
from repro.sqlbridge.sqlite_miner import sqlite_mine

__all__ = ["ALGORITHMS", "mine_association_rules", "mine_frequent_itemsets"]

#: Algorithm registry: name → callable(db, minsup, **kwargs) → MiningResult.
ALGORITHMS: dict[str, Callable[..., MiningResult]] = {
    "setm": setm,
    "setm-disk": setm_disk,
    "setm-sql": setm_sql,
    "setm-sqlite": sqlite_mine,
    "nested-loop": nested_loop_mine,
    "apriori": apriori,
    "ais": ais,
    "bruteforce": bruteforce,
}


def mine_frequent_itemsets(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    algorithm: str = "setm",
    **options: object,
) -> MiningResult:
    """Find all patterns with support at least ``minimum_support``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fraction of transactions in ``(0, 1]`` a pattern must appear in.
    algorithm:
        One of :data:`ALGORITHMS` (default ``"setm"``).
    options:
        Passed through to the engine (e.g. ``max_length=3``,
        ``buffer_pages=128`` for ``setm-disk``).
    """
    try:
        engine = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from: {known}"
        ) from None
    return engine(database, minimum_support, **options)


def mine_association_rules(
    database: TransactionDatabase,
    minimum_support: float,
    minimum_confidence: float,
    *,
    algorithm: str = "setm",
    **options: object,
) -> tuple[MiningResult, list[Rule]]:
    """Mine patterns, then generate the Section 5 rules from them.

    Returns the :class:`MiningResult` (for its iteration statistics and
    count relations) together with the qualifying rules.
    """
    result = mine_frequent_itemsets(
        database, minimum_support, algorithm=algorithm, **options
    )
    return result, generate_rules(result, minimum_confidence)
