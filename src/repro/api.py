"""Front-door mining API.

The typed entry point is the :class:`~repro.miner.Miner` session facade
with a :class:`~repro.config.MiningConfig`:

>>> from repro import Miner, MiningConfig, TransactionDatabase
>>> db = TransactionDatabase([(1, ["bread", "butter", "milk"]),
...                           (2, ["bread", "butter"]),
...                           (3, ["beer"])])
>>> miner = Miner(db)
>>> rules = miner.rules(MiningConfig(support=0.5, confidence=0.9))
>>> [str(r) for r in rules]
['butter ==> bread, [100.0%, 66.7%]', 'bread ==> butter, [100.0%, 66.7%]']

``MiningConfig.algorithm`` selects the engine; ``"setm"`` (the paper's
contribution) is the default.  All engines return identical patterns —
the test suite holds them to that — so the choice only affects *how* the
work is done.  Engines self-register in :mod:`repro.registry` with
capability metadata; ``repro.registry.available_engines()`` lists them:

===================  ==========================================================
``setm``             In-memory Algorithm SETM (Figure 4)
``setm-columnar``    SETM on dictionary-encoded array columns (fast in-memory)
``setm-disk``        SETM on the paged storage engine (reports page accesses)
``setm-sql``         SETM as generated SQL on the bundled engine (Section 4.1)
``setm-sqlite``      The same SQL on stdlib sqlite3
``nested-loop``      The Section 3.1 formulation, in memory
``nested-loop-disk`` Section 3.2's physical plan over real B+-tree indexes
``apriori``          Apriori baseline (VLDB '94)
``ais``              AIS baseline (SIGMOD '93, the paper's reference [4])
``bruteforce``       Exhaustive oracle (small inputs only)
===================  ==========================================================

This module keeps the original flat functions —
:func:`mine_frequent_itemsets`, :func:`mine_association_rules`, and the
``ALGORITHMS`` mapping — as thin compatibility wrappers over the session
layer.  They are not deprecated for *reading*; mutating ``ALGORITHMS``
emits a :class:`DeprecationWarning` (register engines with
:func:`repro.registry.register_engine` instead).
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterator, MutableMapping

from repro.config import MiningConfig
from repro.core.result import MiningResult
from repro.errors import InvalidSupportError
from repro.core.rules import Rule
from repro.core.transactions import TransactionDatabase
from repro.miner import Miner
from repro.registry import (
    available_engines,
    find_engine,
    register_engine,
    unregister_engine,
)

__all__ = ["ALGORITHMS", "mine_association_rules", "mine_frequent_itemsets"]


def _legacy_config(
    minimum_support: float,
    minimum_confidence: float | None,
    algorithm: str,
    options: dict[str, object],
) -> MiningConfig:
    """Translate a flat legacy call into a :class:`MiningConfig`.

    The legacy functions documented ``minimum_support`` as a *fraction*,
    so an integer ``1`` here historically meant 100% — coerce to float to
    preserve that reading (``MiningConfig`` treats bare ints as absolute
    counts).
    """
    if isinstance(minimum_support, int) and not isinstance(minimum_support, bool):
        if minimum_support > 1:
            # Don't let the coercion produce a confusing "absolute count
            # >= 1 ... got 5.0" message: name the actual contract here.
            raise InvalidSupportError(
                "minimum_support",
                minimum_support,
                "a fraction in (0, 1] in this legacy function "
                "(use MiningConfig(support=<int>) for absolute counts)",
            )
        minimum_support = float(minimum_support)
    options = dict(options)
    max_length = options.pop("max_length", None)
    return MiningConfig(
        support=minimum_support,
        confidence=minimum_confidence,
        algorithm=algorithm,
        max_length=max_length,
        options=options,
    )


def mine_frequent_itemsets(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    algorithm: str = "setm",
    **options: object,
) -> MiningResult:
    """Find all patterns with support at least ``minimum_support``.

    Compatibility wrapper over ``Miner(database).frequent_itemsets(...)``.

    Parameters
    ----------
    database:
        The transactions to mine.
    minimum_support:
        Fraction of transactions in ``(0, 1]`` a pattern must appear in.
    algorithm:
        A registered engine name (default ``"setm"``).
    options:
        Passed through to the engine (e.g. ``max_length=3``,
        ``buffer_pages=128`` for ``setm-disk``) after validation against
        the engine's accepted options.
    """
    config = _legacy_config(minimum_support, None, algorithm, options)
    return Miner(database).frequent_itemsets(config)


def mine_association_rules(
    database: TransactionDatabase,
    minimum_support: float,
    minimum_confidence: float,
    *,
    algorithm: str = "setm",
    **options: object,
) -> tuple[MiningResult, list[Rule]]:
    """Mine patterns, then generate the Section 5 rules from them.

    Compatibility wrapper over ``Miner``; returns the
    :class:`MiningResult` (for its iteration statistics and count
    relations) together with the qualifying rules.
    """
    config = _legacy_config(minimum_support, minimum_confidence, algorithm, options)
    miner = Miner(database)
    result = miner.frequent_itemsets(config)
    return result, miner.rules(config)


class _AlgorithmsView(MutableMapping):
    """Legacy ``ALGORITHMS`` mapping, live-backed by the engine registry.

    Reading (``ALGORITHMS["setm"]``, iteration, ``len``) is supported
    unchanged and reflects the current registry.  Mutation still works
    but emits a :class:`DeprecationWarning`: new engines should register
    through :func:`repro.registry.register_engine`, which also carries
    capability metadata.
    """

    def __getitem__(self, name: str) -> Callable[..., MiningResult]:
        spec = find_engine(name)
        if spec is None:
            raise KeyError(name)
        return spec.runner

    def __iter__(self) -> Iterator[str]:
        return iter(available_engines())

    def __len__(self) -> int:
        return len(available_engines())

    def __setitem__(
        self, name: str, runner: Callable[..., MiningResult]
    ) -> None:
        warnings.warn(
            "mutating repro.api.ALGORITHMS is deprecated; use "
            "repro.registry.register_engine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        # The callable's signature is unknown, so option checking is
        # disabled for engines injected this way.
        register_engine(name, accepted_options=None, replace=True)(runner)

    def __delitem__(self, name: str) -> None:
        warnings.warn(
            "mutating repro.api.ALGORITHMS is deprecated; use "
            "repro.registry.unregister_engine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if find_engine(name) is None:
            raise KeyError(name)
        unregister_engine(name)

    def copy(self) -> dict[str, Callable[..., MiningResult]]:
        """A plain-dict snapshot — dict-API parity for old read-side code."""
        return {name: self[name] for name in self}

    def __repr__(self) -> str:
        return f"ALGORITHMS({', '.join(available_engines())})"


#: Legacy algorithm registry view: name -> callable(db, minsup, **kwargs).
ALGORITHMS: MutableMapping[str, Callable[..., MiningResult]] = _AlgorithmsView()
