"""SQL subset engine: lexer, parser, planner, executor, and the paper's
query generator."""

from repro.sql.database import SQLDatabase
from repro.sql.parser import ParserError, parse_script, parse_statement
from repro.sql.planner import PlannerError

__all__ = [
    "ParserError",
    "PlannerError",
    "SQLDatabase",
    "parse_script",
    "parse_statement",
]
