"""Tokenizer for the SQL subset.

Token kinds: keywords (case-insensitive), identifiers, integer literals,
single-quoted string literals (with ``''`` escaping), named parameters
(``:minsupport``), comparison operators, punctuation.  Line/column info is
kept on every token so parse errors point at the offending character —
table stakes for an engine whose whole point is "you can write this in
SQL".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Lexer", "LexerError", "Token", "TokenType", "KEYWORDS", "tokenize"]


class LexerError(Exception):
    """Unexpected character or unterminated literal."""


class TokenType(Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    INTEGER = "INTEGER"
    STRING = "STRING"
    PARAMETER = "PARAMETER"
    OPERATOR = "OPERATOR"  # = <> < <= > >=
    COMMA = "COMMA"
    DOT = "DOT"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    STAR = "STAR"
    SEMICOLON = "SEMICOLON"
    EOF = "EOF"


KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AND",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "INSERT",
        "INTO",
        "VALUES",
        "CREATE",
        "DROP",
        "TABLE",
        "IF",
        "EXISTS",
        "NOT",
        "AS",
        "COUNT",
        "ASC",
        "DESC",
        "DELETE",
        "INTEGER",
        "INT",
        "TEXT",
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.value!r} at line {self.line}, column {self.column}"


class Lexer:
    """Single-pass tokenizer; call :meth:`tokens` once."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        for char in chunk:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def _error(self, message: str) -> LexerError:
        return LexerError(f"line {self.line}, column {self.column}: {message}")

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while self.pos < len(self.text):
            char = self._peek()
            if char.isspace():
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":  # SQL line comment
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                continue
            line, column = self.line, self.column
            if char.isalpha() or char == "_":
                out.append(self._word(line, column))
            elif char.isdigit():
                out.append(self._number(line, column))
            elif char == "'":
                out.append(self._string(line, column))
            elif char == ":":
                out.append(self._parameter(line, column))
            elif char in "=<>":
                out.append(self._operator(line, column))
            elif char == ",":
                self._advance()
                out.append(Token(TokenType.COMMA, ",", line, column))
            elif char == ".":
                self._advance()
                out.append(Token(TokenType.DOT, ".", line, column))
            elif char == "(":
                self._advance()
                out.append(Token(TokenType.LPAREN, "(", line, column))
            elif char == ")":
                self._advance()
                out.append(Token(TokenType.RPAREN, ")", line, column))
            elif char == "*":
                self._advance()
                out.append(Token(TokenType.STAR, "*", line, column))
            elif char == ";":
                self._advance()
                out.append(Token(TokenType.SEMICOLON, ";", line, column))
            else:
                raise self._error(f"unexpected character {char!r}")
        out.append(Token(TokenType.EOF, "", self.line, self.column))
        return out

    def _word(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.text[start : self.pos]
        if word.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, word.upper(), line, column)
        return Token(TokenType.IDENTIFIER, word, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha():
            raise self._error("identifiers may not start with a digit")
        return Token(
            TokenType.INTEGER, self.text[start : self.pos], line, column
        )

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            char = self._advance()
            if char == "'":
                if self._peek() == "'":  # escaped quote
                    parts.append("'")
                    self._advance()
                else:
                    break
            else:
                parts.append(char)
        return Token(TokenType.STRING, "".join(parts), line, column)

    def _parameter(self, line: int, column: int) -> Token:
        self._advance()  # the colon
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        name = self.text[start : self.pos]
        if not name:
            raise self._error("':' must be followed by a parameter name")
        return Token(TokenType.PARAMETER, name, line, column)

    def _operator(self, line: int, column: int) -> Token:
        two = self._peek() + self._peek(1)
        if two in ("<>", "<=", ">="):
            self._advance(2)
            return Token(TokenType.OPERATOR, two, line, column)
        return Token(TokenType.OPERATOR, self._advance(), line, column)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` in one call."""
    return Lexer(text).tokens()
