"""Abstract syntax for the SQL subset.

The grammar covers exactly what the paper's Sections 3.1 and 4.1 write —
multi-table ``SELECT`` with conjunctive ``WHERE``, ``COUNT(*)`` with
``GROUP BY`` / ``HAVING``, ``ORDER BY``, ``INSERT INTO ... SELECT``,
``INSERT INTO ... VALUES``, ``CREATE TABLE``, ``DROP TABLE`` and
``DELETE FROM`` — nothing more.  Reusing the expression nodes of
:mod:`repro.relational.expressions` keeps one comparison semantics across
the parser and the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.expressions import ColumnRef, Comparison, Literal, Parameter
from repro.relational.schema import ColumnType

__all__ = [
    "CountStar",
    "CreateTable",
    "DeleteFrom",
    "DropTable",
    "InsertSelect",
    "InsertValues",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Star",
    "Statement",
    "TableRef",
]


@dataclass(frozen=True, slots=True)
class CountStar:
    """The ``COUNT(*)`` aggregate (the only one the subset needs)."""

    def __str__(self) -> str:
        return "COUNT(*)"


@dataclass(frozen=True, slots=True)
class Star:
    """``SELECT *`` (optionally ``alias.*``)."""

    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One projection item: a column reference, ``COUNT(*)`` or ``*``,
    with an optional output alias."""

    expression: ColumnRef | CountStar | Star
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, Star):
            return "*"
        return "count"


@dataclass(frozen=True, slots=True)
class TableRef:
    """A FROM-list entry: table name plus optional alias (``SALES r1``)."""

    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name columns are qualified with inside the query."""
        return self.alias or self.table


@dataclass(frozen=True, slots=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True, slots=True)
class SelectStatement:
    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: tuple[Comparison, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    having: tuple[Comparison, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    distinct: bool = False


@dataclass(frozen=True, slots=True)
class InsertSelect:
    table: str
    select: SelectStatement


@dataclass(frozen=True, slots=True)
class InsertValues:
    table: str
    rows: tuple[tuple[Literal | Parameter, ...], ...]


@dataclass(frozen=True, slots=True)
class CreateTable:
    table: str
    columns: tuple[tuple[str, ColumnType], ...]


@dataclass(frozen=True, slots=True)
class DropTable:
    table: str
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class DeleteFrom:
    """``DELETE FROM t`` (whole-table delete; the loop drops R'_k this way)."""

    table: str


Statement = (
    SelectStatement
    | InsertSelect
    | InsertValues
    | CreateTable
    | DropTable
    | DeleteFrom
)
