"""Planner: SQL AST → executable physical plans.

The planner applies the optimizations the paper credits a relational
optimizer with (Section 2: "The experience that has been gained in
optimizing relational queries can directly be applied here"):

* **selection pushdown** — single-table WHERE conjuncts filter base scans;
* **join method selection** — an equi-join conjunct turns the join into a
  sort-merge join (Section 4's plan); without one the planner falls back
  to nested loops (Section 3's plan).  Band conjuncts
  (``q.item > p.item_{k-1}``) ride along as merge-join residuals;
* **sort-based grouping** — ``GROUP BY``/``COUNT(*)``/``HAVING`` compile
  to a sort + sequential counting scan, exactly Figure 4's counting step.

Plans are left-deep in FROM order (the 1990s default).  ``explain()``
renders the operator tree so tests can pin which join method a paper query
gets.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    CompiledPredicate,
    Literal,
    Parameter,
)
from repro.relational.operators import (
    group_count,
    merge_join,
    nested_loop_join,
    project,
    select as select_op,
    sort_rows,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema, SchemaError
from repro.sql.ast_nodes import (
    CountStar,
    SelectItem,
    SelectStatement,
    Star,
)

__all__ = ["PlannerError", "SelectPlan", "plan_select"]

#: Name given to the COUNT(*) output column inside grouped schemas; the
#: parser's COUNT_STAR_REF resolves to it.
COUNT_COLUMN = "count(*)"


class PlannerError(Exception):
    """Semantic errors: unknown tables/columns, unsupported shapes."""


@dataclass
class _PlanNode:
    """One operator in the rendered plan tree (for ``explain()``)."""

    label: str
    children: list["_PlanNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        lines = ["  " * indent + self.label]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


def _resolve_binding(
    ref: ColumnRef, schemas: Mapping[str, Schema]
) -> str:
    """Which FROM binding a column reference belongs to."""
    if ref.qualifier is not None:
        if ref.qualifier not in schemas:
            raise PlannerError(f"unknown table alias {ref.qualifier!r}")
        return ref.qualifier
    owners = [
        binding
        for binding, schema in schemas.items()
        if ref.name in schema.names()
    ]
    if not owners:
        raise PlannerError(f"unknown column {ref.name!r}")
    if len(owners) > 1:
        raise PlannerError(
            f"ambiguous column {ref.name!r} (in {', '.join(sorted(owners))})"
        )
    return owners[0]


def _conjunct_bindings(
    conjunct: Comparison, schemas: Mapping[str, Schema]
) -> set[str]:
    bindings: set[str] = set()
    for operand in (conjunct.left, conjunct.right):
        if isinstance(operand, ColumnRef) and operand.name != COUNT_COLUMN:
            bindings.add(_resolve_binding(operand, schemas))
    return bindings


class SelectPlan:
    """A compiled SELECT: call :meth:`execute` with parameter bindings."""

    def __init__(
        self,
        statement: SelectStatement,
        catalog: Catalog,
        *,
        join_method: str = "auto",
    ) -> None:
        if join_method not in ("auto", "merge", "nested"):
            raise PlannerError(f"unknown join_method {join_method!r}")
        if not statement.from_tables:
            raise PlannerError("FROM clause is required")
        self.statement = statement
        self.catalog = catalog
        self.join_method = join_method
        self._binding_schemas: dict[str, Schema] = {}
        self._relations: dict[str, Relation] = {}
        for table_ref in statement.from_tables:
            binding = table_ref.binding
            if binding in self._binding_schemas:
                raise PlannerError(f"duplicate table alias {binding!r}")
            relation = catalog.get(table_ref.table)
            self._binding_schemas[binding] = relation.schema.with_qualifier(
                binding
            )
            self._relations[binding] = relation
        self._validate_items()
        self.root = _PlanNode("placeholder")  # filled during execute/explain

    # -- validation -------------------------------------------------------------------

    def _validate_items(self) -> None:
        statement = self.statement
        has_count = any(
            isinstance(item.expression, CountStar)
            for item in statement.select_items
        )
        if statement.group_by:
            group_names = {
                (ref.qualifier, ref.name) for ref in statement.group_by
            }
            for item in statement.select_items:
                if isinstance(item.expression, (CountStar, Star)):
                    continue
                ref = item.expression
                if (ref.qualifier, ref.name) not in group_names:
                    # Allow a bare/qualified mismatch to resolve later; only
                    # reject when clearly absent by name.
                    if ref.name not in {name for _, name in group_names}:
                        raise PlannerError(
                            f"column {ref} must appear in GROUP BY"
                        )
        elif statement.having:
            raise PlannerError("HAVING requires GROUP BY")
        elif has_count and len(statement.select_items) > 1:
            raise PlannerError(
                "COUNT(*) without GROUP BY cannot mix with other columns"
            )

    # -- execution ---------------------------------------------------------------------

    def execute(self, params: Mapping[str, object] | None = None) -> Relation:
        params = dict(params or {})
        rows, schema, node = self._joined_input(params)

        statement = self.statement
        if statement.group_by or self._has_count_star():
            rows, schema, node = self._grouped(rows, schema, node, params)

        # ORDER BY (resolved against the pre-projection schema when
        # possible — the paper's ORDER BY p.trans_id, p.item1, ... names
        # source columns).
        order_after_projection = False
        if statement.order_by:
            try:
                indexes = [
                    (item.column.resolve(schema), item.descending)
                    for item in statement.order_by
                ]
                rows = self._apply_order(rows, indexes)
                node = _PlanNode(
                    "Sort "
                    + ", ".join(str(item.column) for item in statement.order_by),
                    [node],
                )
            except SchemaError:
                order_after_projection = True

        # Projection (expanding `*` / `alias.*` against the current schema).
        items: list[SelectItem] = []
        for item in statement.select_items:
            if isinstance(item.expression, Star):
                qualifier = item.expression.qualifier
                expanded = [
                    SelectItem(ColumnRef(column.name, column.qualifier))
                    for column in schema.columns
                    if qualifier is None or column.qualifier == qualifier
                ]
                if not expanded:
                    raise PlannerError(
                        f"{item.expression} matches no columns"
                    )
                items.extend(expanded)
            else:
                items.append(item)

        out_indexes: list[int] = []
        out_columns: list[Column] = []
        used_names: set[str] = set()
        for item in items:
            if isinstance(item.expression, CountStar):
                index = schema.index_of(COUNT_COLUMN)
                column_type = ColumnType.INTEGER
            else:
                index = item.expression.resolve(schema)
                column_type = schema.columns[index].type
            out_indexes.append(index)
            name = item.output_name
            qualifier = None
            if name in used_names:
                source = schema.columns[index]
                qualifier = source.qualifier or f"c{len(out_columns)}"
            used_names.add(name)
            out_columns.append(Column(name, column_type, qualifier))
        rows = project(rows, out_indexes)
        out_schema = Schema(out_columns)
        node = _PlanNode(
            "Project "
            + ", ".join(column.qualified_name for column in out_columns),
            [node],
        )

        if statement.distinct:
            rows = iter(dict.fromkeys(rows))
            node = _PlanNode("Distinct", [node])

        if order_after_projection:
            indexes = [
                (item.column.resolve(out_schema), item.descending)
                for item in statement.order_by
            ]
            rows = self._apply_order(rows, indexes)
            node = _PlanNode(
                "Sort (output) "
                + ", ".join(str(item.column) for item in statement.order_by),
                [node],
            )

        self.root = node
        return Relation(out_schema, rows)

    @staticmethod
    def _apply_order(rows, indexes: list[tuple[int, bool]]):
        materialized = list(rows)
        # Stable sorts applied minor-key-first implement mixed ASC/DESC.
        for index, descending in reversed(indexes):
            materialized.sort(key=lambda row: row[index], reverse=descending)
        return iter(materialized)

    def _has_count_star(self) -> bool:
        return any(
            isinstance(item.expression, CountStar)
            for item in self.statement.select_items
        )

    # -- join pipeline -----------------------------------------------------------------

    def _joined_input(self, params: Mapping[str, object]):
        statement = self.statement
        schemas = self._binding_schemas
        remaining = list(statement.where)

        def take_conjuncts(available: set[str]) -> list[Comparison]:
            """Pop WHERE conjuncts fully resolvable from ``available``."""
            taken, kept = [], []
            for conjunct in remaining:
                if _conjunct_bindings(conjunct, schemas) <= available:
                    taken.append(conjunct)
                else:
                    kept.append(conjunct)
            remaining[:] = kept
            return taken

        # Base scans with pushed-down single-table predicates.
        order = [table_ref.binding for table_ref in statement.from_tables]
        first = order[0]
        current_schema = schemas[first]
        pushed = take_conjuncts({first})
        rows = iter(self._relations[first].rows)
        node = _PlanNode(
            f"Scan {first}"
            + (f" filter [{' AND '.join(map(str, pushed))}]" if pushed else "")
        )
        if pushed:
            predicate = self._compile_all(pushed, current_schema, params)
            rows = select_op(rows, predicate)
        joined = {first}

        for binding in order[1:]:
            right_schema = schemas[binding]
            # Split conjuncts for this join: single-table on the new
            # binding (pushdown), equi-join, and residual.
            candidates = take_conjuncts(joined | {binding})
            new_only = [
                conjunct
                for conjunct in candidates
                if _conjunct_bindings(conjunct, schemas) <= {binding}
            ]
            cross = [c for c in candidates if c not in new_only]
            equi = [
                conjunct
                for conjunct in cross
                if conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ]
            residual = [c for c in cross if c not in equi]

            right_rows = iter(self._relations[binding].rows)
            right_node = _PlanNode(
                f"Scan {binding}"
                + (
                    f" filter [{' AND '.join(map(str, new_only))}]"
                    if new_only
                    else ""
                )
            )
            if new_only:
                predicate = self._compile_all(new_only, right_schema, params)
                right_rows = select_op(right_rows, predicate)

            combined_schema = current_schema.concat(right_schema)
            use_merge = self.join_method != "nested" and bool(equi)
            if self.join_method == "merge" and not equi:
                raise PlannerError(
                    f"join with {binding} has no equi-join predicate; "
                    "merge join impossible"
                )
            if use_merge:
                left_keys, right_keys = [], []
                for conjunct in equi:
                    left_ref = conjunct.left
                    right_ref = conjunct.right
                    assert isinstance(left_ref, ColumnRef)
                    assert isinstance(right_ref, ColumnRef)
                    if _resolve_binding(right_ref, schemas) == binding:
                        outer_ref, inner_ref = left_ref, right_ref
                    else:
                        outer_ref, inner_ref = right_ref, left_ref
                    left_keys.append(outer_ref.resolve(current_schema))
                    right_keys.append(inner_ref.resolve(right_schema))

                left_key = self._tuple_key(left_keys)
                right_key = self._tuple_key(right_keys)
                left_sorted = sort_rows(rows, left_key)
                right_sorted = sort_rows(right_rows, right_key)
                residual_predicate = (
                    self._compile_all(residual, combined_schema, params)
                    if residual
                    else None
                )
                rows = merge_join(
                    left_sorted,
                    right_sorted,
                    left_key,
                    right_key,
                    residual_predicate,
                )
                node = _PlanNode(
                    "MergeJoin "
                    + " AND ".join(map(str, equi))
                    + (
                        f" residual [{' AND '.join(map(str, residual))}]"
                        if residual
                        else ""
                    ),
                    [node, right_node],
                )
            else:
                predicate = (
                    self._compile_all(cross, combined_schema, params)
                    if cross
                    else None
                )
                inner_rows = list(right_rows)
                rows = nested_loop_join(
                    rows, lambda inner=inner_rows: inner, predicate
                )
                node = _PlanNode(
                    "NestedLoopJoin"
                    + (
                        f" [{' AND '.join(map(str, cross))}]"
                        if cross
                        else " (cross)"
                    ),
                    [node, right_node],
                )
            current_schema = combined_schema
            joined.add(binding)

        if remaining:
            predicate = self._compile_all(remaining, current_schema, params)
            rows = select_op(rows, predicate)
            node = _PlanNode(
                f"Filter [{' AND '.join(map(str, remaining))}]", [node]
            )
        return rows, current_schema, node

    @staticmethod
    def _tuple_key(indexes: list[int]):
        if len(indexes) == 1:
            index = indexes[0]
            return lambda row: (row[index],)
        return lambda row: tuple(row[i] for i in indexes)

    @staticmethod
    def _compile_all(
        conjuncts: list[Comparison],
        schema: Schema,
        params: Mapping[str, object],
    ) -> CompiledPredicate:
        compiled = [conjunct.compile(schema, params) for conjunct in conjuncts]
        if len(compiled) == 1:
            return compiled[0]
        return lambda row: all(predicate(row) for predicate in compiled)

    # -- grouping ----------------------------------------------------------------------

    def _grouped(self, rows, schema: Schema, node: _PlanNode, params):
        statement = self.statement
        group_indexes = [
            ref.resolve(schema) for ref in statement.group_by
        ]
        grouped_columns = [schema.columns[index] for index in group_indexes]
        grouped_schema = Schema(
            [*grouped_columns, Column(COUNT_COLUMN, ColumnType.INTEGER)]
        )
        # HAVING COUNT(*) >= n compiles against the grouped schema; a
        # plain threshold comparison is additionally given to the
        # counting scan so unsupported groups die during the scan, the
        # way Figure 4 folds HAVING into count generation.
        having_min = None
        having_rest: list[Comparison] = []
        for conjunct in statement.having:
            bound = self._having_threshold(conjunct, params)
            if bound is not None and having_min is None:
                having_min = bound
            else:
                having_rest.append(conjunct)
        rows = group_count(
            rows, group_indexes, having_min_count=having_min
        )
        if not group_indexes:
            # Scalar COUNT(*): SQL yields exactly one row, 0 on empty input.
            materialized = list(rows)
            rows = iter(materialized if materialized else [(0,)])
        label = "GroupCount " + ", ".join(
            column.qualified_name for column in grouped_columns
        )
        if having_min is not None:
            label += f" having count>={having_min}"
        node = _PlanNode(label, [node])
        if having_rest:
            predicate = self._compile_all(having_rest, grouped_schema, params)
            rows = select_op(rows, predicate)
            node = _PlanNode(
                f"Having [{' AND '.join(map(str, having_rest))}]", [node]
            )
        return rows, grouped_schema, node

    @staticmethod
    def _having_threshold(
        conjunct: Comparison, params: Mapping[str, object]
    ) -> int | None:
        """Extract ``COUNT(*) >= n`` as an integer threshold, else None."""
        left, right = conjunct.left, conjunct.right
        if (
            conjunct.op == ">="
            and isinstance(left, ColumnRef)
            and left.name == COUNT_COLUMN
        ):
            if isinstance(right, Literal) and isinstance(right.value, int):
                return right.value
            if isinstance(right, Parameter) and right.name in params:
                value = params[right.name]
                if isinstance(value, int):
                    return value
        return None

    # -- explain -----------------------------------------------------------------------

    def explain(self, params: Mapping[str, object] | None = None) -> str:
        """Execute-and-render the plan tree (plans are cheap; rendering
        after execution keeps one code path and real labels)."""
        self.execute(params or self._dummy_params())
        return "\n".join(self.root.render())

    def _dummy_params(self) -> dict[str, object]:
        names: set[str] = set()
        for conjunct in (*self.statement.where, *self.statement.having):
            for operand in (conjunct.left, conjunct.right):
                if isinstance(operand, Parameter):
                    names.add(operand.name)
        return {name: 0 for name in names}


def plan_select(
    statement: SelectStatement,
    catalog: Catalog,
    *,
    join_method: str = "auto",
) -> SelectPlan:
    """Build a :class:`SelectPlan` for ``statement`` over ``catalog``."""
    return SelectPlan(statement, catalog, join_method=join_method)
