"""Generation of the paper's SQL statements for any pattern length ``k``.

Sections 3.1 and 4.1 write their queries with ``...`` ellipses over the
``k`` item columns; this module expands them into concrete SQL text —
portable across the bundled engine and sqlite3 — so the mining loop of
:mod:`repro.core.setm_sql` can execute the *literal* formulation of the
paper at every iteration.

Naming: ``R'_k`` becomes ``RP{k}`` (SQL identifiers cannot carry primes),
``R_k`` → ``R{k}``, ``C_k`` → ``C{k}``; the count column is ``cnt``
(``count`` is reserved in many dialects).  Item columns are
``item1 .. itemk``; ``R1`` is a renamed copy of ``SALES`` so every
iteration sees the same uniform schema.
"""

from __future__ import annotations

__all__ = [
    "SQLNames",
    "create_c_table",
    "create_r_table",
    "create_sales_table",
    "insert_c1_query",
    "insert_ck_nested_loop_query",
    "insert_ck_query",
    "insert_r1_query",
    "insert_rk_filter_query",
    "insert_rk_prime_query",
    "item_columns",
]


class SQLNames:
    """Table-name scheme (override for concurrent runs in one database)."""

    sales = "SALES"

    @staticmethod
    def r(k: int) -> str:
        return f"R{k}"

    @staticmethod
    def r_prime(k: int) -> str:
        return f"RP{k}"

    @staticmethod
    def c(k: int) -> str:
        return f"C{k}"


def item_columns(k: int, *, prefix: str = "") -> list[str]:
    """``item1 .. itemk``, optionally qualified (``p.item1``)."""
    dotted = f"{prefix}." if prefix else ""
    return [f"{dotted}item{i}" for i in range(1, k + 1)]


def create_sales_table(item_type: str = "INTEGER") -> str:
    """DDL for ``SALES(trans_id, item)`` (Section 2's schema)."""
    return f"CREATE TABLE SALES (trans_id INTEGER, item {item_type})"


def create_r_table(k: int, item_type: str = "INTEGER", *, prime: bool = False) -> str:
    """DDL for ``R_k`` / ``R'_k``: ``(trans_id, item1, ..., itemk)``."""
    name = SQLNames.r_prime(k) if prime else SQLNames.r(k)
    columns = ", ".join(
        f"{column} {item_type}" for column in item_columns(k)
    )
    return f"CREATE TABLE {name} (trans_id INTEGER, {columns})"


def create_c_table(k: int, item_type: str = "INTEGER") -> str:
    """DDL for ``C_k``: ``(item1, ..., itemk, cnt)``."""
    columns = ", ".join(
        f"{column} {item_type}" for column in item_columns(k)
    )
    return f"CREATE TABLE {SQLNames.c(k)} ({columns}, cnt INTEGER)"


def insert_r1_query() -> str:
    """``R_1`` := ``SALES`` under the uniform ``item1`` column name."""
    return (
        f"INSERT INTO {SQLNames.r(1)} "
        "SELECT s.trans_id, s.item FROM SALES s"
    )


def insert_c1_query(*, filtered: bool = True) -> str:
    """The Section 3.1 ``C_1`` query (HAVING optional, per Figure 4)."""
    having = " HAVING COUNT(*) >= :minsupport" if filtered else ""
    return (
        f"INSERT INTO {SQLNames.c(1)} "
        f"SELECT r1.item1, COUNT(*) FROM {SQLNames.r(1)} r1 "
        f"GROUP BY r1.item1{having}"
    )


def insert_rk_prime_query(k: int) -> str:
    """The Section 4.1 merge-scan query: ``R'_k`` from ``R_{k-1}`` × SALES.

    .. code-block:: sql

        INSERT INTO R'_k
        SELECT p.trans_id, p.item1, ..., p.item{k-1}, q.item
        FROM R_{k-1} p, SALES q
        WHERE q.trans_id = p.trans_id AND q.item > p.item{k-1}
    """
    if k < 2:
        raise ValueError(f"R'_k exists for k >= 2, got {k}")
    carried = ", ".join(item_columns(k - 1, prefix="p"))
    return (
        f"INSERT INTO {SQLNames.r_prime(k)} "
        f"SELECT p.trans_id, {carried}, q.item "
        f"FROM {SQLNames.r(k - 1)} p, SALES q "
        f"WHERE q.trans_id = p.trans_id AND q.item > p.item{k - 1}"
    )


def insert_ck_query(k: int) -> str:
    """The Section 4.1 counting query: ``C_k`` from ``R'_k``.

    .. code-block:: sql

        INSERT INTO C_k
        SELECT p.item1, ..., p.itemk, COUNT(*)
        FROM R'_k p
        GROUP BY p.item1, ..., p.itemk
        HAVING COUNT(*) >= :minsupport
    """
    if k < 2:
        raise ValueError(f"the C_k query applies for k >= 2, got {k}")
    columns = ", ".join(item_columns(k, prefix="p"))
    return (
        f"INSERT INTO {SQLNames.c(k)} "
        f"SELECT {columns}, COUNT(*) "
        f"FROM {SQLNames.r_prime(k)} p "
        f"GROUP BY {columns} "
        f"HAVING COUNT(*) >= :minsupport"
    )


def insert_rk_filter_query(k: int) -> str:
    """The Section 4.1 filter query: ``R_k`` = supported rows of ``R'_k``.

    .. code-block:: sql

        INSERT INTO R_k
        SELECT p.trans_id, p.item1, ..., p.itemk
        FROM R'_k p, C_k q
        WHERE p.item1 = q.item1 AND ... AND p.itemk = q.itemk
        ORDER BY p.trans_id, p.item1, ..., p.itemk
    """
    if k < 2:
        raise ValueError(f"the R_k filter applies for k >= 2, got {k}")
    carried = ", ".join(item_columns(k, prefix="p"))
    conditions = " AND ".join(
        f"p.item{i} = q.item{i}" for i in range(1, k + 1)
    )
    return (
        f"INSERT INTO {SQLNames.r(k)} "
        f"SELECT p.trans_id, {carried} "
        f"FROM {SQLNames.r_prime(k)} p, {SQLNames.c(k)} q "
        f"WHERE {conditions} "
        f"ORDER BY p.trans_id, {carried}"
    )


def insert_ck_nested_loop_query(k: int) -> str:
    """The Section 3.1 query: ``C_k`` by joining ``C_{k-1}`` with ``SALES^k``.

    .. code-block:: sql

        INSERT INTO C_k
        SELECT r1.item, ..., rk.item, COUNT(*)
        FROM C_{k-1} c, SALES r1, ..., SALES rk
        WHERE r1.trans_id = ... = rk.trans_id
          AND r1.item = c.item1 AND ... AND r{k-1}.item = c.item{k-1}
          AND rk.item > r{k-1}.item
        GROUP BY r1.item, ..., rk.item
        HAVING COUNT(*) >= :minsupport

    The chained trans_id equality is expanded pairwise, as SQL requires.
    """
    if k < 2:
        raise ValueError(f"the nested-loop C_k query applies for k >= 2, got {k}")
    selected = ", ".join(f"r{i}.item" for i in range(1, k + 1))
    tables = ", ".join(
        [f"{SQLNames.c(k - 1)} c"]
        + [f"SALES r{i}" for i in range(1, k + 1)]
    )
    conditions = [
        f"r{i}.trans_id = r{i + 1}.trans_id" for i in range(1, k)
    ]
    conditions += [f"r{i}.item = c.item{i}" for i in range(1, k)]
    conditions.append(f"r{k}.item > r{k - 1}.item")
    group = ", ".join(f"r{i}.item" for i in range(1, k + 1))
    return (
        f"INSERT INTO {SQLNames.c(k)} "
        f"SELECT {selected}, COUNT(*) "
        f"FROM {tables} "
        f"WHERE {' AND '.join(conditions)} "
        f"GROUP BY {group} "
        f"HAVING COUNT(*) >= :minsupport"
    )
