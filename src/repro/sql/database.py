"""The SQL engine façade: parse, plan, execute.

:class:`SQLDatabase` is the "general query language" substrate the paper
argues mining should run on.  It executes the SQL subset over the
in-memory relational engine:

>>> db = SQLDatabase()
>>> db.execute("CREATE TABLE SALES (trans_id INTEGER, item TEXT)")
>>> db.execute("INSERT INTO SALES VALUES (10, 'A'), (10, 'B')")
2
>>> db.execute("SELECT item, COUNT(*) FROM SALES GROUP BY item").rows
[('A', 1), ('B', 1)]

Named parameters bind at execution: ``db.execute(sql, {"minsupport": 3})``
— the paper's ``:minsupport``.  ``explain()`` returns the physical plan as
text, which is how the tests assert that the Section 4.1 queries really do
get sort-merge joins and the Section 3.1 queries nested loops.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.transactions import TransactionDatabase
from repro.relational.catalog import Catalog
from repro.relational.expressions import Literal, Parameter
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.sql.ast_nodes import (
    CreateTable,
    DeleteFrom,
    DropTable,
    InsertSelect,
    InsertValues,
    SelectStatement,
    Statement,
)
from repro.sql.parser import parse_statement
from repro.sql.planner import plan_select

__all__ = ["SQLDatabase"]


class SQLDatabase:
    """An in-memory SQL database over :mod:`repro.relational`.

    Parameters
    ----------
    join_method:
        ``"auto"`` (default: merge join when an equi-predicate exists),
        ``"merge"`` (require it), or ``"nested"`` (force nested loops —
        used to realize the Section 3 strategy verbatim).
    """

    def __init__(self, *, join_method: str = "auto") -> None:
        self.catalog = Catalog()
        self.join_method = join_method

    # -- statement execution ---------------------------------------------------------

    def execute(
        self,
        sql: str | Statement,
        params: Mapping[str, object] | None = None,
    ) -> Relation | int | None:
        """Execute one statement.

        Returns a :class:`Relation` for SELECT, the inserted row count for
        INSERT, and ``None`` for DDL / DELETE.
        """
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(statement, SelectStatement):
            plan = plan_select(
                statement, self.catalog, join_method=self.join_method
            )
            return plan.execute(params)
        if isinstance(statement, InsertSelect):
            result = self.execute(statement.select, params)
            assert isinstance(result, Relation)
            target = self.catalog.get(statement.table)
            if len(result.schema) != len(target.schema):
                raise ValueError(
                    f"INSERT INTO {statement.table}: SELECT produces "
                    f"{len(result.schema)} columns, table has "
                    f"{len(target.schema)}"
                )
            target.extend(result.rows)
            return len(result.rows)
        if isinstance(statement, InsertValues):
            return self._insert_values(statement, params or {})
        if isinstance(statement, CreateTable):
            schema = Schema(
                [Column(name, type_) for name, type_ in statement.columns]
            )
            self.catalog.create(statement.table, schema)
            return None
        if isinstance(statement, DropTable):
            self.catalog.drop(statement.table, if_exists=statement.if_exists)
            return None
        if isinstance(statement, DeleteFrom):
            self.catalog.get(statement.table).rows.clear()
            return None
        raise TypeError(f"unsupported statement {statement!r}")

    def _insert_values(
        self, statement: InsertValues, params: Mapping[str, object]
    ) -> int:
        target = self.catalog.get(statement.table)
        for row in statement.rows:
            values = []
            for operand in row:
                if isinstance(operand, Literal):
                    values.append(operand.value)
                elif isinstance(operand, Parameter):
                    if operand.name not in params:
                        raise ValueError(f"unbound parameter :{operand.name}")
                    values.append(params[operand.name])
            target.append(tuple(values))
        return len(statement.rows)

    def explain(
        self, sql: str, params: Mapping[str, object] | None = None
    ) -> str:
        """Physical plan of a SELECT, as an indented operator tree."""
        statement = parse_statement(sql)
        if not isinstance(statement, SelectStatement):
            raise TypeError("explain() only applies to SELECT statements")
        plan = plan_select(
            statement, self.catalog, join_method=self.join_method
        )
        return plan.explain(params)

    # -- bulk helpers ------------------------------------------------------------------

    def create_table(self, name: str, columns: list[tuple[str, ColumnType]]):
        """Programmatic CREATE TABLE (no SQL round-trip)."""
        schema = Schema([Column(cname, ctype) for cname, ctype in columns])
        return self.catalog.create(name, schema)

    def insert_rows(self, table: str, rows: Iterable[tuple]) -> int:
        """Bulk insert pre-built tuples (validated against the schema)."""
        target = self.catalog.get(table)
        before = len(target)
        target.extend(rows)
        return len(target) - before

    def load_sales(
        self, database: TransactionDatabase, *, table: str = "SALES"
    ) -> int:
        """Materialize a transaction database as the ``SALES`` relation.

        The item column type is inferred (TEXT when any item is a string,
        INTEGER otherwise) so both the paper's lettered example and the
        integer-item generators load unchanged.
        """
        items = database.distinct_items()
        item_type = (
            ColumnType.TEXT
            if any(isinstance(item, str) for item in items)
            else ColumnType.INTEGER
        )
        self.create_table(
            table,
            [("trans_id", ColumnType.INTEGER), ("item", item_type)],
        )
        return self.insert_rows(table, database.sales_rows())
