"""Recursive-descent parser for the SQL subset.

Grammar (informally):

.. code-block:: text

    statement   := select | insert | create | drop | delete
    select      := SELECT [DISTINCT] item (',' item)*
                   FROM table_ref (',' table_ref)*
                   [WHERE comparison (AND comparison)*]
                   [GROUP BY column (',' column)*]
                   [HAVING comparison (AND comparison)*]
                   [ORDER BY column [ASC|DESC] (',' ...)*]
    item        := COUNT '(' '*' ')' [[AS] name] | column [[AS] name]
    column      := name | name '.' name
    table_ref   := name [[AS] name]
    comparison  := operand op operand         op in {=, <>, <, <=, >, >=}
    operand     := column | integer | string | ':'name | COUNT '(' '*' ')'
    insert      := INSERT INTO name (select | VALUES '(' ... ')' , ...)
    create      := CREATE TABLE name '(' name type (',' name type)* ')'
    drop        := DROP TABLE [IF EXISTS] name
    delete      := DELETE FROM name

``COUNT(*)`` is accepted as a HAVING operand (the paper's
``HAVING COUNT(*) >= :minsupport``); the planner resolves it against the
grouped row.  Errors carry line/column from the offending token.
"""

from __future__ import annotations

from repro.relational.expressions import ColumnRef, Comparison, Literal, Parameter
from repro.relational.schema import ColumnType
from repro.sql.ast_nodes import (
    CountStar,
    CreateTable,
    DeleteFrom,
    DropTable,
    InsertSelect,
    InsertValues,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = ["ParserError", "parse_statement", "parse_script"]

#: Marker used in HAVING comparisons for the COUNT(*) pseudo-column; the
#: planner recognizes this exact reference.
COUNT_STAR_REF = ColumnRef("count(*)", None)


class ParserError(Exception):
    """Syntax error with token position."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token utilities ------------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParserError:
        token = token or self._peek()
        return ParserError(f"{message} (got {token})")

    def _expect(self, type_: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if token.type is not type_ or (value is not None and token.value != value):
            expected = value or type_.value
            raise self._error(f"expected {expected}", token)
        return self._advance()

    def _accept(self, type_: TokenType, value: str | None = None) -> Token | None:
        token = self._peek()
        if token.type is type_ and (value is None or token.value == value):
            return self._advance()
        return None

    def _keyword(self, word: str) -> Token:
        return self._expect(TokenType.KEYWORD, word)

    def _accept_keyword(self, word: str) -> bool:
        return self._accept(TokenType.KEYWORD, word) is not None

    # -- statements -----------------------------------------------------------------

    def statement(self) -> Statement:
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            raise self._error("expected a statement keyword")
        if token.value == "SELECT":
            return self.select()
        if token.value == "INSERT":
            return self.insert()
        if token.value == "CREATE":
            return self.create()
        if token.value == "DROP":
            return self.drop()
        if token.value == "DELETE":
            return self.delete()
        raise self._error(f"unsupported statement {token.value}")

    def select(self) -> SelectStatement:
        self._keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self.select_item()]
        while self._accept(TokenType.COMMA):
            items.append(self.select_item())
        self._keyword("FROM")
        tables = [self.table_ref()]
        while self._accept(TokenType.COMMA):
            tables.append(self.table_ref())
        where: list[Comparison] = []
        if self._accept_keyword("WHERE"):
            where.append(self.comparison())
            while self._accept_keyword("AND"):
                where.append(self.comparison())
        group_by: list[ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._keyword("BY")
            group_by.append(self.column_ref())
            while self._accept(TokenType.COMMA):
                group_by.append(self.column_ref())
        having: list[Comparison] = []
        if self._accept_keyword("HAVING"):
            having.append(self.comparison())
            while self._accept_keyword("AND"):
                having.append(self.comparison())
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._keyword("BY")
            order_by.append(self.order_item())
            while self._accept(TokenType.COMMA):
                order_by.append(self.order_item())
        return SelectStatement(
            select_items=tuple(items),
            from_tables=tuple(tables),
            where=tuple(where),
            group_by=tuple(group_by),
            having=tuple(having),
            order_by=tuple(order_by),
            distinct=distinct,
        )

    def insert(self) -> InsertSelect | InsertValues:
        self._keyword("INSERT")
        self._keyword("INTO")
        table = self._expect(TokenType.IDENTIFIER).value
        if self._peek().type is TokenType.KEYWORD and self._peek().value == "VALUES":
            self._advance()
            rows = [self.value_row()]
            while self._accept(TokenType.COMMA):
                rows.append(self.value_row())
            return InsertValues(table=table, rows=tuple(rows))
        return InsertSelect(table=table, select=self.select())

    def value_row(self) -> tuple[Literal | Parameter, ...]:
        self._expect(TokenType.LPAREN)
        values = [self.constant()]
        while self._accept(TokenType.COMMA):
            values.append(self.constant())
        self._expect(TokenType.RPAREN)
        return tuple(values)

    def constant(self) -> Literal | Parameter:
        token = self._peek()
        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return Parameter(token.value)
        raise self._error("expected a constant")

    def create(self) -> CreateTable:
        self._keyword("CREATE")
        self._keyword("TABLE")
        table = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.LPAREN)
        columns = [self.column_def()]
        while self._accept(TokenType.COMMA):
            columns.append(self.column_def())
        self._expect(TokenType.RPAREN)
        return CreateTable(table=table, columns=tuple(columns))

    def column_def(self) -> tuple[str, ColumnType]:
        name = self._expect(TokenType.IDENTIFIER).value
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in (
            "INTEGER",
            "INT",
        ):
            self._advance()
            return (name, ColumnType.INTEGER)
        if token.type is TokenType.KEYWORD and token.value == "TEXT":
            self._advance()
            return (name, ColumnType.TEXT)
        raise self._error("expected a column type (INTEGER or TEXT)")

    def drop(self) -> DropTable:
        self._keyword("DROP")
        self._keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._keyword("EXISTS")
            if_exists = True
        table = self._expect(TokenType.IDENTIFIER).value
        return DropTable(table=table, if_exists=if_exists)

    def delete(self) -> DeleteFrom:
        self._keyword("DELETE")
        self._keyword("FROM")
        table = self._expect(TokenType.IDENTIFIER).value
        return DeleteFrom(table=table)

    # -- select components -------------------------------------------------------------

    def select_item(self) -> SelectItem:
        if self._accept(TokenType.STAR):
            return SelectItem(expression=Star())
        if self._peek().type is TokenType.KEYWORD and self._peek().value == "COUNT":
            expression: ColumnRef | CountStar | Star = self.count_star()
        elif (
            self._peek().type is TokenType.IDENTIFIER
            and self.tokens[self.pos + 1].type is TokenType.DOT
            and self.tokens[self.pos + 2].type is TokenType.STAR
        ):
            qualifier = self._advance().value
            self._advance()  # dot
            self._advance()  # star
            return SelectItem(expression=Star(qualifier))
        else:
            expression = self.column_ref()
        alias = self.optional_alias()
        return SelectItem(expression=expression, alias=alias)

    def count_star(self) -> CountStar:
        self._keyword("COUNT")
        self._expect(TokenType.LPAREN)
        self._expect(TokenType.STAR)
        self._expect(TokenType.RPAREN)
        return CountStar()

    def optional_alias(self) -> str | None:
        if self._accept_keyword("AS"):
            return self._expect(TokenType.IDENTIFIER).value
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._advance().value
        return None

    def table_ref(self) -> TableRef:
        table = self._expect(TokenType.IDENTIFIER).value
        alias = self.optional_alias()
        return TableRef(table=table, alias=alias)

    def column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.DOT):
            second = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(second, first)
        return ColumnRef(first, None)

    def order_item(self) -> OrderItem:
        column = self.column_ref()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(column=column, descending=descending)

    def comparison(self) -> Comparison:
        left = self.operand()
        op_token = self._expect(TokenType.OPERATOR)
        right = self.operand()
        return Comparison(op_token.value, left, right)

    def operand(self) -> ColumnRef | Literal | Parameter:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self.column_ref()
        if token.type is TokenType.KEYWORD and token.value == "COUNT":
            self.count_star()
            return COUNT_STAR_REF
        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return Parameter(token.value)
        raise self._error("expected a column, constant, or parameter")


def parse_statement(sql: str) -> Statement:
    """Parse one statement (an optional trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(sql))
    statement = parser.statement()
    parser._accept(TokenType.SEMICOLON)
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return statement


def parse_script(sql: str) -> list[Statement]:
    """Parse a ``;``-separated sequence of statements."""
    parser = _Parser(tokenize(sql))
    statements: list[Statement] = []
    while parser._peek().type is not TokenType.EOF:
        statements.append(parser.statement())
        if not parser._accept(TokenType.SEMICOLON):
            break
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return statements
