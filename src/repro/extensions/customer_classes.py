"""Customer-class mining — the extension the paper's conclusion announces.

    "We are investigating extending the algorithm in order to handle
    additional kinds of mining, e.g., relating association rules to
    customer classes."  (Section 7)

The set-oriented design makes this a small delta, which was the paper's
point: a customer class is one more column on ``SALES``; per-class mining
is the same loop over a selection.  This module provides:

* :class:`ClassifiedDatabase` — transactions plus a ``trans_id → class``
  assignment (the relational view being
  ``SALES(trans_id, item) ⋈ CUSTOMERS(trans_id, class)``);
* :func:`mine_per_class` — run SETM within each class;
* :func:`class_contrast_rules` — rules whose confidence within a class
  differs from their confidence in the full population by at least a
  margin: "customers with kids are more likely to buy cereal with
  baseball cards" (Section 1's motivating example) is exactly a positive
  contrast.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.result import MiningResult
from repro.core.rules import Rule, generate_rules
from repro.core.setm import setm
from repro.core.transactions import TransactionDatabase

__all__ = ["ClassContrast", "ClassifiedDatabase", "class_contrast_rules", "mine_per_class"]


class ClassifiedDatabase:
    """A transaction database with a class label per transaction."""

    def __init__(
        self,
        database: TransactionDatabase,
        classes: Mapping[int, str],
    ) -> None:
        missing = [
            txn.trans_id for txn in database if txn.trans_id not in classes
        ]
        if missing:
            raise ValueError(
                f"{len(missing)} transactions lack a class label "
                f"(first: {missing[0]!r})"
            )
        self.database = database
        self.classes = dict(classes)

    def class_labels(self) -> list[str]:
        """Distinct class labels, sorted."""
        return sorted(set(self.classes.values()))

    def restrict_to(self, label: str) -> TransactionDatabase:
        """The sub-database of transactions in class ``label``."""
        return TransactionDatabase(
            txn
            for txn in self.database
            if self.classes[txn.trans_id] == label
        )

    def class_sizes(self) -> dict[str, int]:
        sizes: dict[str, int] = {}
        for label in self.classes.values():
            sizes[label] = sizes.get(label, 0) + 1
        return sizes


def mine_per_class(
    classified: ClassifiedDatabase,
    minimum_support: float,
    *,
    max_length: int | None = None,
) -> dict[str, MiningResult]:
    """Run SETM independently inside every customer class.

    The minimum support is interpreted *within* each class (a fraction of
    that class's transactions), matching how a per-class analyst would set
    it.
    """
    return {
        label: setm(
            classified.restrict_to(label),
            minimum_support,
            max_length=max_length,
        )
        for label in classified.class_labels()
    }


@dataclass(frozen=True, slots=True)
class ClassContrast:
    """A rule whose confidence in one class deviates from the population."""

    class_label: str
    rule: Rule
    population_confidence: float | None

    @property
    def confidence_lift(self) -> float:
        """Class confidence relative to population confidence.

        ``inf`` when the population never satisfies the antecedent (the
        rule exists only inside the class).
        """
        if not self.population_confidence:
            return float("inf")
        return self.rule.confidence / self.population_confidence


def _population_confidence(
    population: MiningResult, rule: Rule
) -> float | None:
    pattern_count = population.support_count(rule.pattern)
    antecedent_count = population.support_count(rule.antecedent)
    if antecedent_count is None and len(rule.antecedent) == 1:
        antecedent_count = population.unfiltered_item_counts.get(
            rule.antecedent[0]
        )
    if pattern_count is None or not antecedent_count:
        return None
    return pattern_count / antecedent_count


def class_contrast_rules(
    classified: ClassifiedDatabase,
    minimum_support: float,
    minimum_confidence: float,
    *,
    min_lift: float = 1.25,
    max_length: int | None = None,
) -> list[ClassContrast]:
    """Rules that hold markedly more strongly within a class.

    A rule qualifies when its in-class confidence exceeds both the
    confidence threshold and ``min_lift ×`` its confidence in the whole
    population (rules absent from the population qualify by convention —
    their lift is infinite).

    Results are sorted by descending confidence lift, then class label.
    """
    population = setm(
        classified.database, minimum_support, max_length=max_length
    )
    contrasts: list[ClassContrast] = []
    for label, result in mine_per_class(
        classified, minimum_support, max_length=max_length
    ).items():
        for rule in generate_rules(result, minimum_confidence):
            base = _population_confidence(population, rule)
            contrast = ClassContrast(label, rule, base)
            if contrast.confidence_lift >= min_lift:
                contrasts.append(contrast)
    contrasts.sort(
        key=lambda c: (-c.confidence_lift, c.class_label, c.rule.antecedent)
    )
    return contrasts
