"""Extensions the paper proposes as future work (Section 7), plus
standard pattern-set condensations."""

from repro.extensions.customer_classes import (
    ClassContrast,
    ClassifiedDatabase,
    class_contrast_rules,
    mine_per_class,
)
from repro.extensions.multi_consequent import generate_multi_consequent_rules
from repro.extensions.summaries import (
    closed_patterns,
    maximal_patterns,
    summarize,
)

__all__ = [
    "ClassContrast",
    "ClassifiedDatabase",
    "class_contrast_rules",
    "closed_patterns",
    "generate_multi_consequent_rules",
    "maximal_patterns",
    "mine_per_class",
    "summarize",
]
