"""Multi-item-consequent rule generation (post-paper generalization).

Section 5 of the paper emits rules with a *single* item in the consequent
(as AIS did).  Apriori's "ap-genrules" generalized this to arbitrary
consequents: from a frequent pattern ``p``, every partition
``antecedent ∪ consequent = p`` with non-empty parts is a candidate rule,
and confidence is anti-monotone in the consequent — if
``A ⇒ BC`` fails the confidence bar then so does every rule moving more
items right.  This module implements that pruned enumeration on top of
any :class:`~repro.core.result.MiningResult`, so SETM's output plugs into
the richer rule space unchanged — a demonstration of the paper's "easy
extensibility" argument.
"""

from __future__ import annotations

from repro.core.result import MiningResult, Pattern
from repro.core.rules import Rule

__all__ = ["generate_multi_consequent_rules"]


def _support(result: MiningResult, pattern: Pattern) -> int | None:
    count = result.support_count(pattern)
    if count is None and len(pattern) == 1:
        count = result.unfiltered_item_counts.get(pattern[0])
    return count


def generate_multi_consequent_rules(
    result: MiningResult,
    minimum_confidence: float,
    *,
    max_consequent_size: int | None = None,
) -> list[Rule]:
    """All rules ``antecedent ⇒ consequent`` meeting the confidence bar.

    Implements ap-genrules: consequents grow level-wise and a consequent
    is extended only while its rule held, exploiting the anti-monotonicity
    ``conf(X\\Y ⇒ Y) >= conf(X\\Y' ⇒ Y')`` for ``Y ⊆ Y'``.

    Parameters
    ----------
    result:
        Frequent patterns from any algorithm in this package.
    minimum_confidence:
        Fractional confidence threshold in ``(0, 1]``.
    max_consequent_size:
        Optional cap (1 reproduces the paper's single-consequent rules).

    Returns
    -------
    list[Rule]
        Sorted by pattern length, antecedent, consequent.
    """
    if not 0.0 < minimum_confidence <= 1.0:
        raise ValueError(
            f"minimum_confidence must be in (0, 1], got {minimum_confidence!r}"
        )
    n = result.num_transactions
    rules: list[Rule] = []

    for k in sorted(result.count_relations):
        if k < 2:
            continue
        for pattern, pattern_count in result.count_relations[k].items():
            # Level-wise consequent growth with confidence pruning.
            cap = k - 1
            if max_consequent_size is not None:
                cap = min(cap, max_consequent_size)
            surviving: list[tuple] = [()]  # consequents that held so far
            for size in range(1, cap + 1):
                next_surviving: list[tuple] = []
                candidates = {
                    tuple(sorted(set(parent) | {item}))
                    for parent in surviving
                    for item in pattern
                    if item not in parent
                }
                for consequent in sorted(candidates):
                    if len(consequent) != size:
                        continue
                    antecedent = tuple(
                        item for item in pattern if item not in consequent
                    )
                    antecedent_count = _support(result, antecedent)
                    if not antecedent_count:
                        continue
                    confidence = pattern_count / antecedent_count
                    if confidence < minimum_confidence:
                        continue
                    consequent_count = _support(result, consequent)
                    lift = (
                        confidence / (consequent_count / n)
                        if consequent_count
                        else float("nan")
                    )
                    rules.append(
                        Rule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support_count=pattern_count,
                            support=pattern_count / n,
                            confidence=confidence,
                            lift=lift,
                        )
                    )
                    next_surviving.append(consequent)
                surviving = next_surviving
                if not surviving:
                    break
    rules.sort(
        key=lambda rule: (len(rule.pattern), rule.antecedent, rule.consequent)
    )
    return rules
