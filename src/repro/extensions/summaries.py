"""Pattern-set summaries: maximal and closed frequent itemsets.

SETM (like AIS and Apriori) reports *every* frequent pattern, and
Figure 6 shows how quickly that set grows at small minimum supports.
Two standard condensations — both later formalized by the
frequent-pattern literature — summarize the result losslessly or nearly
so:

* a frequent pattern is **maximal** when no frequent superset exists;
  the maximal family determines *which* patterns are frequent (but not
  their counts);
* a frequent pattern is **closed** when no superset has the same
  support; the closed family determines every pattern's exact count.

Both are post-processing over a :class:`~repro.core.result.MiningResult`,
so they compose with any engine in this package — one more instance of
the paper's "set-oriented results are easy to build on" argument.
"""

from __future__ import annotations

from repro.core.result import MiningResult, Pattern

__all__ = [
    "closed_patterns",
    "maximal_patterns",
    "summarize",
]


def maximal_patterns(result: MiningResult) -> dict[Pattern, int]:
    """The frequent patterns with no frequent strict superset."""
    all_patterns = result.all_patterns()
    by_length: dict[int, list[Pattern]] = {}
    for pattern in all_patterns:
        by_length.setdefault(len(pattern), []).append(pattern)

    maximal: dict[Pattern, int] = {}
    lengths = sorted(by_length, reverse=True)
    for length in lengths:
        longer = [
            set(candidate)
            for other_length in lengths
            if other_length > length
            for candidate in by_length[other_length]
        ]
        for pattern in by_length[length]:
            pattern_set = set(pattern)
            if not any(pattern_set < superset for superset in longer):
                maximal[pattern] = all_patterns[pattern]
    return maximal


def closed_patterns(result: MiningResult) -> dict[Pattern, int]:
    """The frequent patterns whose every strict superset has lower support."""
    all_patterns = result.all_patterns()
    closed: dict[Pattern, int] = {}
    for pattern, count in all_patterns.items():
        pattern_set = set(pattern)
        has_equal_superset = any(
            count == other_count and pattern_set < set(other)
            for other, other_count in all_patterns.items()
            if len(other) == len(pattern) + 1
        )
        if not has_equal_superset:
            closed[pattern] = count
    return closed


def summarize(result: MiningResult) -> dict[str, int]:
    """Pattern-set size report: all vs closed vs maximal cardinalities."""
    all_patterns = result.all_patterns()
    return {
        "frequent": len(all_patterns),
        "closed": len(closed_patterns(result)),
        "maximal": len(maximal_patterns(result)),
    }
