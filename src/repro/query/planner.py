"""Capability-driven lowering of a :class:`MineQuery` to a plan DAG.

The planner owns exactly one judgement call — *which engine runs the
mine* — and makes it from data, never from hard-coded names: it derives
capability **requirements** from the query and the dataset statistics,
then selects among :func:`repro.registry.engine_specs` by capability
flags.  Every input to the choice is recorded as a
:class:`~repro.query.plan.Decision` with a reason string, so ``EXPLAIN``
shows not just the winning engine but the full derivation:

* a configured ``state`` directory requires the ``incremental``
  capability (an existing :class:`~repro.core.incremental.MiningState`
  means the run counts only the appended delta);
* an estimated encoded footprint above ``memory_budget`` requires
  ``out_of_core`` (spill engines);
* ``workers >= 2`` requires ``parallel`` (checked against the host's
  CPU count, which callers may pin for deterministic plans);
* a targeted ``lhs HAS`` constraint is planned as a post-mine filter —
  no registered engine advertises selective generation, and the
  decision bullet says so, so the day one does the plan will change
  reviewably.

Requirements that no single engine satisfies together are relaxed
lowest-priority-first (``parallel`` before ``out_of_core`` before
``incremental``), each relaxation recorded; a requirement set that
cannot be satisfied at all is a typed :class:`~repro.errors.PlanError`.
Ties among capable engines break toward the fewest surplus
capabilities, then the columnar representation, then the name — fully
deterministic, so golden plans are reviewable diffs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.config import MiningConfig
from repro.errors import PlanError, StateError
from repro.query.ast_nodes import MineQuery
from repro.query.parser import parse_byte_size
from repro.query.plan import PlanNode, QueryPlan
from repro.registry import EngineSpec, engine_specs, find_engine

__all__ = ["DatasetStats", "dataset_stats", "plan_query"]

#: Modelled bytes per encoded SALES row: two int64 columns (trans_id
#: and dictionary-encoded item).  Deliberately simple — the estimate
#: only has to rank dataset size against the memory budget, and the
#: model is stated in every EXPLAIN so the operator can judge it.
BYTES_PER_ROW = 16

#: Default thresholds when the query leaves them out (the mine CLI's).
DEFAULT_SUPPORT = 0.01
DEFAULT_CONFIDENCE = 0.5

#: Capability relaxation order: the *last* entry is dropped first when
#: no registered engine carries the whole requirement set.
_CAPABILITY_PRIORITY = ("incremental", "out_of_core", "parallel")


@dataclass(frozen=True)
class DatasetStats:
    """What the planner knows about the dataset, and nothing more.

    Pure data, so plans are a function of ``(query, stats, cpu_count)``
    — the golden suite synthesizes these directly and never touches a
    real file or the host's CPU count.
    """

    name: str
    num_transactions: int
    num_sales_rows: int
    estimated_bytes: int
    streamed: bool = False
    generation: int | None = None
    #: Generation of a materialized MiningState found under the query's
    #: ``state`` directory; ``None`` when absent (or unreadable).
    state_generation: int | None = None


def dataset_stats(
    database,
    *,
    name: str = "dataset",
    state_dir: str | None = None,
) -> DatasetStats:
    """Measure ``database`` (a :class:`TransactionDatabase` or
    :class:`~repro.data.ingest.EncodedDataset`) into planner stats."""
    rows = database.num_sales_rows
    generation = getattr(database, "generation", None)
    state_generation = None
    if state_dir is not None:
        # Imported lazily: planning must not drag the incremental
        # engine in for queries that never mention state.
        from repro.core.incremental import MiningState

        try:
            state = MiningState.load(state_dir)
        except StateError:
            state = None  # unreadable state: plan as if absent
        if state is not None:
            state_generation = state.generation
    return DatasetStats(
        name=name,
        num_transactions=database.num_transactions,
        num_sales_rows=rows,
        estimated_bytes=rows * BYTES_PER_ROW,
        streamed=generation is not None,
        generation=generation,
        state_generation=state_generation,
    )


def _fmt_bytes(count: int) -> str:
    for unit, width in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if count >= width:
            value = count / width
            text = f"{value:.1f}".rstrip("0").rstrip(".")
            return f"{text} {unit}"
    return f"{count} B"


def _has_capability(spec: EngineSpec, capability: str) -> bool:
    return bool(getattr(spec, capability))


def _select_engine(
    required: list[str], node: PlanNode
) -> tuple[EngineSpec, tuple[str, ...]]:
    """The cheapest registered engine carrying every required capability.

    Relaxes the requirement set lowest-priority-first when it is
    unsatisfiable as a whole, recording each relaxation on ``node``.
    Returns the winning spec *and* the requirement set that survived
    relaxation (what the choice was actually made on).
    """
    specs = engine_specs()
    wanted = list(required)
    while True:
        candidates = [
            spec
            for spec in specs
            if all(_has_capability(spec, cap) for cap in wanted)
        ]
        if candidates:
            break
        droppable = [
            cap for cap in _CAPABILITY_PRIORITY if cap in wanted
        ]
        if not droppable:
            raise PlanError(
                "no registered engine satisfies the query requirements; "
                f"registry: {', '.join(spec.name for spec in specs)}"
            )
        dropped = droppable[-1]
        wanted.remove(dropped)
        node.decide(
            "capability",
            f"relaxed {dropped}",
            "no registered engine combines "
            f"{' + '.join(required)}; dropped the lowest-priority "
            f"requirement ({dropped})",
        )
    surplus = [
        cap for cap in _CAPABILITY_PRIORITY if cap not in wanted
    ]

    def rank(spec: EngineSpec) -> tuple:
        extras = sum(1 for cap in surplus if _has_capability(spec, cap))
        return (extras, spec.representation != "columnar", spec.name)

    return min(candidates, key=rank), tuple(wanted)


def plan_query(
    query: MineQuery,
    stats: DatasetStats,
    *,
    cpu_count: int | None = None,
) -> QueryPlan:
    """Lower ``query`` over ``stats`` to an executable :class:`QueryPlan`.

    ``cpu_count`` defaults to the host's (:func:`os.cpu_count`); tests
    and EXPLAIN golden files pin it for deterministic plans.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)

    scan = PlanNode("scan", stats.name)
    scan.props["transactions"] = stats.num_transactions
    scan.props["sales_rows"] = stats.num_sales_rows
    scan.props["estimated_size"] = (
        f"{_fmt_bytes(stats.estimated_bytes)} "
        f"({BYTES_PER_ROW} B/row encoded)"
    )
    if stats.streamed:
        scan.props["generation"] = stats.generation
    chunk_rows = query.option("chunk_rows")
    input_format = query.option("input_format")
    if chunk_rows is not None or input_format is not None:
        scan.props["ingest"] = (
            f"streamed (format = {input_format or 'auto'}, "
            f"chunk_rows = {chunk_rows if chunk_rows is not None else 'default'})"
        )
        scan.decide(
            "ingest",
            "streamed",
            "WITH chunk_rows/input_format requests the chunked "
            "out-of-core encode; peak ingest memory is O(chunk + catalog)",
        )
    else:
        scan.props["ingest"] = "whole-file"

    mine = PlanNode("mine", "", children=[scan])

    # -- capability requirements, each with its recorded reason ------------------
    required: list[str] = []
    state_dir = query.option("state")
    if state_dir is not None:
        required.append("incremental")
        if stats.state_generation is not None:
            mine.decide(
                "capability",
                "incremental",
                f"materialized MiningState (generation "
                f"{stats.state_generation}) found under {state_dir!r}: "
                "delta-only re-mine of the appended transactions",
            )
        else:
            mine.decide(
                "capability",
                "incremental",
                f"state directory {state_dir!r} holds no MiningState yet: "
                "this full mine will materialize one for later delta runs",
            )

    budget_raw = query.option("memory_budget")
    budget = parse_byte_size(budget_raw) if budget_raw is not None else None
    if budget is not None:
        if stats.estimated_bytes > budget:
            required.append("out_of_core")
            mine.decide(
                "capability",
                "out_of_core",
                f"estimated encoded footprint "
                f"{_fmt_bytes(stats.estimated_bytes)} exceeds the "
                f"{_fmt_bytes(budget)} memory_budget: intermediate "
                "relations must spill",
            )
        else:
            mine.decide(
                "capability",
                "in-memory",
                f"estimated encoded footprint "
                f"{_fmt_bytes(stats.estimated_bytes)} fits the "
                f"{_fmt_bytes(budget)} memory_budget: no spill engine "
                "needed",
            )

    workers = query.option("workers")
    if workers is not None and workers >= 2:
        required.append("parallel")
        mine.decide(
            "capability",
            "parallel",
            f"workers = {workers} requested (host reports {cpus} "
            "CPUs): partition-parallel counting",
        )
    elif workers == 1:
        mine.decide(
            "capability",
            "serial",
            "workers = 1 forces serial execution",
        )

    # -- engine choice ------------------------------------------------------------
    if query.engine is not None:
        spec = find_engine(query.engine)
        if spec is None:
            known = ", ".join(s.name for s in engine_specs())
            raise PlanError(
                f"USING ENGINE names unknown engine {query.engine!r}; "
                f"registered engines: {known}"
            )
        mine.decide(
            "engine",
            spec.name,
            "USING ENGINE overrides capability-based selection",
        )
        for cap in required:
            if not _has_capability(spec, cap):
                mine.decide(
                    "warning",
                    f"missing {cap}",
                    f"explicitly chosen engine {spec.name!r} lacks the "
                    f"{cap} capability the query's constraints call for",
                )
    else:
        spec, wanted = _select_engine(required, mine)
        satisfied = [
            cap
            for cap in _CAPABILITY_PRIORITY
            if _has_capability(spec, cap)
        ]
        mine.decide(
            "engine",
            spec.name,
            (
                "cheapest registered engine with "
                + " + ".join(
                    cap for cap in _CAPABILITY_PRIORITY if cap in wanted
                )
                if wanted
                else "no special capabilities required: fastest serial "
                "in-memory engine (columnar representation preferred)"
            )
            + (
                f" (capabilities: {', '.join(satisfied)})"
                if wanted and satisfied
                else ""
            ),
        )
    mine.label = spec.name

    # -- thresholds ---------------------------------------------------------------
    support = query.support
    if support is None:
        support = DEFAULT_SUPPORT
        mine.decide(
            "support",
            repr(DEFAULT_SUPPORT),
            "query has no support predicate: default minimum support",
        )
    threshold = MiningConfig(support=support).support_threshold(
        stats.num_transactions
    )
    mine.props["support"] = (
        f"{support!r} ({'absolute' if isinstance(support, int) else 'fraction'}"
        f" -> threshold {threshold} of {stats.num_transactions} transactions)"
    )

    confidence = query.confidence
    if query.target == "rules" and confidence is None:
        confidence = DEFAULT_CONFIDENCE

    # -- engine options, filtered by what the engine accepts ----------------------
    accepted = spec.accepted_options
    options: dict[str, object] = {}

    def offer(option: str, value: object, origin: str) -> None:
        if accepted is None or option in accepted:
            options[option] = value
        else:
            mine.decide(
                "option",
                f"dropped {option}",
                f"{origin}, but engine {spec.name!r} does not accept "
                f"{option!r}",
            )

    if workers is not None:
        offer("workers", workers, f"WITH workers = {workers}")
    if budget is not None:
        offer(
            "memory_budget_bytes",
            budget,
            f"WITH memory_budget = {budget_raw!r}",
        )
    transport = query.option("transport")
    if transport is not None:
        offer("transport", transport, f"WITH transport = {transport!r}")

    # -- length pushdown (capability-driven, like everything else) ----------------
    post_length: int | None = None
    max_length: int | None = None
    if query.length is not None:
        if spec.supports_max_length:
            max_length = query.length
            mine.decide(
                "length",
                f"pushdown <= {query.length}",
                f"engine {spec.name!r} honours max_length: the cap "
                "prunes candidate generation inside the mine",
            )
        else:
            post_length = query.length
            mine.decide(
                "length",
                f"post-filter <= {query.length}",
                f"engine {spec.name!r} does not honour max_length: "
                "patterns are trimmed after the mine",
            )
    if options:
        mine.props["options"] = ", ".join(
            f"{k} = {v!r}" for k, v in sorted(options.items())
        )

    config = MiningConfig(
        support=support,
        confidence=confidence,
        algorithm=spec.name,
        max_length=max_length,
        options=options,
        input_format=input_format,
        chunk_rows=chunk_rows,
        state_dir=state_dir,
    )

    # -- post-mine filter node -----------------------------------------------------
    post_filters = tuple((c.side, c.item) for c in query.has)
    tip: PlanNode = mine
    if post_filters or post_length is not None:
        label_parts = [f"{side} HAS {item!r}" for side, item in post_filters]
        if post_length is not None:
            label_parts.append(f"length <= {post_length}")
        filter_node = PlanNode(
            "filter", " AND ".join(label_parts), children=[mine]
        )
        for side, item in post_filters:
            filter_node.decide(
                "has",
                f"post-filter {side} HAS {item!r}",
                "no registered engine advertises selective generation "
                "for targeted item constraints; the full pattern set is "
                "mined once (and cached) and the constraint is applied "
                "to the output",
            )
        tip = filter_node

    # -- projection ----------------------------------------------------------------
    if query.target == "rules":
        project = PlanNode("project", "rules", children=[tip])
        project.props["confidence"] = (
            f"{confidence!r}"
            + (
                ""
                if query.confidence is not None
                else " (default: query has no confidence predicate)"
            )
        )
    else:
        project = PlanNode("project", "itemsets", children=[tip])

    return QueryPlan(
        query=query,
        root=project,
        engine=spec.name,
        config=config,
        post_filters=post_filters,
        post_length=post_length,
    )
