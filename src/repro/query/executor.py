"""Run a planned ``MINE`` query through the existing mining machinery.

The executor adds **no** mining code: the plan's
:class:`~repro.config.MiningConfig` goes through the same
:class:`~repro.miner.Miner` a direct caller would use, so query results
are byte-identical to direct runs (the query conformance tier holds
every registered engine to that).  What the executor owns is the thin
shell around the mine — resolving the ``FROM`` source, applying the
plan's post-mine filters (``HAS`` constraints, an un-pushed length
cap), and serializing through the serve layer's deterministic
payload builders.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.core.result import MiningResult
from repro.core.rules import Rule, generate_rules
from repro.errors import PlanError
from repro.miner import Miner
from repro.query.ast_nodes import MineQuery
from repro.query.parser import parse_query
from repro.query.plan import QueryPlan, render_plan
from repro.query.planner import dataset_stats, plan_query
from repro.serve.protocol import result_payload, rules_payload

__all__ = [
    "build_document",
    "explain_query",
    "plan_for",
    "resolve_database",
    "run_query",
]


def _match_item(label: object, item: str) -> bool:
    """Whether a pattern label matches a quoted query item.

    Queries spell items as strings; datasets may label them as ints
    (basket ids) or strings, so both the raw and stringified label
    match.
    """
    return label == item or str(label) == item


def resolve_database(
    query: MineQuery,
    source: object,
    *,
    loader: Callable[[str], object] | None = None,
) -> object:
    """The database the query's ``FROM`` addresses.

    ``source`` is either a mapping of hosted dataset names (the serve
    layer, the CLI's ``NAME=PATH`` arguments) or a database object used
    directly.  A quoted ``FROM 'path'`` needs a ``loader``; contexts
    without one (the server) reject paths with a typed error.
    """
    if query.dataset_is_path:
        if loader is None:
            raise PlanError(
                f"FROM {query.dataset!r} names a file path, but this "
                "context only serves hosted datasets; use a dataset name"
            )
        return loader(query.dataset)
    if isinstance(source, Mapping):
        database = source.get(query.dataset)
        if database is None:
            known = ", ".join(sorted(source)) or "(none)"
            raise PlanError(
                f"FROM names unknown dataset {query.dataset!r}; "
                f"available datasets: {known}"
            )
        return database
    return source


def plan_for(
    query: MineQuery,
    database: object,
    *,
    cpu_count: int | None = None,
) -> QueryPlan:
    """Plan ``query`` over a resolved ``database`` (stats measured here)."""
    stats = dataset_stats(
        database,
        name=query.dataset,
        state_dir=query.option("state"),
    )
    return plan_query(query, stats, cpu_count=cpu_count)


def _keep_pattern(
    plan: QueryPlan, pattern: tuple, *, sides: tuple[str, ...] = ("items",)
) -> bool:
    if plan.post_length is not None and len(pattern) > plan.post_length:
        return False
    for side, item in plan.post_filters:
        if side in sides and not any(
            _match_item(label, item) for label in pattern
        ):
            return False
    return True


def _keep_rule(plan: QueryPlan, rule: Rule) -> bool:
    if not _keep_pattern(plan, rule.pattern):
        return False
    for side, item in plan.post_filters:
        members = {
            "lhs": rule.antecedent,
            "rhs": rule.consequent,
            "items": rule.pattern,
        }[side]
        if not any(_match_item(label, item) for label in members):
            return False
    return True


def build_document(
    plan: QueryPlan,
    result: MiningResult,
    rules: list[Rule] | None,
) -> dict[str, Any]:
    """The deterministic response document for one executed plan.

    ``result`` serializes through the serve layer's
    :func:`~repro.serve.protocol.result_payload`, so an unfiltered query
    is byte-for-byte a direct run's serialization; post-mine filters
    trim the pattern/rule lists (and the pattern count) in place.
    """
    payload = result_payload(result)
    if plan.post_filters or plan.post_length is not None:
        payload["patterns"] = [
            entry
            for entry in payload["patterns"]
            if _keep_pattern(plan, tuple(entry["items"]))
        ]
        payload["num_patterns"] = len(payload["patterns"])
    document: dict[str, Any] = {
        "query": plan.query.render(),
        "engine": plan.engine,
        "result": payload,
        "rules": None,
    }
    if rules is not None:
        document["rules"] = rules_payload(
            rule for rule in rules if _keep_rule(plan, rule)
        )
    return document


def run_query(
    text: str,
    source: object,
    *,
    cpu_count: int | None = None,
    loader: Callable[[str], object] | None = None,
    miner: Miner | None = None,
) -> dict[str, Any]:
    """Parse, plan, and execute one ``MINE`` statement.

    Parameters
    ----------
    text:
        The query text.
    source:
        A database, or a mapping of dataset names to databases.
    cpu_count:
        Pin the CPU count the planner reasons about (tests).
    loader:
        Callable loading a quoted ``FROM 'path'``; omit to forbid paths.
    miner:
        Reuse an existing session (and its result cache) instead of
        building a fresh one over the resolved database.
    """
    query = parse_query(text)
    database = resolve_database(query, source, loader=loader)
    plan = plan_for(query, database, cpu_count=cpu_count)
    session = miner if miner is not None else Miner(database)
    result = session.frequent_itemsets(plan.config)
    rules = None
    if query.target == "rules":
        rules = generate_rules(result, plan.config.confidence)
    return build_document(plan, result, rules)


def explain_query(
    text: str,
    source: object,
    *,
    cpu_count: int | None = None,
    loader: Callable[[str], object] | None = None,
) -> str:
    """The rendered plan for ``text`` — nothing is mined."""
    query = parse_query(text)
    database = resolve_database(query, source, loader=loader)
    return render_plan(plan_for(query, database, cpu_count=cpu_count))
