"""The plan DAG: typed nodes, recorded decisions, and the EXPLAIN renderer.

A plan is a linear DAG of four node kinds — ``scan`` (read/ingest the
dataset), ``mine`` (run an engine), ``filter`` (post-mine predicates),
``project`` (shape the output: itemsets or rules) — each carrying the
properties the executor needs plus the :class:`Decision` list that says
*why* the planner shaped it that way.  ``EXPLAIN`` is nothing but
:func:`render_plan` over this structure: deterministic text, one line
per property, one ``·`` bullet per decision, so the golden suite can
pin planner behaviour reviewably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import MiningConfig
    from repro.query.ast_nodes import MineQuery

__all__ = ["Decision", "PlanNode", "QueryPlan", "render_plan"]


@dataclass(frozen=True)
class Decision:
    """One recorded planner choice: what was decided, and why."""

    topic: str
    choice: str
    reason: str

    def render(self) -> str:
        return f"{self.topic}: {self.choice} — {self.reason}"


@dataclass
class PlanNode:
    """One node of the plan DAG.

    ``props`` is insertion-ordered and rendered verbatim, so planners
    must emit deterministic values (no timings, no host paths unless
    the user supplied them).
    """

    kind: str  # "scan" | "mine" | "filter" | "project"
    label: str
    props: dict[str, Any] = field(default_factory=dict)
    decisions: list[Decision] = field(default_factory=list)
    children: list["PlanNode"] = field(default_factory=list)

    def decide(self, topic: str, choice: str, reason: str) -> Decision:
        decision = Decision(topic, choice, reason)
        self.decisions.append(decision)
        return decision


@dataclass
class QueryPlan:
    """A planned query: the DAG plus the resolved execution parameters.

    Attributes
    ----------
    query:
        The AST the plan was lowered from.
    root:
        Top of the DAG (the project node; children lead to the scan).
    engine:
        The chosen engine name (also recorded on the mine node).
    config:
        The exact :class:`~repro.config.MiningConfig` the executor hands
        to :class:`~repro.miner.Miner` — byte-identity with a direct
        run of this config is the executor's contract.
    post_filters:
        ``(side, item)`` HAS constraints applied after mining.
    post_length:
        A length cap the engine could not push down (``None`` when
        pushed down or absent).
    """

    query: "MineQuery"
    root: PlanNode
    engine: str
    config: "MiningConfig"
    post_filters: tuple[tuple[str, str], ...] = ()
    post_length: int | None = None

    def nodes(self) -> list[PlanNode]:
        """Every node, root first."""
        out: list[PlanNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def find(self, kind: str) -> PlanNode:
        for node in self.nodes():
            if node.kind == kind:
                return node
        raise KeyError(kind)

    def decisions(self) -> list[Decision]:
        """Every recorded decision, in render order."""
        return [d for node in self.nodes() for d in node.decisions]


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, str):
        return value
    return repr(value)


def render_plan(plan: QueryPlan) -> str:
    """The deterministic ``EXPLAIN`` text for ``plan``.

    Layout: the canonical query first, then one indented block per
    node — ``kind: label``, its properties as ``key = value`` lines,
    its decisions as ``· topic: choice — reason`` bullets — children
    indented one step further.
    """
    lines = [plan.query.render()]

    def walk(node: PlanNode, depth: int) -> None:
        pad = "  " * depth
        lines.append(f"{pad}{node.kind}: {node.label}")
        for key, value in node.props.items():
            lines.append(f"{pad}    {key} = {_render_value(value)}")
        for decision in node.decisions:
            lines.append(f"{pad}    · {decision.render()}")
        for child in node.children:
            walk(child, depth + 1)

    walk(plan.root, 0)
    return "\n".join(lines)
