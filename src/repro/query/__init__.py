"""The ``MINE`` query front-end: parser → plan DAG → executor.

One declarative surface over every registered engine::

    from repro.query import run_query

    document = run_query(
        "MINE RULES FROM sales WHERE support >= 0.005 "
        "AND confidence >= 0.6 AND lhs HAS 'beer'",
        {"sales": database},
    )

The pipeline stages are importable separately — :func:`parse_query`
(text → typed AST), :func:`plan_query` (AST + dataset stats → plan DAG
with recorded decisions), :func:`render_plan` (``EXPLAIN``), and
:func:`run_query`/:func:`explain_query` tying them together.  Errors
are typed: :class:`~repro.errors.QueryParseError` with token positions
from the parser, :class:`~repro.errors.PlanError` from the planner.
"""

from repro.query.ast_nodes import HasConstraint, MineQuery, WithOption
from repro.query.executor import (
    build_document,
    explain_query,
    plan_for,
    resolve_database,
    run_query,
)
from repro.query.parser import parse_byte_size, parse_query
from repro.query.plan import Decision, PlanNode, QueryPlan, render_plan
from repro.query.planner import DatasetStats, dataset_stats, plan_query

__all__ = [
    "DatasetStats",
    "Decision",
    "HasConstraint",
    "MineQuery",
    "PlanNode",
    "QueryPlan",
    "WithOption",
    "build_document",
    "dataset_stats",
    "explain_query",
    "parse_byte_size",
    "parse_query",
    "plan_for",
    "plan_query",
    "render_plan",
    "resolve_database",
    "run_query",
]
