"""Tokenizer for the ``MINE`` dialect.

A hand-rolled single-pass lexer, like :mod:`repro.sql.lexer` but for the
much smaller mining grammar.  Token kinds: keywords (case-insensitive),
identifiers, numbers (integer or decimal, optional exponent),
single-quoted strings (with ``''`` escaping), comparison operators,
comma, and EOF.  Every token carries its 0-based character offset plus
1-based line/column, and every failure raises the typed
:class:`~repro.errors.QueryParseError` carrying that position — the
grammar fuzzer holds the whole front-end to "typed error or parse,
never a bare exception".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import QueryParseError

__all__ = ["KEYWORDS", "Token", "TokenType", "tokenize"]


class TokenType(Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"  # >= <= > < =
    COMMA = "COMMA"
    EOF = "EOF"


#: Reserved words (matched case-insensitively, normalized to upper).
KEYWORDS = frozenset(
    {
        "MINE",
        "RULES",
        "ITEMSETS",
        "FROM",
        "WHERE",
        "AND",
        "HAS",
        "USING",
        "ENGINE",
        "WITH",
    }
)

_OPERATORS = (">=", "<=", ">", "<", "=")


@dataclass(frozen=True)
class Token:
    """One lexeme with its position in the query text.

    ``value`` is the normalized payload: the upper-cased keyword, the
    identifier verbatim, the decoded string body (``''`` collapsed), the
    operator text, or the ``int``/``float`` a NUMBER parsed to.
    ``text`` is the raw source slice, kept for error messages.
    """

    type: TokenType
    value: object
    text: str
    position: int
    line: int
    column: int

    def display(self) -> str:
        """How errors name this token: ``'WHERE'`` or ``end of query``."""
        if self.type is TokenType.EOF:
            return "end of query"
        return repr(self.text)


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


def tokenize(text: str) -> list[Token]:
    """The token list for ``text``, ending with EOF.

    Raises
    ------
    QueryParseError
        On any character the grammar has no use for, or an unterminated
        string literal — always with the offending position.
    """
    if not isinstance(text, str):
        raise QueryParseError(
            f"query must be a string; got {type(text).__name__}"
        )
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(text)

    def error(message: str, at: int, at_line: int, at_col: int) -> None:
        raise QueryParseError(
            message,
            position=at,
            line=at_line,
            column=at_col,
            found=repr(text[at : at + 1]) if at < n else "end of query",
        )

    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        start, start_line, start_col = i, line, col
        if ch == "'":
            # Single-quoted string; '' escapes a quote, as in SQL.
            i += 1
            body: list[str] = []
            while True:
                if i >= n:
                    error(
                        "unterminated string literal",
                        start,
                        start_line,
                        start_col,
                    )
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        body.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                if text[i] == "\n":
                    line += 1
                body.append(text[i])
                i += 1
            raw = text[start:i]
            col = start_col + (i - start) if "\n" not in raw else 1
            tokens.append(
                Token(
                    TokenType.STRING,
                    "".join(body),
                    raw,
                    start,
                    start_line,
                    start_col,
                )
            )
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    # Exponent only if digits follow (optionally signed).
                    k = j + 1
                    if k < n and text[k] in "+-":
                        k += 1
                    if k < n and text[k].isdigit():
                        seen_exp = True
                        j = k
                    else:
                        break
                else:
                    break
            raw = text[i:j]
            try:
                value: object = (
                    float(raw) if (seen_dot or seen_exp) else int(raw)
                )
            except ValueError:  # pragma: no cover - defensive
                error(f"malformed number {raw!r}", start, start_line, start_col)
            tokens.append(
                Token(
                    TokenType.NUMBER, value, raw, start, start_line, start_col
                )
            )
            col += j - i
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            raw = text[i:j]
            upper = raw.upper()
            if upper in KEYWORDS:
                tokens.append(
                    Token(
                        TokenType.KEYWORD,
                        upper,
                        raw,
                        start,
                        start_line,
                        start_col,
                    )
                )
            else:
                tokens.append(
                    Token(
                        TokenType.IDENTIFIER,
                        raw,
                        raw,
                        start,
                        start_line,
                        start_col,
                    )
                )
            col += j - i
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(
                    Token(
                        TokenType.OPERATOR, op, op, start, start_line, start_col
                    )
                )
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch == ",":
            tokens.append(
                Token(TokenType.COMMA, ",", ",", start, start_line, start_col)
            )
            i += 1
            col += 1
            continue
        error(
            f"unexpected character {ch!r} in MINE query",
            start,
            start_line,
            start_col,
        )
    tokens.append(Token(TokenType.EOF, None, "", n, line, col))
    return tokens
