"""Recursive-descent parser for the ``MINE`` dialect.

Grammar (EBNF)::

    query      = "MINE" ( "RULES" | "ITEMSETS" ) "FROM" source
                 [ "WHERE" predicate { "AND" predicate } ]
                 [ "USING" "ENGINE" string ]
                 [ "WITH" assignment { "," assignment } ] ;
    source     = identifier | string ;             (* name | file path *)
    predicate  = "support"    ">=" number
               | "confidence" ">=" number
               | "length"     "<=" integer
               | ( "lhs" | "rhs" | "items" ) "HAS" string ;
    assignment = identifier "=" ( number | string ) ;

``WITH`` assignments are whitelisted and value-checked here — a typo or
a malformed byte size fails at *parse* time with the token's position,
never inside the planner or an engine.  Semantic rules the grammar
cannot express (``lhs``/``rhs``/``confidence`` only on ``RULES``
queries, no duplicate thresholds) are enforced the same way: every
failure is a typed :class:`~repro.errors.QueryParseError`.
"""

from __future__ import annotations

from repro.config import INPUT_FORMATS
from repro.errors import QueryParseError
from repro.query.ast_nodes import (
    HAS_SIDES,
    HasConstraint,
    MineQuery,
    WithOption,
)
from repro.query.lexer import Token, TokenType, tokenize

__all__ = ["WITH_OPTIONS", "parse_byte_size", "parse_query"]

#: Transports the parallel engines understand (mirrors the CLI choices).
_TRANSPORTS = ("auto", "pickle", "shm", "mmap")

#: WHERE fields carrying a threshold, with the one comparison each allows
#: (support/confidence are lower bounds, length is an upper bound).
_THRESHOLD_FIELDS = {"support": ">=", "confidence": ">=", "length": "<="}


def parse_byte_size(value: object) -> int | None:
    """``value`` as a byte count: an int, or ``'64K'``/``'2M'``/``'1G'``.

    Returns ``None`` when the value does not parse (callers turn that
    into a positioned error); never raises.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value if value >= 1 else None
    if not isinstance(value, str) or not value.strip():
        return None
    units = {"K": 2**10, "M": 2**20, "G": 2**30}
    raw = value.strip()
    multiplier = 1
    if raw[-1].upper() in units:
        multiplier = units[raw[-1].upper()]
        raw = raw[:-1]
    if not raw.isdigit():
        return None
    parsed = int(raw) * multiplier
    return parsed if parsed >= 1 else None


def _positive_int(value: object) -> bool:
    return (
        not isinstance(value, bool)
        and isinstance(value, int)
        and value >= 1
    )


#: The WITH whitelist: option name -> (validator, requirement text).
WITH_OPTIONS: dict[str, tuple] = {
    "workers": (_positive_int, "an integer >= 1"),
    "memory_budget": (
        lambda v: parse_byte_size(v) is not None,
        "a positive byte count, optionally suffixed K/M/G (e.g. '2M')",
    ),
    "transport": (
        lambda v: v in _TRANSPORTS,
        f"one of {', '.join(_TRANSPORTS)}",
    ),
    "chunk_rows": (_positive_int, "an integer >= 1"),
    "input_format": (
        lambda v: v in INPUT_FORMATS,
        f"one of {', '.join(INPUT_FORMATS)}",
    ),
    "state": (
        lambda v: isinstance(v, str) and bool(v),
        "a non-empty directory path string",
    ),
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token plumbing -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def error(self, message: str, token: Token | None = None) -> None:
        token = token if token is not None else self.current
        raise QueryParseError(
            f"{message}, found {token.display()}",
            position=token.position,
            line=token.line,
            column=token.column,
            found=token.display(),
        )

    def expect_keyword(self, word: str) -> Token:
        token = self.current
        if token.type is TokenType.KEYWORD and token.value == word:
            return self.advance()
        self.error(f"expected {word}")

    def at_keyword(self, word: str) -> bool:
        token = self.current
        return token.type is TokenType.KEYWORD and token.value == word

    def expect(self, type_: TokenType, what: str) -> Token:
        if self.current.type is type_:
            return self.advance()
        self.error(f"expected {what}")

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> MineQuery:
        self.expect_keyword("MINE")
        if self.at_keyword("RULES"):
            target = "rules"
        elif self.at_keyword("ITEMSETS"):
            target = "itemsets"
        else:
            self.error("expected RULES or ITEMSETS after MINE")
        self.advance()
        self.expect_keyword("FROM")
        source = self.current
        if source.type is TokenType.IDENTIFIER:
            dataset, is_path = str(source.value), False
        elif source.type is TokenType.STRING:
            dataset, is_path = str(source.value), True
            if not dataset:
                self.error("FROM path must not be empty", source)
        else:
            self.error("expected a dataset name or quoted path after FROM")
        self.advance()

        support: float | int | None = None
        confidence: float | None = None
        length: int | None = None
        has: list[HasConstraint] = []
        if self.at_keyword("WHERE"):
            self.advance()
            while True:
                support, confidence, length = self._predicate(
                    target, support, confidence, length, has
                )
                if self.at_keyword("AND"):
                    self.advance()
                    continue
                break

        engine: str | None = None
        if self.at_keyword("USING"):
            self.advance()
            self.expect_keyword("ENGINE")
            token = self.expect(
                TokenType.STRING, "a quoted engine name after USING ENGINE"
            )
            if not token.value:
                self.error("engine name must not be empty", token)
            engine = str(token.value)

        with_options: list[WithOption] = []
        if self.at_keyword("WITH"):
            self.advance()
            while True:
                with_options.append(self._assignment(with_options))
                if self.current.type is TokenType.COMMA:
                    self.advance()
                    continue
                break

        if self.current.type is not TokenType.EOF:
            self.error("expected end of query")
        return MineQuery(
            target=target,
            dataset=dataset,
            dataset_is_path=is_path,
            support=support,
            confidence=confidence,
            length=length,
            has=tuple(has),
            engine=engine,
            with_options=tuple(with_options),
        )

    def _predicate(
        self,
        target: str,
        support: float | int | None,
        confidence: float | None,
        length: int | None,
        has: list[HasConstraint],
    ) -> tuple[float | int | None, float | None, int | None]:
        field_token = self.current
        if field_token.type is not TokenType.IDENTIFIER:
            self.error(
                "expected a predicate field "
                "(support, confidence, length, lhs, rhs, items)"
            )
        name = str(field_token.value).lower()
        self.advance()
        if name in _THRESHOLD_FIELDS:
            op = _THRESHOLD_FIELDS[name]
            op_token = self.current
            if (
                op_token.type is not TokenType.OPERATOR
                or op_token.value != op
            ):
                self.error(f"{name} takes only {op!r}")
            self.advance()
            value_token = self.expect(TokenType.NUMBER, f"a number for {name}")
            value = value_token.value
            if name == "support":
                if support is not None:
                    self.error("duplicate support predicate", field_token)
                if isinstance(value, int):
                    if value < 1:
                        self.error(
                            "absolute support must be >= 1 transaction",
                            value_token,
                        )
                elif not 0.0 < value <= 1.0:
                    self.error(
                        "fractional support must be in (0, 1]", value_token
                    )
                return value, confidence, length
            if name == "confidence":
                if confidence is not None:
                    self.error("duplicate confidence predicate", field_token)
                if target != "rules":
                    self.error(
                        "confidence applies only to MINE RULES", field_token
                    )
                if not 0.0 < float(value) <= 1.0:
                    self.error(
                        "confidence must be in (0, 1]", value_token
                    )
                return support, float(value), length
            if length is not None:
                self.error("duplicate length predicate", field_token)
            if not _positive_int(value):
                self.error("length cap must be an integer >= 1", value_token)
            return support, confidence, value
        if name in HAS_SIDES:
            self.expect_keyword("HAS")
            item_token = self.expect(
                TokenType.STRING, f"a quoted item after {name} HAS"
            )
            if not item_token.value:
                self.error("HAS item must not be empty", item_token)
            if name in ("lhs", "rhs") and target != "rules":
                self.error(
                    f"{name} HAS applies only to MINE RULES "
                    "(use items HAS for itemsets)",
                    field_token,
                )
            has.append(HasConstraint(name, str(item_token.value)))
            return support, confidence, length
        self.error(
            f"unknown predicate field {name!r} "
            "(expected support, confidence, length, lhs, rhs, or items)",
            field_token,
        )

    def _assignment(self, seen: list[WithOption]) -> WithOption:
        name_token = self.current
        if name_token.type is not TokenType.IDENTIFIER:
            self.error("expected a WITH option name")
        name = str(name_token.value).lower()
        if name not in WITH_OPTIONS:
            self.error(
                f"unknown WITH option {name!r} "
                f"(accepted: {', '.join(sorted(WITH_OPTIONS))})",
                name_token,
            )
        if any(opt.name == name for opt in seen):
            self.error(f"duplicate WITH option {name!r}", name_token)
        self.advance()
        eq = self.current
        if eq.type is not TokenType.OPERATOR or eq.value != "=":
            self.error(f"expected '=' after WITH option {name}")
        self.advance()
        value_token = self.current
        if value_token.type not in (TokenType.NUMBER, TokenType.STRING):
            self.error(f"expected a number or quoted string for {name}")
        self.advance()
        validator, requirement = WITH_OPTIONS[name]
        if not validator(value_token.value):
            self.error(f"{name} must be {requirement}", value_token)
        return WithOption(name, value_token.value)


def parse_query(text: str) -> MineQuery:
    """Parse one ``MINE`` statement into a :class:`MineQuery`.

    Raises
    ------
    QueryParseError
        On any lexical, syntactic, or semantic problem — always carrying
        the offending position (``position``/``line``/``column``).
    """
    return _Parser(text).parse()
