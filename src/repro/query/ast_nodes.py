"""The typed AST of one ``MINE`` query, plus its canonical rendering.

:class:`MineQuery` is what the parser produces and the planner consumes:
frozen, hashable, and *renderable* — :meth:`MineQuery.render` emits the
canonical query text, and parsing that text yields an equal AST (the
grammar-fuzz tier pins ``parse(ast.render()) == ast`` across generated
ASTs).  Predicates are normalized into scalar fields (``support``,
``confidence``, ``length``) plus the ordered ``has`` constraints, so two
spellings of the same query compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HasConstraint",
    "MineQuery",
    "WithOption",
    "is_identifier",
    "quote",
]

#: Sides a HAS constraint may address.  ``lhs``/``rhs`` constrain rule
#: antecedents/consequents (RULES queries only); ``items`` constrains
#: the mined itemsets themselves and is legal on both targets.
HAS_SIDES = ("lhs", "rhs", "items")


def is_identifier(text: str) -> bool:
    """Whether ``text`` lexes as a single bare identifier."""
    if not text or not (text[0].isalpha() or text[0] == "_"):
        return False
    if text.upper() in _RESERVED:
        return False
    return all(ch.isalnum() or ch in "_-." for ch in text)


#: Imported lazily at module bottom to avoid a cycle with the lexer.
_RESERVED: frozenset[str] = frozenset()


def quote(text: str) -> str:
    """``text`` as a single-quoted literal with ``''`` escaping."""
    return "'" + text.replace("'", "''") + "'"


@dataclass(frozen=True)
class HasConstraint:
    """One ``<side> HAS '<item>'`` predicate."""

    side: str  # "lhs" | "rhs" | "items"
    item: str

    def render(self) -> str:
        return f"{self.side} HAS {quote(self.item)}"


@dataclass(frozen=True)
class WithOption:
    """One ``name = value`` assignment of the ``WITH`` clause.

    ``value`` is kept as written — an ``int``, ``float``, or the string
    body of a quoted literal (byte-size strings like ``'2M'`` are
    normalized by the *planner*, not here, so rendering round-trips).
    """

    name: str
    value: object

    def render(self) -> str:
        if isinstance(value := self.value, str):
            return f"{self.name} = {quote(value)}"
        return f"{self.name} = {value!r}"


@dataclass(frozen=True)
class MineQuery:
    """One parsed ``MINE`` statement.

    Attributes
    ----------
    target:
        ``"rules"`` or ``"itemsets"``.
    dataset:
        The ``FROM`` operand: a hosted dataset name (bare identifier)
        or, when ``dataset_is_path``, a quoted filesystem path.
    support, confidence:
        The ``support >= x`` / ``confidence >= x`` thresholds, or
        ``None`` when the query leaves them to the defaults.
    length:
        The ``length <= n`` cap, or ``None`` for unbounded.
    has:
        ``HAS`` constraints in query order.
    engine:
        The ``USING ENGINE '<name>'`` override, or ``None`` to let the
        planner choose.
    with_options:
        ``WITH`` assignments in query order.
    """

    target: str
    dataset: str
    dataset_is_path: bool = False
    support: float | int | None = None
    confidence: float | None = None
    length: int | None = None
    has: tuple[HasConstraint, ...] = ()
    engine: str | None = None
    with_options: tuple[WithOption, ...] = field(default=())

    def option(self, name: str) -> object | None:
        """The value of WITH option ``name``, or ``None``."""
        for opt in self.with_options:
            if opt.name == name:
                return opt.value
        return None

    def render(self) -> str:
        """The canonical query text; ``parse(q.render()) == q``."""
        parts = [f"MINE {self.target.upper()} FROM "]
        parts.append(
            quote(self.dataset) if self.dataset_is_path else self.dataset
        )
        predicates: list[str] = []
        if self.support is not None:
            predicates.append(f"support >= {self.support!r}")
        if self.confidence is not None:
            predicates.append(f"confidence >= {self.confidence!r}")
        for constraint in self.has:
            predicates.append(constraint.render())
        if self.length is not None:
            predicates.append(f"length <= {self.length!r}")
        if predicates:
            parts.append(" WHERE " + " AND ".join(predicates))
        if self.engine is not None:
            parts.append(f" USING ENGINE {quote(self.engine)}")
        if self.with_options:
            parts.append(
                " WITH "
                + ", ".join(opt.render() for opt in self.with_options)
            )
        return "".join(parts)


def _load_reserved() -> None:
    global _RESERVED
    from repro.query.lexer import KEYWORDS

    _RESERVED = KEYWORDS


_load_reserved()
