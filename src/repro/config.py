"""Typed, validated mining-run configuration.

:class:`MiningConfig` is the one value object a mining request needs.
It is frozen (safe to share, safe to cache against), validates itself on
construction, and carries:

* ``support`` — **either** a fraction in ``(0, 1]`` (a ``float``, as in
  the paper's "minimum support of 30%") **or** an absolute transaction
  count (an ``int >= 1``, "at least 3 transactions");
* ``confidence`` — optional fractional confidence in ``(0, 1]`` for rule
  generation;
* ``algorithm`` — a registry name (see :mod:`repro.registry`);
* ``max_length`` — optional cap on pattern length;
* ``options`` — engine options, either plain (``{"buffer_pages": 128}``,
  ``{"workers": 4}``) or namespaced per engine
  (``{"setm-disk.buffer_pages": 128}``, ``{"setm-parallel.workers": 4}``).
  Namespaced options are only handed to the engine they name, so one
  config can be replayed across engines without tripping option checks.

>>> from repro.config import MiningConfig
>>> config = MiningConfig(support=0.30, confidence=0.70)
>>> config.replace(algorithm="apriori").algorithm
'apriori'
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import InvalidConfigError, InvalidSupportError

__all__ = ["INPUT_FORMATS", "MiningConfig"]

#: Valid ``input_format`` values: ``"auto"`` sniffs magic bytes and the
#: file extension; the rest name a decoder in :mod:`repro.data.formats`.
INPUT_FORMATS = ("auto", "csv", "basket", "parquet", "arrow")


def _validate_support(value: object) -> None:
    """A fraction in ``(0, 1]`` or an absolute count ``>= 1``."""
    requirement = "a fraction in (0, 1] or an absolute count >= 1"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidSupportError("minimum_support", value, requirement)
    if isinstance(value, int):
        if value < 1:
            raise InvalidSupportError("minimum_support", value, requirement)
    elif not 0.0 < value <= 1.0 or math.isnan(value):
        raise InvalidSupportError("minimum_support", value, requirement)


def _validate_confidence(value: object) -> None:
    requirement = "a fraction in (0, 1]"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidSupportError("minimum_confidence", value, requirement)
    if not 0.0 < float(value) <= 1.0 or math.isnan(float(value)):
        raise InvalidSupportError("minimum_confidence", value, requirement)


def _validate_option_key(key: object) -> None:
    if not isinstance(key, str) or not key:
        raise InvalidConfigError(f"option names must be strings; got {key!r}")
    engine, dot, option = key.rpartition(".")
    if dot and (not engine or not option):
        raise InvalidConfigError(
            f"malformed namespaced option {key!r}; "
            "expected 'option' or 'engine.option'"
        )


@dataclass(frozen=True)
class MiningConfig:
    """Immutable, validated description of one mining run.

    Attributes
    ----------
    support:
        Minimum support — a ``float`` fraction in ``(0, 1]`` or an ``int``
        absolute transaction count ``>= 1``.
    confidence:
        Minimum confidence in ``(0, 1]``; required only when rules are
        generated (``Miner.rules``), ``None`` for pattern-only runs.
    algorithm:
        Engine name resolved through :mod:`repro.registry`.
    max_length:
        Optional cap on pattern length (``None`` mines to exhaustion,
        matching the paper's ``until R_k = {}``).
    options:
        Engine options; a plain key applies to whatever engine runs, a
        ``"engine.option"`` key only to that engine.  Unknown options are
        rejected by the registry *before* mining starts.
    input_format:
        How to decode the input file when the run loads its own data
        (``None`` leaves the loader's default, usually ``"auto"``).
        One of :data:`INPUT_FORMATS`; ``"parquet"`` and ``"arrow"``
        need the optional ``pyarrow`` dependency.  Ingest options shape
        *how data is read*, never the pattern set, so they are excluded
        from result caching keys.
    chunk_rows:
        Decoder batch size for streaming ingest (rows per chunk);
        ``None`` leaves the decoder's default.
    state_dir:
        Directory holding the materialized incremental-mining state
        (see :mod:`repro.core.incremental`); handed only to engines
        carrying the ``incremental`` capability, where it enables
        delta-only re-mining under appends.  Like ``input_format``, it
        shapes *how counting proceeds*, never the pattern set — results
        stay byte-identical — so it is excluded from result caching
        keys (cache invalidation under appends rides on the dataset
        *generation* instead).
    """

    support: float | int = 0.01
    confidence: float | None = None
    algorithm: str = "setm"
    max_length: int | None = None
    options: Mapping[str, object] = field(default_factory=dict)
    input_format: str | None = None
    chunk_rows: int | None = None
    state_dir: str | None = None

    def __post_init__(self) -> None:
        _validate_support(self.support)
        if self.confidence is not None:
            _validate_confidence(self.confidence)
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise InvalidConfigError(
                f"algorithm must be a non-empty string; got {self.algorithm!r}"
            )
        if self.max_length is not None and (
            isinstance(self.max_length, bool)
            or not isinstance(self.max_length, int)
            or self.max_length < 1
        ):
            raise InvalidConfigError(
                f"max_length must be a positive integer or None; "
                f"got {self.max_length!r}"
            )
        if not isinstance(self.options, Mapping):
            raise InvalidConfigError(
                f"options must be a mapping; got {self.options!r}"
            )
        if self.input_format is not None and self.input_format not in INPUT_FORMATS:
            raise InvalidConfigError(
                f"input_format must be one of {INPUT_FORMATS} or None; "
                f"got {self.input_format!r}"
            )
        if self.chunk_rows is not None and (
            isinstance(self.chunk_rows, bool)
            or not isinstance(self.chunk_rows, int)
            or self.chunk_rows < 1
        ):
            raise InvalidConfigError(
                f"chunk_rows must be a positive integer or None; "
                f"got {self.chunk_rows!r}"
            )
        if self.state_dir is not None and (
            not isinstance(self.state_dir, str) or not self.state_dir
        ):
            raise InvalidConfigError(
                f"state_dir must be a non-empty string or None; "
                f"got {self.state_dir!r}"
            )
        for key in self.options:
            _validate_option_key(key)
        # Snapshot the mapping so a caller mutating the original dict
        # cannot change this (frozen) config behind its back.
        object.__setattr__(self, "options", dict(self.options))

    # -- derived values -----------------------------------------------------------

    @property
    def is_absolute_support(self) -> bool:
        """True when ``support`` is an absolute transaction count."""
        return isinstance(self.support, int)

    def support_threshold(self, num_transactions: int) -> int:
        """Absolute count threshold this config applies to ``num_transactions``.

        Mirrors :meth:`TransactionDatabase.absolute_support`: fractional
        support rounds up (30% of 10 transactions is 3), and the threshold
        is never below 1.
        """
        if self.is_absolute_support:
            return int(self.support)
        return max(1, math.ceil(self.support * num_transactions))

    def support_fraction(self, num_transactions: int) -> float:
        """Fractional form of ``support`` over ``num_transactions``."""
        if self.is_absolute_support:
            if num_transactions <= 0:
                return 1.0
            return min(1.0, self.support / num_transactions)
        return float(self.support)

    def options_for(self, engine: str) -> dict[str, object]:
        """The options to hand ``engine``: plain keys plus its namespace.

        A namespaced ``"engine.option"`` entry wins over a plain
        ``"option"`` entry for the same option name.
        """
        resolved: dict[str, object] = {}
        for key, value in self.options.items():
            if "." not in key:
                resolved[key] = value
        prefix = f"{engine}."
        for key, value in self.options.items():
            if key.startswith(prefix):
                resolved[key[len(prefix):]] = value
        return resolved

    def replace(self, **changes: object) -> "MiningConfig":
        """A new, re-validated config with ``changes`` applied.

        >>> MiningConfig(support=0.3).replace(algorithm="apriori").support
        0.3
        """
        return dataclasses.replace(self, **changes)
