"""Closed-form B+-tree sizing — the index arithmetic of Section 3.2.

The paper sizes two indexes over the 2M-tuple hypothetical ``SALES``:

* ``(item, trans_id)``: 8-byte leaf entries → 500 per leaf → 4,000 leaf
  pages; 12-byte non-leaf entries → 333 per page → 14 non-leaf pages;
  3 levels.
* ``(trans_id)``: 4-byte leaf entries → 1,000 per leaf → 2,000 leaf
  pages; 8-byte non-leaf entries → 500 per page → 5 non-leaf pages.

:func:`size_btree` reproduces those numbers from first principles (page
size, header reserve, field width), and the property tests check it
against the *actual* page-backed B+-tree of :mod:`repro.storage.btree`
built on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.disk import PAGE_SIZE
from repro.storage.page import FIELD_BYTES, PAGE_HEADER_BYTES

__all__ = ["BTreeSizing", "size_btree"]

#: "Assuming 4 bytes for a pointer" (Section 3.2).
POINTER_BYTES = 4


@dataclass(frozen=True, slots=True)
class BTreeSizing:
    """Derived geometry of a B+-tree."""

    num_entries: int
    leaf_entry_bytes: int
    nonleaf_entry_bytes: int
    leaf_capacity: int
    nonleaf_capacity: int
    leaf_pages: int
    nonleaf_pages: int
    levels: int

    @property
    def total_pages(self) -> int:
        return self.leaf_pages + self.nonleaf_pages


def size_btree(
    num_entries: int,
    *,
    leaf_entry_fields: int,
    key_fields: int,
) -> BTreeSizing:
    """Size a B+-tree under the paper's physical constants.

    Parameters
    ----------
    num_entries:
        Leaf entries (index rows).  The paper's indexes store the data in
        the leaves, so this equals the relation cardinality.
    leaf_entry_fields:
        4-byte fields per leaf entry (2 for ``(item, trans_id)``, 1 for the
        trans_id-only leaves of the ``(trans_id)`` index).
    key_fields:
        Fields of the separator key in non-leaf pages; a non-leaf entry is
        the key plus one 4-byte child pointer.
    """
    if num_entries < 0:
        raise ValueError(f"num_entries must be non-negative, got {num_entries}")
    usable = PAGE_SIZE - PAGE_HEADER_BYTES
    leaf_entry_bytes = leaf_entry_fields * FIELD_BYTES
    nonleaf_entry_bytes = key_fields * FIELD_BYTES + POINTER_BYTES
    leaf_capacity = usable // leaf_entry_bytes
    nonleaf_capacity = usable // nonleaf_entry_bytes

    leaf_pages = -(-num_entries // leaf_capacity) if num_entries else 1
    levels = 1
    nonleaf_pages = 0
    width = leaf_pages
    while width > 1:
        width = -(-width // nonleaf_capacity)
        nonleaf_pages += width
        levels += 1
    return BTreeSizing(
        num_entries=num_entries,
        leaf_entry_bytes=leaf_entry_bytes,
        nonleaf_entry_bytes=nonleaf_entry_bytes,
        leaf_capacity=leaf_capacity,
        nonleaf_capacity=nonleaf_capacity,
        leaf_pages=leaf_pages,
        nonleaf_pages=nonleaf_pages,
        levels=levels,
    )
