"""Analytic cost models (Sections 3.2 and 4.3) and report formatting."""

from repro.analysis.btree_model import BTreeSizing, size_btree
from repro.analysis.cost_model import (
    NestedLoopCost,
    SortMergeCost,
    nested_loop_c2_cost,
    sort_merge_page_accesses,
    sort_merge_relation_pages,
    strategy_speedup,
)
from repro.analysis.report import format_figure_series, format_kv_block, format_table

__all__ = [
    "BTreeSizing",
    "NestedLoopCost",
    "SortMergeCost",
    "format_figure_series",
    "format_kv_block",
    "format_table",
    "nested_loop_c2_cost",
    "size_btree",
    "sort_merge_page_accesses",
    "sort_merge_relation_pages",
    "strategy_speedup",
]
