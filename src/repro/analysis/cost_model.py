"""The analytic cost models of Sections 3.2 and 4.3, as executable code.

Every published number of the two analyses is reproduced by a function in
this module (and pinned by ``tests/analysis/test_cost_model.py``):

=====================================================  =========================
Paper claim (hypothetical DB: 1,000 items, 200k txns)   Function
=====================================================  =========================
``(item, trans_id)`` index: 4,000 leaf / 14 non-leaf    :func:`repro.analysis.btree_model.size_btree`
``(trans_id)`` index: 2,000 leaf / 5 non-leaf           idem
Nested-loop C_2 step: ≈ 2,000,000 page fetches          :func:`nested_loop_c2_cost`
Nested-loop C_2 step: ≈ 40,000 s ("more than 11 h")     idem (``.seconds``)
``‖R_1‖ = 4,000``, ``‖R_2‖ = 27,000`` pages             :func:`sort_merge_relation_pages`
Sort-merge total: 3·‖R_1‖ + 4·‖R_2‖ = 120,000           :func:`sort_merge_page_accesses`
Sort-merge time: 1,200 s                                idem (``.seconds``)
=====================================================  =========================

Note on the paper's arithmetic: it prices 120,000 sequential accesses at
10 ms each and reports "1200 seconds or 10 minutes"; 1,200 s is of course
20 minutes.  We reproduce the 1,200 s figure and leave the minute
conversion to the reader (EXPERIMENTS.md records the discrepancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.btree_model import BTreeSizing, size_btree
from repro.data.hypothetical import HypotheticalConfig
from repro.storage.disk import RANDOM_ACCESS_MS, SEQUENTIAL_ACCESS_MS
from repro.storage.page import PageFormat

__all__ = [
    "NestedLoopCost",
    "SortMergeCost",
    "nested_loop_c2_cost",
    "sort_merge_page_accesses",
    "sort_merge_relation_pages",
    "strategy_speedup",
]


# ---------------------------------------------------------------------------
# Section 3.2 — nested-loop strategy
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class NestedLoopCost:
    """Cost breakdown of the nested-loop C_2 step (Section 3.2)."""

    item_index: BTreeSizing
    tid_index: BTreeSizing
    qualifying_items: int
    leaf_fetches_per_item: int
    matching_tids_per_item: int
    page_fetches: int
    seconds: float

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


def nested_loop_c2_cost(
    config: HypotheticalConfig | None = None,
) -> NestedLoopCost:
    """Page-fetch cost of generating ``C_2`` with the index plan.

    Follows the paper's derivation step by step:

    1. every item qualifies for ``C_1`` under uniform probabilities, so
       1,000 outer tuples;
    2. per item, fetch the fraction of ``(item, trans_id)`` leaf pages
       holding that item: 1% of 4,000 = 40 leaf fetches;
    3. the item matches 1% of transactions = 2,000 trans_ids; each costs
       one leaf fetch in the ``(trans_id)`` index (non-leaf pages are
       assumed resident);
    4. all fetches are random, at 20 ms.
    """
    config = config or HypotheticalConfig()
    rows = config.num_sales_rows
    item_index = size_btree(rows, leaf_entry_fields=2, key_fields=2)
    tid_index = size_btree(rows, leaf_entry_fields=1, key_fields=1)

    probability = config.item_probability
    leaf_fetches = math.ceil(probability * item_index.leaf_pages)
    matching_tids = round(probability * config.num_transactions)
    per_item = leaf_fetches + matching_tids  # one fetch per trans_id probe
    total = config.num_items * per_item
    return NestedLoopCost(
        item_index=item_index,
        tid_index=tid_index,
        qualifying_items=config.num_items,
        leaf_fetches_per_item=leaf_fetches,
        matching_tids_per_item=matching_tids,
        page_fetches=total,
        seconds=total * RANDOM_ACCESS_MS / 1000.0,
    )


# ---------------------------------------------------------------------------
# Section 4.3 — sort-merge strategy
# ---------------------------------------------------------------------------


def sort_merge_relation_pages(
    config: HypotheticalConfig | None = None,
    *,
    max_length: int = 2,
) -> dict[int, int]:
    """Worst-case ``‖R_i‖`` in pages for ``i = 1 .. max_length``.

    The paper's worst case assumes the support filter eliminates nothing,
    so ``|R_i| = C(T, i) × |D|`` (every ``i``-subset of every transaction
    survives) and a tuple of ``R_i`` occupies ``(i + 1) × 4`` bytes.
    For the default configuration: ``‖R_1‖ = 4,000`` and
    ``‖R_2‖ = 27,028`` (the paper rounds to 27,000).
    """
    config = config or HypotheticalConfig()
    pages: dict[int, int] = {}
    for i in range(1, max_length + 1):
        cardinality = math.comb(config.items_per_transaction, i) * (
            config.num_transactions
        )
        pages[i] = PageFormat(i + 1).pages_needed(cardinality)
    return pages


@dataclass(frozen=True, slots=True)
class SortMergeCost:
    """Cost breakdown of the sort-merge strategy (Section 4.3)."""

    relation_pages: dict[int, int]
    terminal_iteration: int
    merge_scan_reads: int
    result_writes: int
    sort_accesses: int
    page_accesses: int
    seconds: float

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0


def sort_merge_page_accesses(
    relation_pages: dict[int, int],
    terminal_iteration: int,
    *,
    include_terminal_sort: bool = False,
) -> SortMergeCost:
    """The Section 4.3 I/O bound for a run where ``R_n`` is empty.

    With ``n = terminal_iteration`` and ``‖R_i‖`` from ``relation_pages``
    (missing lengths count as 0):

    * merge-scan reads: pass ``k`` reads ``R_{k-1}`` and ``R_1``, for
      ``k = 2 .. n`` — ``(n-1)·‖R_1‖ + Σ_{i=1}^{n-1} ‖R_i‖``;
    * result writes: ``Σ_{i=2}^{n} ‖R_i‖`` (``R_n`` is empty);
    * sorting: each intermediate output is re-read and re-written —
      ``2·Σ_{i=2}^{n-1} ‖R_i‖`` (``R_1`` arrives sorted, and sorts run in
      pipelining mode).

    For the paper's instance (n=3, ‖R_1‖=4,000, ‖R_2‖=27,000) this is
    ``3·‖R_1‖ + 4·‖R_2‖ = 120,000`` accesses, 1,200 s at 10 ms each.

    ``include_terminal_sort`` extends the sort term to ``i = n``.  The
    paper's worst case ("the minimum support constraint does not
    eliminate any tuples") implies an empty ``R'_n``, so it charges no
    sort in the final iteration; a *real* run materializes a non-empty
    ``R'_n``, sorts it, counts it, and only then discovers that nothing
    qualifies.  Empirical comparisons against the paged engine should
    therefore set this flag (see ``benchmarks/test_bench_disk_io_validation``).
    """
    if terminal_iteration < 2:
        raise ValueError(
            f"terminal_iteration must be at least 2, got {terminal_iteration}"
        )
    n = terminal_iteration
    pages = {i: relation_pages.get(i, 0) for i in range(1, n + 1)}
    merge_scan_reads = (n - 1) * pages[1] + sum(
        pages[i] for i in range(1, n)
    )
    result_writes = sum(pages[i] for i in range(2, n + 1))
    sort_upper = n + 1 if include_terminal_sort else n
    sort_accesses = 2 * sum(pages[i] for i in range(2, sort_upper))
    total = merge_scan_reads + result_writes + sort_accesses
    return SortMergeCost(
        relation_pages=pages,
        terminal_iteration=n,
        merge_scan_reads=merge_scan_reads,
        result_writes=result_writes,
        sort_accesses=sort_accesses,
        page_accesses=total,
        seconds=total * SEQUENTIAL_ACCESS_MS / 1000.0,
    )


def strategy_speedup(
    nested: NestedLoopCost, sorted_merge: SortMergeCost
) -> float:
    """Modelled time ratio nested-loop / sort-merge (the paper's ~34×).

    The paper headlines "11 hours vs 10 minutes"; in its own numbers the
    ratio is 40,000 s / 1,200 s ≈ 33×.  Either way the conclusion — the
    nested-loop plan is not viable — is unchanged.
    """
    return nested.seconds / sorted_merge.seconds
