"""ASCII table and series formatting for experiment output.

The benchmark harness regenerates each paper table/figure as text: tables
render like the Section 6.2 execution-time table, figures render as
aligned series (one row per iteration, one column per minimum support) —
the transposed view of the Figure 5/6 curves.  Everything returns plain
strings so benches can both print them and write them to files.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_figure_series", "format_kv_block"]


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table with a rule under the header."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_figure_series(
    series: Mapping[str, Sequence[tuple[int, float | int]]],
    *,
    x_label: str = "iteration",
    title: str | None = None,
) -> str:
    """Render figure curves as a table: x values down, one curve per column.

    ``series`` maps curve labels (e.g. ``"0.1%"``) to ``(x, y)`` points.
    Missing x values in a curve render as blanks, so curves of different
    lengths (mining runs terminating at different iterations) align.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    headers = [x_label, *series.keys()]
    rows: list[list[object]] = []
    lookup = {
        label: {x: y for x, y in points} for label, points in series.items()
    }
    for x in xs:
        row: list[object] = [x]
        for label in series:
            value = lookup[label].get(x)
            row.append("" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_kv_block(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render aligned ``key: value`` lines (cost-model breakdowns)."""
    width = max((len(key) for key in pairs), default=0)
    lines = [] if title is None else [title]
    lines.extend(f"{key.ljust(width)} : {_render(value)}" for key, value in pairs.items())
    return "\n".join(lines)
