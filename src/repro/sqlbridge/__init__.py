"""sqlite3 execution of the generated mining SQL."""

from repro.sqlbridge.sqlite_miner import SQLiteBackend, sqlite_mine

__all__ = ["SQLiteBackend", "sqlite_mine"]
