"""sqlite3 backend: the paper's SQL running on a stock RDBMS.

The strongest form of the paper's claim — mining in a general query
language — is running the generated statements on a database engine we
did not write.  :class:`SQLiteBackend` adapts the stdlib ``sqlite3`` to
the :class:`repro.core.setm_sql.SQLBackend` protocol, and
:func:`sqlite_mine` is the one-call version.

sqlite3 accepts the generated SQL verbatim (``:name`` parameters included);
the only adaptation is parameter filtering, since sqlite rejects bindings
for parameters a statement does not mention.
"""

from __future__ import annotations

import re
import sqlite3

from repro.core.result import MiningResult
from repro.core.setm_sql import setm_sql
from repro.core.transactions import TransactionDatabase
from repro.registry import register_engine
from repro.sql.generator import create_sales_table

__all__ = ["SQLiteBackend", "sqlite_mine"]

_PARAM_PATTERN = re.compile(r":(\w+)")


class SQLiteBackend:
    """A :class:`~repro.core.setm_sql.SQLBackend` over ``sqlite3``.

    Parameters
    ----------
    database:
        Transactions to load into a fresh in-memory sqlite database.
    connection:
        Alternatively, an existing connection already holding ``SALES``
        (items must be in a column named ``item``, trans ids in
        ``trans_id``).
    """

    def __init__(
        self,
        database: TransactionDatabase | None = None,
        *,
        connection: sqlite3.Connection | None = None,
    ) -> None:
        if (database is None) == (connection is None):
            raise ValueError(
                "provide exactly one of `database` or `connection`"
            )
        if connection is not None:
            self.connection = connection
            row = self.connection.execute(
                "SELECT item FROM SALES LIMIT 1"
            ).fetchone()
            self._item_type = (
                "TEXT" if row and isinstance(row[0], str) else "INTEGER"
            )
        else:
            assert database is not None
            self.connection = sqlite3.connect(":memory:")
            items = database.distinct_items()
            self._item_type = (
                "TEXT"
                if any(isinstance(item, str) for item in items)
                else "INTEGER"
            )
            self.connection.execute(create_sales_table(self._item_type))
            self.connection.executemany(
                "INSERT INTO SALES VALUES (?, ?)", database.sales_rows()
            )
            self.connection.commit()

    def execute(
        self, sql: str, params: dict[str, object] | None = None
    ) -> list[tuple] | None:
        # sqlite3 rejects bindings for parameters the statement does not
        # reference; pass only what the text mentions.
        mentioned = set(_PARAM_PATTERN.findall(sql))
        bound = {
            name: value
            for name, value in (params or {}).items()
            if name in mentioned
        }
        cursor = self.connection.execute(sql, bound)
        if sql.lstrip().upper().startswith("SELECT"):
            return [tuple(row) for row in cursor.fetchall()]
        return None

    def query_count(self, table: str) -> int:
        (count,) = self.connection.execute(
            f"SELECT COUNT(*) FROM {table}"
        ).fetchone()
        return count

    def item_type(self) -> str:
        return self._item_type


@register_engine(
    "setm-sqlite",
    description="the paper's SQL on stdlib sqlite3",
    representation="sql",
    accepted_options=("strategy", "measure_memory"),
)
def sqlite_mine(
    database: TransactionDatabase,
    minimum_support: float,
    *,
    strategy: str = "sort-merge",
    max_length: int | None = None,
    measure_memory: bool = True,
) -> MiningResult:
    """Run SETM's SQL on sqlite3 and return the standard result object."""
    backend = SQLiteBackend(database)
    try:
        result = setm_sql(
            database,
            minimum_support,
            backend=backend,
            strategy=strategy,
            max_length=max_length,
            measure_memory=measure_memory,
        )
    finally:
        backend.connection.close()
    result.algorithm = result.algorithm.replace("setm-sql", "setm-sqlite")
    return result
