"""Capability-aware engine registry.

Every mining engine in this package registers itself with
:func:`register_engine` at import time, carrying not just a callable but
*capability metadata*: which options it accepts, whether it honours
``max_length``, whether it reports page accesses.  The :class:`Miner`
facade resolves names here and rejects unknown options **before** the
engine runs — a typo costs an exception, never a mining pass.

Registering a new engine takes one decorator::

    from repro.registry import register_engine

    @register_engine(
        "my-engine",
        description="frequent patterns via my clever method",
        accepted_options=("fanout",),
    )
    def my_engine(database, minimum_support, *, max_length=None, fanout=4):
        ...
        return MiningResult(...)

The engine contract is unchanged from the original flat API: a callable
``(database, minimum_support, **options) -> MiningResult`` whose result
agrees with every other engine (the differential tests hold all
registered engines to ``bruteforce``'s patterns).
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    EngineOptionError,
    InvalidConfigError,
    UnknownAlgorithmError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.result import MiningResult

__all__ = [
    "EngineSpec",
    "available_engines",
    "engine_specs",
    "find_engine",
    "get_engine",
    "register_engine",
    "unregister_engine",
]

#: Modules whose import registers the built-in engines.  This is the
#: only place the built-ins are listed; each module carries its own
#: capability metadata at the ``@register_engine`` site.
_BUILTIN_ENGINE_MODULES = (
    "repro.core.setm",
    "repro.core.setm_columnar",
    "repro.core.setm_columnar_disk",
    "repro.core.setm_parallel",
    "repro.core.setm_spill_parallel",
    "repro.core.setm_disk",
    "repro.core.setm_sql",
    "repro.core.nested_loop",
    "repro.sqlbridge.sqlite_miner",
    "repro.baselines.apriori",
    "repro.baselines.ais",
    "repro.baselines.bruteforce",
    "repro.core.incremental",
)

_REGISTRY: dict[str, "EngineSpec"] = {}
_builtins_loaded = False
_builtins_loading = False


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: its callable plus capability metadata.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"setm-disk"``.
    runner:
        The engine callable ``(database, minimum_support, **options)``.
    description:
        One-line description shown by ``Miner.explain`` and the CLI.
    supports_max_length:
        Whether the engine honours a ``max_length`` pattern-length cap.
    reports_page_accesses:
        Whether ``result.extra`` carries measured page-access counts
        (the disk engines do; the in-memory ones cannot).
    representation:
        How the engine stores its ``R_k`` relations: ``"tuples"``
        (row-at-a-time Python tuples, the faithful default),
        ``"columnar"`` (dictionary-encoded ``array`` columns, see
        :mod:`repro.core.columns`), ``"paged"`` (the simulated-disk heap
        files), or ``"sql"`` (relations live in a SQL engine).
    out_of_core:
        Whether the engine bounds resident memory by spilling
        intermediate relations to disk (honours a
        ``memory_budget_bytes`` option), so it can mine databases whose
        ``R'_k`` relations exceed RAM.
    parallel:
        Whether the engine distributes iteration work across worker
        processes (honours a ``workers`` option, defaulting to
        ``os.cpu_count()``; ``workers=1`` forces serial execution).
    streaming_ingest:
        Whether the engine mines a stream-encoded
        :class:`~repro.data.ingest.EncodedDataset` directly (its kernel
        reads the encoded ``R_1`` columns without materializing Python
        transaction objects).  Engines without the capability still
        accept one — :meth:`run` transparently materializes the classic
        decoded :class:`TransactionDatabase` first — but lose the
        bounded-memory benefit.
    incremental:
        Whether the engine maintains a materialized
        :class:`~repro.core.incremental.MiningState` under appends
        (honours a ``state_dir`` option): with saved state covering a
        prefix of the dataset it counts **only the appended delta** and
        merges, byte-identical to a from-scratch mine.  Engines with
        this flag must appear in the conformance delta tier.
    accepted_options:
        Option names the engine accepts beyond the standard
        ``(database, minimum_support, max_length)``.  ``None`` disables
        checking entirely — used only for engines injected through the
        deprecated ``ALGORITHMS`` mapping, whose signatures are unknown.
    """

    name: str
    runner: Callable[..., "MiningResult"]
    description: str = ""
    supports_max_length: bool = True
    reports_page_accesses: bool = False
    representation: str = "tuples"
    out_of_core: bool = False
    parallel: bool = False
    streaming_ingest: bool = False
    incremental: bool = False
    accepted_options: frozenset[str] | None = frozenset()

    def validate_options(
        self, options: Iterable[str], *, max_length: int | None = None
    ) -> None:
        """Raise :class:`EngineOptionError` for anything this engine rejects."""
        if max_length is not None and not self.supports_max_length:
            raise EngineOptionError(
                self.name, ["max_length"], self.accepted_options or ()
            )
        if self.accepted_options is None:
            return
        unknown = set(options) - self.accepted_options
        if unknown:
            raise EngineOptionError(self.name, unknown, self.accepted_options)

    def run(
        self,
        database: object,
        support: float | int,
        *,
        max_length: int | None = None,
        options: dict[str, object] | None = None,
    ) -> "MiningResult":
        """Validate ``options`` against this spec, then run the engine.

        A stream-encoded :class:`~repro.data.ingest.EncodedDataset` is
        handed straight to engines carrying the ``streaming_ingest``
        capability; for every other engine it is first materialized back
        into the classic decoded :class:`TransactionDatabase`, so any
        engine mines a streamed file with identical results.
        """
        options = dict(options or {})
        self.validate_options(options, max_length=max_length)
        if max_length is not None:
            options["max_length"] = max_length
        if not self.streaming_ingest:
            # Imported lazily: the registry must stay importable without
            # dragging in the data layer (and its optional decoders).
            from repro.data.ingest import EncodedDataset

            if isinstance(database, EncodedDataset):
                database = database.database(decoded=True)
        return self.runner(database, support, **options)


def register_engine(
    name: str,
    *,
    description: str = "",
    supports_max_length: bool = True,
    reports_page_accesses: bool = False,
    representation: str = "tuples",
    out_of_core: bool = False,
    parallel: bool = False,
    streaming_ingest: bool = False,
    incremental: bool = False,
    accepted_options: Iterable[str] | None = (),
    replace: bool = False,
) -> Callable[[Callable[..., "MiningResult"]], Callable[..., "MiningResult"]]:
    """Decorator: register the decorated callable as engine ``name``.

    The callable is returned unchanged, so direct calls keep working.
    Re-registering an existing name raises :class:`InvalidConfigError`
    unless ``replace=True``.
    """

    def decorator(
        runner: Callable[..., "MiningResult"],
    ) -> Callable[..., "MiningResult"]:
        _register(
            EngineSpec(
                name=name,
                runner=runner,
                description=description,
                supports_max_length=supports_max_length,
                reports_page_accesses=reports_page_accesses,
                representation=representation,
                out_of_core=out_of_core,
                parallel=parallel,
                streaming_ingest=streaming_ingest,
                incremental=incremental,
                accepted_options=(
                    None
                    if accepted_options is None
                    else frozenset(accepted_options)
                ),
            ),
            replace=replace,
        )
        return runner

    return decorator


def _register(spec: EngineSpec, *, replace: bool = False) -> None:
    if not spec.name:
        raise InvalidConfigError("engine name must be a non-empty string")
    if not replace and spec.name in _REGISTRY:
        raise InvalidConfigError(
            f"engine {spec.name!r} is already registered; "
            "pass replace=True to override it"
        )
    _REGISTRY[spec.name] = spec


def unregister_engine(name: str) -> EngineSpec:
    """Remove and return engine ``name`` (plugins and tests clean up with this)."""
    _ensure_builtin_engines()
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownAlgorithmError(name, _REGISTRY) from None


def find_engine(name: str) -> EngineSpec | None:
    """Engine ``name`` or ``None`` — the non-raising lookup."""
    _ensure_builtin_engines()
    return _REGISTRY.get(name)


def get_engine(name: str) -> EngineSpec:
    """Engine ``name`` or :class:`UnknownAlgorithmError` listing the registry."""
    spec = find_engine(name)
    if spec is None:
        raise UnknownAlgorithmError(name, _REGISTRY)
    return spec


def available_engines() -> tuple[str, ...]:
    """Sorted names of every registered engine."""
    _ensure_builtin_engines()
    return tuple(sorted(_REGISTRY))


def engine_specs() -> tuple[EngineSpec, ...]:
    """Every registered :class:`EngineSpec`, sorted by name."""
    _ensure_builtin_engines()
    return tuple(spec for _, spec in sorted(_REGISTRY.items()))


def _ensure_builtin_engines() -> None:
    """Import the built-in engine modules (each self-registers on import).

    The loaded flag is only set once every import succeeded, so a failed
    engine import surfaces on *every* registry call (and is retried)
    rather than leaving a silently half-populated registry.  The
    in-progress flag guards against recursion if an engine module ever
    queries the registry while being imported.
    """
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    _builtins_loading = True
    try:
        for module in _BUILTIN_ENGINE_MODULES:
            importlib.import_module(module)
        _builtins_loaded = True
    finally:
        _builtins_loading = False
