"""In-memory relations (bags of tuples with a schema).

Relations in this engine are *bags*, matching SQL semantics: the ``R'_k``
relation of the paper legitimately contains one row per pattern instance,
and ``SELECT`` without ``DISTINCT`` preserves duplicates.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.relational.schema import Schema

__all__ = ["Relation"]


class Relation:
    """A schema plus a list of rows (tuples)."""

    def __init__(self, schema: Schema, rows: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self.rows: list[tuple] = [tuple(row) for row in rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.rows)} rows)"

    def append(self, row: tuple, *, validate: bool = True) -> None:
        """Add one row, type-checked against the schema by default."""
        row = tuple(row)
        if validate:
            self.schema.validate_row(row)
        self.rows.append(row)

    def extend(self, rows: Iterable[tuple], *, validate: bool = True) -> None:
        for row in rows:
            self.append(row, validate=validate)

    def as_set(self) -> set[tuple]:
        """The rows as a set (order- and duplicate-insensitive comparison)."""
        return set(self.rows)

    def as_sorted_list(self) -> list[tuple]:
        """Rows sorted — canonical form for equality in tests."""
        return sorted(self.rows)

    def pretty(self, *, limit: int | None = 20) -> str:
        """Human-readable rendering (for examples and debugging)."""
        headers = [column.qualified_name for column in self.schema]
        shown = self.rows if limit is None else self.rows[:limit]
        widths = [len(header) for header in headers]
        rendered = [[str(value) for value in row] for row in shown]
        for row in rendered:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
            "-+-".join("-" * width for width in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rendered
        )
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
