"""Scalar expressions and predicates for the relational engine.

The query subset the paper needs is conjunctions of comparisons between
columns, constants and named parameters (``:minsupport``).  Expressions
compile against a schema into plain Python closures over row tuples, so
evaluation inside operator inner loops costs one function call — the
engine's version of predicate compilation.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.relational.schema import Schema

__all__ = [
    "And",
    "ColumnRef",
    "Comparison",
    "CompiledPredicate",
    "ExpressionError",
    "Literal",
    "Parameter",
    "COMPARISON_OPS",
]

#: Row-level predicate produced by compilation.
CompiledPredicate = Callable[[tuple], bool]

#: Supported comparison operators and their Python semantics.
COMPARISON_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ExpressionError(Exception):
    """Unknown operator, unbound parameter, or unresolvable column."""


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A (possibly qualified) column reference: ``r1.item`` or ``item``."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def resolve(self, schema: Schema) -> int:
        return schema.index_of(self.name, self.qualifier)


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant (int or string)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Parameter:
    """A named query parameter, ``:name``, bound at execution time."""

    name: str

    def __str__(self) -> str:
        return f":{self.name}"


Operand = ColumnRef | Literal | Parameter


def _compile_operand(
    operand: Operand, schema: Schema, params: Mapping[str, object]
) -> Callable[[tuple], object]:
    if isinstance(operand, ColumnRef):
        index = operand.resolve(schema)
        return lambda row: row[index]
    if isinstance(operand, Literal):
        value = operand.value
        return lambda row: value
    if isinstance(operand, Parameter):
        if operand.name not in params:
            raise ExpressionError(f"unbound parameter :{operand.name}")
        bound = params[operand.name]
        return lambda row: bound
    raise ExpressionError(f"unsupported operand {operand!r}")


@dataclass(frozen=True, slots=True)
class Comparison:
    """``left <op> right`` over columns, literals and parameters."""

    op: str
    left: Operand
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ExpressionError(f"unsupported operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def compile(
        self, schema: Schema, params: Mapping[str, object] | None = None
    ) -> CompiledPredicate:
        params = params or {}
        compare = COMPARISON_OPS[self.op]
        left = _compile_operand(self.left, schema, params)
        right = _compile_operand(self.right, schema, params)
        return lambda row: compare(left(row), right(row))

    def references(self) -> set[str | None]:
        """Qualifiers mentioned (None for bare refs and constants)."""
        out: set[str | None] = set()
        for operand in (self.left, self.right):
            if isinstance(operand, ColumnRef):
                out.add(operand.qualifier)
        return out


@dataclass(frozen=True, slots=True)
class And:
    """A conjunction of comparisons — the only connective the subset needs."""

    conjuncts: tuple[Comparison, ...]

    def __str__(self) -> str:
        return " AND ".join(str(conjunct) for conjunct in self.conjuncts)

    def compile(
        self, schema: Schema, params: Mapping[str, object] | None = None
    ) -> CompiledPredicate:
        compiled = [
            conjunct.compile(schema, params) for conjunct in self.conjuncts
        ]
        if not compiled:
            return lambda row: True
        if len(compiled) == 1:
            return compiled[0]
        return lambda row: all(predicate(row) for predicate in compiled)
