"""In-memory relational algebra: schemas, relations, operators."""

from repro.relational.catalog import Catalog, CatalogError
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    ExpressionError,
    Literal,
    Parameter,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema, SchemaError

__all__ = [
    "And",
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnRef",
    "ColumnType",
    "Comparison",
    "ExpressionError",
    "Literal",
    "Parameter",
    "Relation",
    "Schema",
    "SchemaError",
]
