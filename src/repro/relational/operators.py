"""Physical operators of the in-memory relational engine.

Volcano-style: every operator is a generator over row tuples, composed by
the planner into a pipeline.  The operator set is exactly what the paper's
two formulations need:

* :func:`scan`, :func:`select`, :func:`project`
* :func:`nested_loop_join` — the Section 3 strategy's join
* :func:`merge_join` — the Section 4 strategy's join (equi-join on sort
  keys with optional residual predicate, e.g. ``q.item > p.item_{k-1}``)
* :func:`sort_rows` — in-memory sort standing in for the external sort
* :func:`group_count` — sort-based ``GROUP BY`` + ``COUNT(*)`` with an
  optional ``HAVING COUNT(*) >= threshold``
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

__all__ = [
    "group_count",
    "merge_join",
    "nested_loop_join",
    "project",
    "scan",
    "select",
    "sort_rows",
]

Row = tuple
Predicate = Callable[[Row], bool]
KeyFunction = Callable[[Row], tuple]


def scan(rows: Iterable[Row]) -> Iterator[Row]:
    """Base-table access."""
    yield from rows


def select(rows: Iterable[Row], predicate: Predicate) -> Iterator[Row]:
    """Filter by a compiled predicate."""
    for row in rows:
        if predicate(row):
            yield row


def project(
    rows: Iterable[Row], indexes: list[int]
) -> Iterator[Row]:
    """Column projection by position."""
    for row in rows:
        yield tuple(row[index] for index in indexes)


def sort_rows(rows: Iterable[Row], key: KeyFunction) -> Iterator[Row]:
    """Full sort (materializes; the disk engine does this externally)."""
    yield from sorted(rows, key=key)


def nested_loop_join(
    outer: Iterable[Row],
    inner_factory: Callable[[], Iterable[Row]],
    predicate: Predicate | None = None,
) -> Iterator[Row]:
    """Tuple-at-a-time nested-loop join.

    ``inner_factory`` re-produces the inner input per outer row (rescans —
    the behaviour whose cost Section 3.2 demolishes).  ``predicate``
    applies to the concatenated row.
    """
    for outer_row in outer:
        for inner_row in inner_factory():
            combined = outer_row + inner_row
            if predicate is None or predicate(combined):
                yield combined


def merge_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: KeyFunction,
    right_key: KeyFunction,
    residual: Predicate | None = None,
) -> Iterator[Row]:
    """Sort-merge equi-join with an optional residual predicate.

    Both inputs must arrive sorted on their join keys.  Duplicate keys on
    both sides produce the full cross product of the matching groups
    (required: every transaction joins each ``R_{k-1}`` instance with each
    ``SALES`` row).  The residual predicate — the paper's band condition
    ``q.item > p.item_{k-1}`` — filters the concatenated rows.
    """
    left_iter = iter(left)
    right_iter = iter(right)
    left_row = next(left_iter, None)
    right_row = next(right_iter, None)
    while left_row is not None and right_row is not None:
        lkey = left_key(left_row)
        rkey = right_key(right_row)
        if lkey < rkey:
            left_row = next(left_iter, None)
        elif lkey > rkey:
            right_row = next(right_iter, None)
        else:
            # Gather both duplicate groups for this key.
            left_group = [left_row]
            left_row = next(left_iter, None)
            while left_row is not None and left_key(left_row) == lkey:
                left_group.append(left_row)
                left_row = next(left_iter, None)
            right_group = [right_row]
            right_row = next(right_iter, None)
            while right_row is not None and right_key(right_row) == rkey:
                right_group.append(right_row)
                right_row = next(right_iter, None)
            for lrow in left_group:
                for rrow in right_group:
                    combined = lrow + rrow
                    if residual is None or residual(combined):
                        yield combined


def group_count(
    rows: Iterable[Row],
    group_indexes: list[int],
    *,
    having_min_count: int | None = None,
    presorted: bool = False,
) -> Iterator[Row]:
    """``GROUP BY`` + ``COUNT(*)`` (+ optional ``HAVING COUNT(*) >= n``).

    Emits ``group_columns + (count,)`` rows in group order.  Sort-based,
    like the paper's "sort R'_k then a single sequential scan"; pass
    ``presorted=True`` when the input is already ordered on the group
    columns.
    """
    def key(row: Row) -> tuple:
        return tuple(row[index] for index in group_indexes)

    ordered = rows if presorted else sorted(rows, key=key)
    current: tuple | None = None
    count = 0
    for row in ordered:
        group = key(row)
        if group == current:
            count += 1
        else:
            if current is not None and (
                having_min_count is None or count >= having_min_count
            ):
                yield current + (count,)
            current, count = group, 1
    if current is not None and (
        having_min_count is None or count >= having_min_count
    ):
        yield current + (count,)
