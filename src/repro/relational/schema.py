"""Schemas for the in-memory relational engine.

A :class:`Schema` is an ordered list of typed columns.  Column references
in queries may be *qualified* (``r1.item``) or bare (``item``); the schema
resolves both, rejecting ambiguous bare names — the behaviour the paper's
multi-way self-joins rely on (``SALES r1, SALES r2`` exposes ``r1.item``
and ``r2.item`` as distinct columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Column", "ColumnType", "Schema", "SchemaError"]


class SchemaError(Exception):
    """Unknown or ambiguous column reference, or malformed schema."""


class ColumnType(Enum):
    """Supported column types (the paper needs exactly these two)."""

    INTEGER = "INTEGER"
    TEXT = "TEXT"

    def validate(self, value: object) -> bool:
        """True when ``value`` is acceptable for this type (NULL never is —
        the mining schemas are NOT NULL throughout)."""
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, str)


@dataclass(frozen=True, slots=True)
class Column:
    """One column: an optional table qualifier, a name, and a type."""

    name: str
    type: ColumnType = ColumnType.INTEGER
    qualifier: str | None = None

    @property
    def qualified_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


class Schema:
    """An ordered, resolvable collection of columns."""

    def __init__(self, columns: list[Column] | tuple[Column, ...]) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        seen: set[str] = set()
        for column in self.columns:
            key = column.qualified_name
            if key in seen:
                raise SchemaError(f"duplicate column {key!r}")
            seen.add(key)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{column.qualified_name} {column.type.value}"
            for column in self.columns
        )
        return f"Schema({inner})"

    def names(self) -> list[str]:
        """Bare column names in order."""
        return [column.name for column in self.columns]

    def index_of(self, name: str, qualifier: str | None = None) -> int:
        """Position of a column; bare names must be unambiguous."""
        matches = [
            index
            for index, column in enumerate(self.columns)
            if column.name == name
            and (qualifier is None or column.qualifier == qualifier)
        ]
        if not matches:
            target = f"{qualifier}.{name}" if qualifier else name
            raise SchemaError(f"unknown column {target!r}")
        if len(matches) > 1:
            raise SchemaError(
                f"ambiguous column {name!r}: qualify it (candidates: "
                + ", ".join(
                    self.columns[index].qualified_name for index in matches
                )
                + ")"
            )
        return matches[0]

    def with_qualifier(self, qualifier: str) -> "Schema":
        """A copy of this schema with every column re-qualified.

        Used when a base table enters a query under an alias: ``SALES r1``
        exposes columns ``r1.trans_id`` and ``r1.item``.
        """
        return Schema(
            [
                Column(column.name, column.type, qualifier)
                for column in self.columns
            ]
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join result: this schema followed by ``other``."""
        return Schema([*self.columns, *other.columns])

    def validate_row(self, row: tuple) -> None:
        """Type-check one row against the schema (raises ``SchemaError``)."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.columns)} "
                "columns"
            )
        for value, column in zip(row, self.columns):
            if not column.type.validate(value):
                raise SchemaError(
                    f"value {value!r} is not valid for column "
                    f"{column.qualified_name} of type {column.type.value}"
                )
