"""Named-relation catalog: the engine's system tables, minus the ceremony."""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = ["Catalog", "CatalogError"]


class CatalogError(Exception):
    """Unknown, duplicate, or otherwise misused table names."""


class Catalog:
    """Case-insensitive mapping from table names to relations."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}

    @staticmethod
    def _key(name: str) -> str:
        return name.upper()

    def create(self, name: str, schema: Schema) -> Relation:
        """Create an empty table; duplicate names are an error."""
        key = self._key(name)
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        relation = Relation(schema)
        self._tables[key] = relation
        return relation

    def drop(self, name: str, *, if_exists: bool = False) -> None:
        key = self._key(name)
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def get(self, name: str) -> Relation:
        try:
            return self._tables[self._key(name)]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def exists(self, name: str) -> bool:
        return self._key(name) in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)
