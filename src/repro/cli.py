"""Command-line interface: ``python -m repro <command>``.

Seven subcommands cover the library's main workflows without writing
any Python:

* ``mine`` — mine a transaction file (``.basket`` or ``SALES`` CSV) and
  print patterns and rules;
* ``query`` — run a declarative ``MINE`` statement (:mod:`repro.query`)
  whose planner picks the engine from capability metadata;
  ``--explain`` prints the plan (with every decision's reason) without
  mining;
* ``serve`` — host transaction files behind the long-lived JSON/HTTP
  mining service (:mod:`repro.serve`);
* ``engines`` — list every registered mining engine with its
  representation and capability metadata;
* ``generate`` — produce one of the bundled data sets as a file;
* ``sql`` — print the paper's generated SQL script for inspection or for
  feeding to another database;
* ``analyze`` — print the Section 3.2 / 4.3 cost analyses.

Examples::

    python -m repro generate --dataset retail --scale 0.1 --output r.basket
    python -m repro mine r.basket --minsup 0.01 --minconf 0.7
    python -m repro mine r.basket --minsup-count 25 --algorithm setm-disk \\
        --buffer-pages 128
    python -m repro mine r.basket --engine setm-columnar --json
    python -m repro mine r.basket --engine setm-columnar-disk \\
        --memory-budget 64M
    python -m repro mine r.basket --engine setm-parallel --workers 4
    python -m repro mine r.basket --engine setm-spill-parallel \\
        --memory-budget 64M --workers 4
    python -m repro mine r.basket --state state/ --minsup 0.01
    python -m repro mine r.basket --append day2.basket --state state/
    python -m repro query "MINE RULES FROM r WHERE support >= 0.01 \\
        AND confidence >= 0.7" r=r.basket
    python -m repro query "MINE ITEMSETS FROM r WHERE support >= 0.01 \\
        WITH workers = 4, memory_budget = '64M'" r=r.basket --explain
    python -m repro engines --json
    python -m repro sql --k 3 --strategy sort-merge
    python -m repro analyze
    python -m repro serve r.basket --port 8937 --queue-depth 16
    python -m repro serve sales=r.basket other=o.csv --port 0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.cost_model import (
    nested_loop_c2_cost,
    sort_merge_page_accesses,
    sort_merge_relation_pages,
    strategy_speedup,
)
from repro.analysis.report import format_kv_block, format_table
from repro.config import INPUT_FORMATS, MiningConfig
from repro.core.transactions import TransactionDatabase
from repro.errors import ReproError
from repro.miner import Miner
from repro.registry import available_engines, engine_specs
from repro.data.example import paper_example_database
from repro.data.hypothetical import generate_hypothetical_database
from repro.data.io import (
    read_basket_file,
    read_sales_csv,
    write_basket_file,
    write_sales_csv,
)
from repro.data.quest import QuestConfig, generate_quest_dataset
from repro.data.retail import generate_retail_dataset
from repro.sql import generator as sqlgen

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SETM association-rule mining (Houtsma & Swami, ICDE 1995)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser("mine", help="mine a transaction file")
    mine.add_argument("input", help=".basket file or SALES .csv")
    mine.add_argument("--minsup", type=float, default=0.01,
                      help="minimum support fraction (default 0.01)")
    mine.add_argument("--minsup-count", type=int, default=None,
                      help="minimum support as an absolute transaction "
                           "count (overrides --minsup)")
    mine.add_argument("--minconf", type=float, default=0.5,
                      help="minimum confidence fraction (default 0.5)")
    mine.add_argument("--algorithm", "--engine", dest="algorithm",
                      default="setm", choices=available_engines(),
                      help="mining engine (default setm); --engine is "
                           "an alias")
    mine.add_argument("--max-length", type=int, default=None,
                      help="cap on pattern length")
    mine.add_argument("--buffer-pages", type=int, default=None,
                      help="buffer-pool pages for the disk engines "
                           "(e.g. setm-disk)")
    mine.add_argument("--memory-budget", type=_parse_bytes, default=None,
                      metavar="BYTES",
                      help="resident-memory budget for out-of-core "
                           "engines (e.g. setm-columnar-disk); accepts "
                           "plain bytes or K/M/G suffixes, e.g. 64M")
    mine.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes for parallel engines "
                           "(e.g. setm-parallel; default: the machine's "
                           "CPU count, 1 forces serial execution)")
    mine.add_argument("--transport", default=None,
                      choices=["auto", "pickle", "shm", "mmap"],
                      help="how parallel engines move partition bytes to "
                           "workers: pickle (serialize), shm (zero-copy "
                           "shared-memory views), mmap (map spill/spool "
                           "files); auto picks per engine")
    mine.add_argument("--input-format", default=None,
                      choices=list(INPUT_FORMATS),
                      help="decode the input through the streaming ingest "
                           "layer: auto sniffs magic bytes/extension; "
                           "parquet/arrow need the optional pyarrow "
                           "dependency and read only the projected "
                           "trans_id/item columns")
    mine.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                      help="rows per ingest chunk (enables streaming "
                           "ingest; peak ingest memory is O(chunk + "
                           "catalog) instead of O(dataset))")
    mine.add_argument("--append", action="append", default=None,
                      metavar="FILE",
                      help="append this file's transactions onto the "
                           "input before mining (repeatable, applied in "
                           "order; trans_ids must continue ascending); "
                           "with --state, only the appended delta is "
                           "re-counted")
    mine.add_argument("--state", default=None, metavar="DIR",
                      help="directory for the materialized incremental "
                           "count state: the first run mines fully and "
                           "saves it, later runs over appended data "
                           "count only the delta (routes through the "
                           "setm-incremental engine; results are "
                           "byte-identical to a from-scratch mine)")
    mine.add_argument("--patterns", action="store_true",
                      help="also print every frequent pattern")
    mine.add_argument("--json", action="store_true",
                      help="emit a JSON document (patterns, rules, "
                           "iteration stats, per-iteration timings) "
                           "instead of text")

    query = commands.add_parser(
        "query", help="run a declarative MINE statement"
    )
    query.add_argument(
        "query", metavar="STATEMENT",
        help="the MINE statement, e.g. \"MINE RULES FROM r WHERE "
             "support >= 0.01 AND confidence >= 0.7\"; thresholds, "
             "HAS/length constraints, USING ENGINE and WITH options "
             "all live in the statement"
    )
    query.add_argument(
        "inputs", nargs="*", metavar="[NAME=]PATH",
        help="datasets the statement's FROM may name; NAME defaults to "
             "the file's stem (not needed when FROM quotes a file path "
             "directly)"
    )
    query.add_argument("--explain", action="store_true",
                       help="print the plan — engine choice, capability "
                            "requirements, every decision's reason — "
                            "without mining anything")
    query.add_argument("--patterns", action="store_true",
                       help="also print every frequent pattern")
    query.add_argument("--json", action="store_true",
                       help="emit the full query document (canonical "
                            "query, engine, result, rules) as JSON")

    serve = commands.add_parser(
        "serve", help="host transaction files behind the mining service"
    )
    serve.add_argument(
        "inputs", nargs="+", metavar="[NAME=]PATH",
        help=".basket/.csv files to host; NAME defaults to the "
             "file's stem"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8937,
                       help="port to listen on; 0 picks a free port "
                            "(the printed 'listening on' line has it)")
    serve.add_argument("--queue-depth", type=int, default=16, metavar="N",
                       help="bounded request queue size; requests beyond "
                            "it are rejected as busy (default 16)")
    serve.add_argument("--serve-workers", type=int, default=2, metavar="N",
                       help="request worker threads (default 2; mining "
                            "itself may use engine worker processes)")
    serve.add_argument("--request-timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="default per-request deadline (default 60)")
    serve.add_argument("--cache-entries", type=int, default=32, metavar="N",
                       help="per-dataset result-cache bound (default 32)")
    serve.add_argument("--spill-root", default=None, metavar="DIR",
                       help="directory out-of-core engines spill under "
                            "(default: a private temporary directory)")
    serve.add_argument("--input-format", default=None,
                       choices=list(INPUT_FORMATS),
                       help="stream-encode the hosted files at startup "
                            "through the ingest layer (cuts server boot "
                            "memory; parquet/arrow need pyarrow)")
    serve.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                       help="rows per ingest chunk for startup "
                            "stream-encoding (enables streaming ingest)")

    generate = commands.add_parser("generate", help="write a bundled data set")
    generate.add_argument("--dataset", required=True,
                          choices=["example", "retail", "quest", "hypothetical"])
    generate.add_argument("--output", required=True,
                          help="output path (.basket or .csv)")
    generate.add_argument("--scale", type=float, default=1.0,
                          help="scale factor for retail/hypothetical")
    generate.add_argument("--transactions", type=int, default=None,
                          help="transaction count for quest")
    generate.add_argument("--seed", type=int, default=None,
                          help="seed for quest")

    engines = commands.add_parser(
        "engines", help="list registered engines and their capabilities"
    )
    engines.add_argument("--json", action="store_true",
                         help="emit the engine table as a JSON document")

    sql = commands.add_parser("sql", help="print the generated mining SQL")
    sql.add_argument("--k", type=int, default=3,
                     help="generate statements up to pattern length k")
    sql.add_argument("--strategy", default="sort-merge",
                     choices=["sort-merge", "nested-loop"])
    sql.add_argument("--item-type", default="INTEGER",
                     choices=["INTEGER", "TEXT"])

    commands.add_parser("analyze", help="print the paper's cost analyses")
    return parser


def _parse_bytes(text: str) -> int:
    """A byte count, optionally suffixed: ``65536``, ``64K``, ``64M``, ``1G``."""
    units = {"K": 2**10, "M": 2**20, "G": 2**30}
    raw = text.strip()
    multiplier = 1
    if raw and raw[-1].upper() in units:
        multiplier = units[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(raw) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte count like 65536, 64K, 64M or 1G; got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"memory budget must be positive; got {text!r}"
        )
    return value


def _load(path: str) -> TransactionDatabase:
    if path.endswith(".csv"):
        return read_sales_csv(path)
    return read_basket_file(path)


def _load_streamed(
    path: str,
    args: argparse.Namespace,
    *,
    memory_budget_bytes: int | None = None,
):
    """Stream-encode ``path`` per the ``--input-format``/``--chunk-rows`` flags."""
    from repro.data.ingest import load_dataset

    return load_dataset(
        path,
        input_format=args.input_format or "auto",
        chunk_rows=args.chunk_rows,
        memory_budget_bytes=memory_budget_bytes,
    )


def _wants_streaming(args: argparse.Namespace) -> bool:
    return args.input_format is not None or args.chunk_rows is not None


def _mining_report(result, rules) -> dict:
    """The ``--json`` document for one mining run."""
    return {
        "algorithm": result.algorithm,
        "num_transactions": result.num_transactions,
        "minimum_support": result.minimum_support,
        "support_threshold": result.support_threshold,
        "elapsed_seconds": result.elapsed_seconds,
        "num_patterns": sum(
            len(rel) for rel in result.count_relations.values()
        ),
        "max_pattern_length": result.max_pattern_length,
        "patterns": [
            {
                "items": [str(item) for item in pattern],
                "count": count,
            }
            for pattern, count in result.iter_patterns()
        ],
        "rules": [str(rule) for rule in rules],
        "iterations": [
            {
                "k": stats.k,
                "candidate_instances": stats.candidate_instances,
                "supported_instances": stats.supported_instances,
                "candidate_patterns": stats.candidate_patterns,
                "supported_patterns": stats.supported_patterns,
                "r_kbytes": stats.r_kbytes,
            }
            for stats in result.iterations
        ],
        "iteration_seconds": {
            str(k): seconds
            for k, seconds in result.extra.get(
                "iteration_seconds", {}
            ).items()
        },
        # Loop-level peak resident memory (tracemalloc); None for engines
        # that do not run through the shared Figure-4 loop.
        "peak_memory_bytes": result.extra.get("peak_memory_bytes"),
        "memory_budget_bytes": result.extra.get("memory_budget_bytes"),
        "spill": result.extra.get("spill"),
        "workers": result.extra.get("workers"),
        "parallel": result.extra.get("parallel"),
        "transport": result.extra.get("transport"),
        # Streaming-ingest telemetry (chunks, rows, bytes decoded,
        # bytes_read_reduction); None when the input was whole-file read.
        "ingest": result.extra.get("ingest"),
        # Incremental-mining telemetry (mode full/delta, delta rows,
        # state hits, recount fraction); None off the incremental engine.
        "incremental": result.extra.get("incremental"),
    }


def _cmd_mine(args: argparse.Namespace, out) -> int:
    # Appends and incremental state both need the encoded columnar form
    # (append_chunks / delta slicing), so they force the streamed path.
    if _wants_streaming(args) or args.append or args.state:
        database = _load_streamed(
            args.input, args, memory_budget_bytes=args.memory_budget
        )
        for extra_path in args.append or ():
            from repro.data.formats import open_chunk_source

            info = database.append_chunks(
                open_chunk_source(
                    extra_path,
                    input_format=args.input_format or "auto",
                    chunk_rows=args.chunk_rows,
                ),
                memory_budget_bytes=args.memory_budget,
            )
            if not args.json:
                print(
                    f"appended {info['transactions']:,} transactions "
                    f"({info['rows']:,} rows) from {extra_path} "
                    f"(generation {info['generation']})",
                    file=out,
                )
        num_items = len(database.catalog)
    else:
        database = _load(args.input)
        num_items = len(database.distinct_items())
    if not args.json:
        print(
            f"{database.num_transactions:,} transactions, "
            f"{database.num_sales_rows:,} rows, "
            f"{num_items} items",
            file=out,
        )
    options: dict[str, object] = {}
    if args.buffer_pages is not None:
        options["buffer_pages"] = args.buffer_pages
    if args.memory_budget is not None:
        options["memory_budget_bytes"] = args.memory_budget
    if args.workers is not None:
        options["workers"] = args.workers
    if args.transport is not None:
        options["transport"] = args.transport
    config = MiningConfig(
        support=(
            args.minsup_count if args.minsup_count is not None else args.minsup
        ),
        confidence=args.minconf,
        algorithm=args.algorithm,
        max_length=args.max_length,
        options=options,
        input_format=args.input_format,
        chunk_rows=args.chunk_rows,
        state_dir=args.state,
    )
    miner = Miner(database)
    if args.state is not None:
        result = miner.mine_delta(config)
        # mine_delta may have rerouted to an incremental engine; align
        # the config so the rules pass reuses the cached result.
        config = config.replace(algorithm=result.algorithm)
    else:
        result = miner.frequent_itemsets(config)
    rules = miner.rules(config)
    if args.json:
        json.dump(_mining_report(result, rules), out, indent=2)
        print(file=out)
        return 0
    total = sum(len(rel) for rel in result.count_relations.values())
    print(
        f"{result.algorithm}: {total} frequent patterns "
        f"(longest {result.max_pattern_length}), "
        f"{len(rules)} rules, {result.elapsed_seconds:.3f}s",
        file=out,
    )
    if args.patterns:
        for pattern, count in result.iter_patterns():
            rendered = " ".join(str(item) for item in pattern)
            print(f"  {rendered}  [{count}]", file=out)
    for rule in rules:
        print(f"  {rule}", file=out)
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    """Parse, plan, and (unless ``--explain``) execute a MINE statement."""
    # Imported here, like serve: the query front-end is only worth
    # importing for this one subcommand.
    from repro.query import explain_query, parse_query, run_query

    parsed = parse_query(args.query)

    def load(path: str) -> TransactionDatabase:
        # The statement's own WITH options drive the load, so a quoted
        # ``FROM 'path'`` streams exactly like ``mine --chunk-rows``.
        chunk_rows = parsed.option("chunk_rows")
        input_format = parsed.option("input_format")
        if (
            chunk_rows is not None
            or input_format is not None
            or parsed.option("state") is not None
        ):
            from repro.data.ingest import load_dataset

            return load_dataset(
                path,
                input_format=input_format or "auto",
                chunk_rows=chunk_rows,
            )
        return _load(path)

    source: dict[str, TransactionDatabase] = {}
    if not parsed.dataset_is_path:
        mapping: dict[str, str] = {}
        for spec in args.inputs:
            name, sep, path = spec.partition("=")
            if not sep:
                name, path = Path(spec).stem, spec
            if name in mapping:
                print(f"error: duplicate dataset name {name!r}", file=out)
                return 2
            mapping[name] = path
        if parsed.dataset not in mapping:
            known = ", ".join(sorted(mapping)) or "(none)"
            print(
                f"error: FROM names unknown dataset {parsed.dataset!r}; "
                f"available datasets: {known}",
                file=out,
            )
            return 2
        # Only the dataset the statement actually names is loaded.
        source = {parsed.dataset: load(mapping[parsed.dataset])}

    if args.explain:
        print(explain_query(args.query, source, loader=load), file=out)
        return 0
    document = run_query(args.query, source, loader=load)
    if args.json:
        json.dump(document, out, indent=2)
        print(file=out)
        return 0
    result = document["result"]
    rules = document["rules"]
    header = (
        f"{document['engine']}: {result['num_patterns']} frequent patterns "
        f"(longest {result['max_pattern_length']})"
    )
    if rules is not None:
        header += f", {len(rules)} rules"
    print(header, file=out)
    if args.patterns:
        for entry in result["patterns"]:
            rendered = " ".join(str(item) for item in entry["items"])
            print(f"  {rendered}  [{entry['count']}]", file=out)
    for rule in rules or ():
        print(f"  {rule['text']}", file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Load the datasets, start the service, serve until drained."""
    # Imported here: the serve machinery (HTTP plumbing, scheduler) is
    # only worth importing for this one subcommand.
    from repro.serve.server import run_server
    from repro.serve.service import MiningService

    datasets: dict[str, TransactionDatabase] = {}
    for spec in args.inputs:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = Path(spec).stem, spec
        if name in datasets:
            print(f"error: duplicate dataset name {name!r}", file=out)
            return 2
        if _wants_streaming(args):
            # Stream-encode at startup: the server never materializes
            # labelled Python transactions while loading.
            database = _load_streamed(path, args)
        else:
            database = _load(path)
        datasets[name] = database
        print(
            f"hosting {name!r}: {database.num_transactions:,} transactions, "
            f"{database.num_sales_rows:,} rows",
            file=out,
        )
    service = MiningService(
        datasets,
        queue_depth=args.queue_depth,
        workers=args.serve_workers,
        default_timeout=args.request_timeout,
        cache_entries=args.cache_entries,
        spill_root=args.spill_root,
    )
    out.flush()
    return run_server(service, host=args.host, port=args.port, out=out)


def _cmd_engines(args: argparse.Namespace, out) -> int:
    """List every registered engine with its capability metadata."""
    specs = engine_specs()
    if args.json:
        document = [
            {
                "name": spec.name,
                "description": spec.description,
                "representation": spec.representation,
                "supports_max_length": spec.supports_max_length,
                "reports_page_accesses": spec.reports_page_accesses,
                "out_of_core": spec.out_of_core,
                "parallel": spec.parallel,
                "streaming_ingest": spec.streaming_ingest,
                "incremental": spec.incremental,
                "accepted_options": (
                    None
                    if spec.accepted_options is None
                    else sorted(spec.accepted_options)
                ),
            }
            for spec in specs
        ]
        json.dump(document, out, indent=2)
        print(file=out)
        return 0
    rows = [
        (
            spec.name,
            spec.representation,
            "yes" if spec.out_of_core else "no",
            "yes" if spec.parallel else "no",
            "yes" if spec.streaming_ingest else "no",
            "yes" if spec.incremental else "no",
            "yes" if spec.reports_page_accesses else "no",
            (
                "(unchecked)"
                if spec.accepted_options is None
                else ", ".join(sorted(spec.accepted_options)) or "-"
            ),
        )
        for spec in specs
    ]
    print(
        format_table(
            ["engine", "representation", "out-of-core", "parallel",
             "streaming", "incremental", "page I/O", "options"],
            rows,
            title=f"{len(specs)} registered engines",
        ),
        file=out,
    )
    for spec in specs:
        if spec.description:
            print(f"  {spec.name}: {spec.description}", file=out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    if args.dataset == "example":
        database = paper_example_database()
    elif args.dataset == "retail":
        database = generate_retail_dataset(scale=args.scale)
    elif args.dataset == "hypothetical":
        database = generate_hypothetical_database(scale=args.scale)
    else:
        config = QuestConfig()
        if args.transactions is not None:
            config = QuestConfig(num_transactions=args.transactions)
        if args.seed is not None:
            config = QuestConfig(
                num_transactions=config.num_transactions, seed=args.seed
            )
        database = generate_quest_dataset(config)

    path = Path(args.output)
    if path.suffix == ".csv":
        write_sales_csv(database, path)
    else:
        write_basket_file(database, path)
    print(
        f"wrote {database.num_transactions:,} transactions "
        f"({database.num_sales_rows:,} rows) to {path}",
        file=out,
    )
    return 0


def _cmd_sql(args: argparse.Namespace, out) -> int:
    statements = [
        sqlgen.create_sales_table(args.item_type),
        sqlgen.create_r_table(1, args.item_type),
        sqlgen.insert_r1_query(),
        sqlgen.create_c_table(1, args.item_type),
        sqlgen.insert_c1_query(),
    ]
    for k in range(2, args.k + 1):
        statements.append(sqlgen.create_c_table(k, args.item_type))
        if args.strategy == "sort-merge":
            statements.append(sqlgen.create_r_table(k, args.item_type, prime=True))
            statements.append(sqlgen.insert_rk_prime_query(k))
            statements.append(sqlgen.insert_ck_query(k))
            statements.append(sqlgen.create_r_table(k, args.item_type))
            statements.append(sqlgen.insert_rk_filter_query(k))
        else:
            statements.append(sqlgen.insert_ck_nested_loop_query(k))
    for sql in statements:
        print(f"{sql};", file=out)
    return 0


def _cmd_analyze(out) -> int:
    nested = nested_loop_c2_cost()
    merged = sort_merge_page_accesses(sort_merge_relation_pages(), 3)
    print(
        format_kv_block(
            {
                "nested-loop page fetches": nested.page_fetches,
                "nested-loop modelled time (s)": nested.seconds,
                "sort-merge page accesses": merged.page_accesses,
                "sort-merge modelled time (s)": merged.seconds,
                "speedup": round(strategy_speedup(nested, merged), 1),
            },
            title="Hypothetical database (1,000 items, 200k transactions)",
        ),
        file=out,
    )
    print(
        format_table(
            ["index", "leaf pages", "non-leaf pages", "levels"],
            [
                (
                    "(item, trans_id)",
                    nested.item_index.leaf_pages,
                    nested.item_index.nonleaf_pages,
                    nested.item_index.levels,
                ),
                (
                    "(trans_id)",
                    nested.tid_index.leaf_pages,
                    nested.tid_index.nonleaf_pages,
                    nested.tid_index.levels,
                ),
            ],
            title="B+-tree sizing (Section 3.2)",
        ),
        file=out,
    )
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "mine":
            return _cmd_mine(args, out)
        if args.command == "query":
            return _cmd_query(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "engines":
            return _cmd_engines(args, out)
        if args.command == "generate":
            return _cmd_generate(args, out)
        if args.command == "sql":
            return _cmd_sql(args, out)
        if args.command == "analyze":
            return _cmd_analyze(out)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, as CLI
        # tools are expected to.
        return 0
    except ReproError as error:
        # Structured API errors (bad support, unknown engine, rejected
        # option) become a one-line message and a conventional exit code.
        print(f"error: {error}", file=out)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
