#!/usr/bin/env python3
"""SQL mining — the paper's headline claim, demonstrated live.

Shows that association-rule mining runs on "general query languages such
as SQL" three ways:

1. prints the generated Section 4.1 statements for the first iterations;
2. executes them on the bundled SQL engine and shows the *physical
   plans* (merge-scan joins for the Section 4.1 queries, nested loops
   when forced — the Section 3 vs Section 4 story in EXPLAIN output);
3. executes the identical SQL on stdlib sqlite3 and checks that all
   three engines (in-memory SETM included) produce identical patterns.

Run:  python examples/sql_mining.py
"""

from __future__ import annotations

from repro.core.setm import setm
from repro.core.setm_sql import setm_sql
from repro.data.example import paper_example_database
from repro.sql import generator as gen
from repro.sql.database import SQLDatabase
from repro.sqlbridge.sqlite_miner import sqlite_mine


def show_generated_sql() -> None:
    print("Generated SQL (Section 4.1, iteration k=2):\n")
    for sql in (
        gen.insert_rk_prime_query(2),
        gen.insert_ck_query(2),
        gen.insert_rk_filter_query(2),
    ):
        print(f"  {sql};\n")


def show_plans() -> None:
    database = SQLDatabase()
    database.execute("CREATE TABLE SALES (trans_id INTEGER, item TEXT)")
    database.execute("CREATE TABLE R1 (trans_id INTEGER, item1 TEXT)")
    example = paper_example_database()
    database.insert_rows("SALES", example.sales_rows())
    database.execute(gen.insert_r1_query())

    merge_scan_sql = """
        SELECT p.trans_id, p.item1, q.item
        FROM R1 p, SALES q
        WHERE q.trans_id = p.trans_id AND q.item > p.item1
    """
    print("Physical plan of the R'_2 query (sort-merge engine):\n")
    print("  " + database.explain(merge_scan_sql).replace("\n", "\n  "))

    nested = SQLDatabase(join_method="nested")
    nested.execute("CREATE TABLE SALES (trans_id INTEGER, item TEXT)")
    nested.execute("CREATE TABLE R1 (trans_id INTEGER, item1 TEXT)")
    nested.insert_rows("SALES", example.sales_rows())
    nested.execute(gen.insert_r1_query())
    print("\nSame query, nested-loop-only optimizer (the Section 3 plan):\n")
    print("  " + nested.explain(merge_scan_sql).replace("\n", "\n  "))


def cross_check() -> None:
    example = paper_example_database()
    reference = setm(example, 0.30)
    via_native = setm_sql(example, 0.30)
    via_sqlite = sqlite_mine(example, 0.30)

    print("\nCross-engine check on the paper example (minsup 30%):")
    for result in (reference, via_native, via_sqlite):
        total = sum(len(rel) for rel in result.count_relations.values())
        print(
            f"  {result.algorithm:<14} {total} frequent patterns, "
            f"{result.elapsed_seconds * 1000:.1f} ms"
        )
    assert via_native.same_patterns_as(reference)
    assert via_sqlite.same_patterns_as(reference)
    print("  all three engines agree exactly")

    print("\nSQL script executed by the native run "
          f"({len(via_native.extra['statements'])} statements):")
    for sql in via_native.extra["statements"][:6]:
        print(f"  {sql};")
    print("  ...")


def main() -> None:
    show_generated_sql()
    show_plans()
    cross_check()


if __name__ == "__main__":
    main()
