#!/usr/bin/env python3
"""Cost analysis — Sections 3.2 and 4.3, analytical and empirical.

Reproduces the paper's two back-of-envelope analyses on the hypothetical
retailing database (1,000 items, 200,000 transactions, 10 items each):

* the nested-loop plan's index sizing and its ~2,000,000 random page
  fetches (~11 hours at 20 ms each);
* the sort-merge plan's ~120,000 sequential page accesses (1,200 s at
  10 ms each) and the resulting ~34x gap;

then validates both empirically at 1/100 scale by running the real
storage engine (B+-trees for the nested-loop plan, external sort +
merge-scan for SETM) and counting actual page accesses.

Run:  python examples/cost_analysis.py
"""

from __future__ import annotations

from repro.analysis.cost_model import (
    nested_loop_c2_cost,
    sort_merge_page_accesses,
    sort_merge_relation_pages,
    strategy_speedup,
)
from repro.analysis.report import format_kv_block
from repro.core.nested_loop import nested_loop_mine_disk
from repro.core.setm_disk import setm_disk
from repro.data.hypothetical import (
    HypotheticalConfig,
    generate_hypothetical_database,
)


def analytical() -> None:
    nested = nested_loop_c2_cost()
    print(
        format_kv_block(
            {
                "(item, trans_id) index": (
                    f"{nested.item_index.leaf_pages:,} leaf + "
                    f"{nested.item_index.nonleaf_pages} non-leaf pages, "
                    f"{nested.item_index.levels} levels"
                ),
                "(trans_id) index": (
                    f"{nested.tid_index.leaf_pages:,} leaf + "
                    f"{nested.tid_index.nonleaf_pages} non-leaf pages"
                ),
                "leaf fetches per item": nested.leaf_fetches_per_item,
                "trans_id probes per item": nested.matching_tids_per_item,
                "total page fetches": nested.page_fetches,
                "modelled time": f"{nested.seconds:,.0f} s "
                f"(~{nested.hours:.1f} hours)",
            },
            title="Section 3.2 — nested-loop strategy (analytical)",
        )
    )

    pages = sort_merge_relation_pages()
    merged = sort_merge_page_accesses(pages, 3)
    print()
    print(
        format_kv_block(
            {
                "||R_1||": f"{pages[1]:,} pages",
                "||R_2||": f"{pages[2]:,} pages",
                "total page accesses": merged.page_accesses,
                "modelled time": f"{merged.seconds:,.0f} s",
                "speedup vs nested-loop": f"{strategy_speedup(nested, merged):.0f}x",
            },
            title="Section 4.3 — sort-merge strategy (analytical)",
        )
    )


def empirical() -> None:
    config = HypotheticalConfig(
        num_items=100, num_transactions=2000, items_per_transaction=10
    )
    database = generate_hypothetical_database(config)

    nested = nested_loop_mine_disk(
        database, 0.005, buffer_pages=16, max_length=2
    )
    merged = setm_disk(
        database, 0.005, buffer_pages=16, sort_memory_pages=32, max_length=2
    )
    assert nested.same_patterns_as(merged)

    nested_io = nested.extra["io"]
    merged_io = merged.extra["io"]
    print()
    print(
        format_kv_block(
            {
                "scale": "1/100 (100 items, 2,000 transactions)",
                "nested-loop page accesses": nested_io.total_accesses,
                "sort-merge page accesses": merged_io.total_accesses,
                "nested-loop modelled time": f"{nested_io.estimated_seconds():.1f} s",
                "sort-merge modelled time": f"{merged_io.estimated_seconds():.1f} s",
                "measured gap": (
                    f"{nested_io.estimated_seconds() / merged_io.estimated_seconds():.1f}x"
                ),
            },
            title="Empirical validation at 1/100 scale (real storage engine)",
        )
    )


def main() -> None:
    analytical()
    empirical()


if __name__ == "__main__":
    main()
