#!/usr/bin/env python3
"""Quickstart — the paper's worked example, end to end.

Runs Algorithm SETM on the 10-transaction database of Figure 1 with the
paper's parameters (30% minimum support, 70% minimum confidence) and
prints the count relations of Figures 2-3 and the Section 5 rule
listings, in the paper's own notation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import mine_association_rules
from repro.data.example import (
    PAPER_MINIMUM_CONFIDENCE,
    PAPER_MINIMUM_SUPPORT,
    paper_example_database,
)


def main() -> None:
    database = paper_example_database()
    print("Customer transactions (Figure 1):")
    for txn in database:
        print(f"  {txn.trans_id:>3}: {' '.join(str(i) for i in txn.items)}")

    result, rules = mine_association_rules(
        database,
        minimum_support=PAPER_MINIMUM_SUPPORT,
        minimum_confidence=PAPER_MINIMUM_CONFIDENCE,
    )

    print(
        f"\nMinimum support {PAPER_MINIMUM_SUPPORT:.0%} "
        f"({result.support_threshold} transactions), "
        f"minimum confidence {PAPER_MINIMUM_CONFIDENCE:.0%}"
    )

    for k in sorted(result.count_relations):
        print(f"\nCount relation C_{k}:")
        for pattern, count in sorted(result.count_relations[k].items()):
            print(f"  {' '.join(str(i) for i in pattern):<8} {count}")

    print("\nRules obtained from C_2 (Section 5):")
    for rule in rules:
        if len(rule.pattern) == 2:
            print(f"  {rule}")

    print("\nRules generated from C_3:")
    for rule in rules:
        if len(rule.pattern) == 3:
            print(f"  {rule}")

    print("\nPer-iteration statistics (|R'_k| -> |R_k|, |C_k|):")
    for stats in result.iterations:
        print(
            f"  k={stats.k}: {stats.candidate_instances:>3} -> "
            f"{stats.supported_instances:>3} instances, "
            f"|C_{stats.k}| = {stats.supported_patterns}"
        )


if __name__ == "__main__":
    main()
