#!/usr/bin/env python3
"""Quickstart — the paper's worked example through the typed session API.

Runs Algorithm SETM on the 10-transaction database of Figure 1 with the
paper's parameters (30% minimum support, 70% minimum confidence) and
prints the count relations of Figures 2-3 and the Section 5 rule
listings, in the paper's own notation.

The modern front door is three pieces:

* :class:`repro.MiningConfig` — a frozen, validated request (support as
  a fraction *or* absolute count, confidence, engine, engine options);
* :class:`repro.Miner` — a session over one database that resolves the
  engine from the capability registry, mines, and caches the result;
* selective queries — ``explain()``, ``support_of()``, ``rules_about()``
  answer from the cached result without re-mining.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Miner, MiningConfig
from repro.data.example import (
    PAPER_MINIMUM_CONFIDENCE,
    PAPER_MINIMUM_SUPPORT,
    paper_example_database,
)


def main() -> None:
    database = paper_example_database()
    print("Customer transactions (Figure 1):")
    for txn in database:
        print(f"  {txn.trans_id:>3}: {' '.join(str(i) for i in txn.items)}")

    config = MiningConfig(
        support=PAPER_MINIMUM_SUPPORT,
        confidence=PAPER_MINIMUM_CONFIDENCE,
    )
    miner = Miner(database)

    print("\nThe plan (Miner.explain — validated, nothing mined yet):")
    for line in miner.explain(config).splitlines():
        print(f"  {line}")

    result = miner.frequent_itemsets(config)
    rules = miner.rules(config)  # reuses the cached result

    print(
        f"\nMinimum support {PAPER_MINIMUM_SUPPORT:.0%} "
        f"({result.support_threshold} transactions), "
        f"minimum confidence {PAPER_MINIMUM_CONFIDENCE:.0%}"
    )

    for k in sorted(result.count_relations):
        print(f"\nCount relation C_{k}:")
        for pattern, count in sorted(result.count_relations[k].items()):
            print(f"  {' '.join(str(i) for i in pattern):<8} {count}")

    print("\nRules obtained from C_2 (Section 5):")
    for rule in rules:
        if len(rule.pattern) == 2:
            print(f"  {rule}")

    print("\nRules generated from C_3:")
    for rule in rules:
        if len(rule.pattern) == 3:
            print(f"  {rule}")

    print("\nPer-iteration statistics (|R'_k| -> |R_k|, |C_k|):")
    for stats in result.iterations:
        print(
            f"  k={stats.k}: {stats.candidate_instances:>3} -> "
            f"{stats.supported_instances:>3} instances, "
            f"|C_{stats.k}| = {stats.supported_patterns}"
        )

    # Post-hoc selective queries hit the cached result — no re-mining.
    support = miner.support_of("D", "E", "F")
    print(f"\nsupport_of('D', 'E', 'F') from the cached run: {support:.0%}")
    print("Rules mentioning item 'F':")
    for rule in miner.rules_about("F", confidence=PAPER_MINIMUM_CONFIDENCE):
        print(f"  {rule}")

    # The same request, absolute-count style: "at least 3 transactions".
    by_count = miner.frequent_itemsets(config.replace(support=3))
    assert by_count.same_patterns_as(result)
    print("\nMiningConfig(support=3) found the same patterns — "
          "30% of 10 transactions is 3.")


if __name__ == "__main__":
    main()
