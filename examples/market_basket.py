#!/usr/bin/env python3
"""Market-basket mining — the paper's motivating scenario, end to end.

Section 1 motivates mining with retail marketing: "Most sales
transactions in which bread and butter are purchased, also include milk"
and "customers with kids are more likely to buy a particular brand of
cereal if it includes baseball cards".  This example builds that world
and mines both statements:

1. a synthetic store with named products and planted co-purchase habits;
2. SETM + Section 5 rule generation (the bread/butter/milk rule family);
3. the multi-item-consequent extension;
4. the customer-class extension (Section 7's future work): families vs
   singles, and the contrast rules that separate them.

Run:  python examples/market_basket.py
"""

from __future__ import annotations

import random

from repro import TransactionDatabase, mine_association_rules
from repro.extensions.customer_classes import (
    ClassifiedDatabase,
    class_contrast_rules,
)
from repro.extensions.multi_consequent import generate_multi_consequent_rules

PRODUCTS = [
    "apples", "bananas", "beer", "bread", "butter", "cards_cereal",
    "chips", "coffee", "cookies", "diapers", "eggs", "milk",
    "plain_cereal", "salsa", "soda", "tea", "wine", "yogurt",
]


def build_store(num_customers: int = 4000, seed: int = 7):
    """Simulate checkout lanes with planted habits per customer class."""
    rng = random.Random(seed)
    transactions = []
    classes = {}
    for trans_id in range(1, num_customers + 1):
        family = rng.random() < 0.5
        basket: set[str] = set()
        # The Section 1 rule: bread & butter baskets usually add milk.
        if rng.random() < 0.35:
            basket.update(("bread", "butter"))
            if rng.random() < 0.80:
                basket.add("milk")
        # The class-specific habit: families buy the baseball-card cereal.
        if family and rng.random() < 0.30:
            basket.add("cards_cereal")
            if rng.random() < 0.6:
                basket.add("milk")
        if not family and rng.random() < 0.25:
            basket.update(("beer", "chips"))
        # Background noise.
        while len(basket) < rng.randint(1, 6):
            basket.add(rng.choice(PRODUCTS))
        transactions.append((trans_id, tuple(basket)))
        classes[trans_id] = "family" if family else "single"
    return TransactionDatabase(transactions), classes


def main() -> None:
    database, classes = build_store()
    print(
        f"Simulated store: {database.num_transactions:,} baskets, "
        f"{len(database.distinct_items())} products, "
        f"{database.average_transaction_length():.1f} items/basket\n"
    )

    result, rules = mine_association_rules(
        database, minimum_support=0.05, minimum_confidence=0.70
    )
    print(f"Frequent patterns: {sum(len(r) for r in result.count_relations.values())}"
          f" (longest: {result.max_pattern_length} items)")
    print("Section-5-style rules (support >= 5%, confidence >= 70%):")
    for rule in sorted(rules, key=lambda r: -r.confidence)[:8]:
        print(f"  {rule}   lift={rule.lift:.2f}")

    bread_butter = [
        rule
        for rule in rules
        if set(rule.antecedent) == {"bread", "butter"}
        and rule.consequent == ("milk",)
    ]
    if bread_butter:
        print(f"\nThe paper's motivating rule, found: {bread_butter[0]}")

    multi = [
        rule
        for rule in generate_multi_consequent_rules(result, 0.70)
        if len(rule.consequent) > 1
    ]
    print(f"\nMulti-item-consequent rules (extension): {len(multi)} found")
    for rule in multi[:5]:
        print(f"  {rule}")

    print("\nCustomer-class contrasts (Section 7's future work):")
    contrasts = class_contrast_rules(
        ClassifiedDatabase(database, classes),
        minimum_support=0.05,
        minimum_confidence=0.60,
        min_lift=1.15,
    )
    for contrast in contrasts[:6]:
        population = (
            f"{contrast.population_confidence:.0%}"
            if contrast.population_confidence
            else "n/a"
        )
        print(
            f"  [{contrast.class_label:<6}] {contrast.rule}   "
            f"(population confidence: {population})"
        )


if __name__ == "__main__":
    main()
