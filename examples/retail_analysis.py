#!/usr/bin/env python3
"""Retail analysis — the paper's Section 6 evaluation, regenerated.

Generates the calibrated retail database (46,873 transactions, 115,568
``SALES`` rows, 59 items — the published shape of the paper's proprietary
data set), then reproduces:

* Figure 5 — size of ``R_i`` in Kbytes per iteration, one curve per
  minimum support in {0.05%, 0.1%, 0.5%, 1%, 2%, 5%};
* Figure 6 — cardinality of ``C_i`` per iteration, same curves;
* the Section 6.2 execution-time table (measured on this machine, next
  to the paper's 1995 numbers);
* a sample of high-confidence rules at 0.5% support.

Run:  python examples/retail_analysis.py [--scale 0.1]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.report import format_figure_series, format_table
from repro.core.rules import generate_rules
from repro.core.setm import setm
from repro.data.retail import generate_retail_dataset

MINSUP_GRID = (0.0005, 0.001, 0.005, 0.01, 0.02, 0.05)
PAPER_TIMES = {0.001: 6.90, 0.005: 5.30, 0.01: 4.64, 0.02: 4.22, 0.05: 3.97}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink the data set (e.g. 0.1 for a quick run)",
    )
    args = parser.parse_args()

    print("Generating calibrated retail data set ...")
    database = generate_retail_dataset(scale=args.scale)
    print(
        f"  {database.num_transactions:,} transactions, "
        f"{database.num_sales_rows:,} SALES rows, "
        f"{len(database.distinct_items())} items, "
        f"{database.average_transaction_length():.2f} items/basket\n"
    )

    results = {}
    timings = {}
    for minsup in MINSUP_GRID:
        started = time.perf_counter()
        # Unmetered: these wall-clock figures mirror Table 6.2, and the
        # default tracemalloc peak-memory metering would inflate them.
        results[minsup] = setm(database, minsup, measure_memory=False)
        timings[minsup] = time.perf_counter() - started

    def label(m: float) -> str:
        return f"{m * 100:g}%"

    print(
        format_figure_series(
            {label(m): results[m].r_sizes_kbytes() for m in MINSUP_GRID},
            x_label="iteration",
            title="Figure 5 — size of R_i (Kbytes)",
        )
    )
    print()
    print(
        format_figure_series(
            {label(m): results[m].c_cardinalities() for m in MINSUP_GRID},
            x_label="iteration",
            title="Figure 6 — cardinality of C_i",
        )
    )
    print()
    print(
        format_table(
            ["Minimum Support", "Paper 1995 (s)", "This machine (s)"],
            [
                (
                    label(m),
                    PAPER_TIMES.get(m, "-"),
                    round(timings[m], 3),
                )
                for m in MINSUP_GRID
            ],
            title="Section 6.2 — execution times",
        )
    )

    rules = generate_rules(results[0.005], minimum_confidence=0.75)
    print(f"\nTop rules at 0.5% support, 75% confidence ({len(rules)} total):")
    for rule in sorted(rules, key=lambda r: -r.confidence)[:10]:
        print(f"  {rule}   lift={rule.lift:.1f}")


if __name__ == "__main__":
    main()
