"""Ablation — the Section 4.1/4.3 sort-order-tracking optimization.

The paper notes that the ``ORDER BY`` on the ``R_k`` filter statement "is
not really required [but] enables an efficient execution plan if the sort
order of the relations is tracked across iterations".  Disk SETM's
``track_sort_order`` option implements exactly that plan: ``R_k`` is
produced by a *filtered sort* of ``R'_k`` straight into
``(trans_id, items)`` order, so the separate filter pass and the next
iteration's sort disappear.

The saving scales with how much of ``R'_k`` survives the support filter,
i.e. it grows as minimum support shrinks — which is also where Figure 5
shows the relations ballooning, so the optimization helps exactly where
SETM hurts.
"""

from __future__ import annotations

from conftest import minsup_label

from repro.analysis.report import format_table
from repro.core.setm import setm
from repro.core.setm_disk import setm_disk
from repro.data.retail import generate_retail_dataset


def sweep():
    db = generate_retail_dataset(scale=0.05)
    rows = []
    for minsup in (0.0005, 0.001, 0.01):
        plain = setm_disk(db, minsup, buffer_pages=8, sort_memory_pages=8)
        tracked = setm_disk(
            db,
            minsup,
            buffer_pages=8,
            sort_memory_pages=8,
            track_sort_order=True,
        )
        assert tracked.same_patterns_as(plain)
        assert tracked.same_patterns_as(setm(db, minsup))
        rows.append(
            (
                minsup,
                plain.extra["io"].total_accesses,
                tracked.extra["io"].total_accesses,
            )
        )
    return rows


def test_sort_order_tracking(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = [
        (
            minsup_label(minsup),
            plain,
            tracked,
            f"{1 - tracked / plain:.1%}",
        )
        for minsup, plain, tracked in rows
    ]
    emit(
        "ablation_sort_order",
        format_table(
            [
                "minimum support",
                "Figure-4 plan accesses",
                "tracked-order accesses",
                "saving",
            ],
            table,
            title=(
                "Ablation — Section 4.1 sort-order tracking "
                "(retail 1/20, disk SETM)"
            ),
        ),
    )

    # At the lowest support — where R_k retains most of R'_k — the fused
    # plan must save real I/O.
    low_minsup, plain, tracked = rows[0]
    assert tracked < plain
