"""Perf baseline runner: ``setm`` vs ``setm-columnar``, recorded to JSON.

This is the performance trajectory's anchor: it runs the paper's
Table 6.2 workload (the calibrated retail database at 0.5% minimum
support) plus the QUEST synthetic workloads the follow-up literature
standardized on, over both in-memory SETM engines, and writes
``BENCH_setm.json`` — wall-clock per iteration, peak ``|R'_k|``,
rows/second, and loop peak memory — so future PRs have a committed
baseline to beat.

Timing rounds run with ``measure_memory=False`` (tracemalloc taxes
every allocation, which would poison the wall-clock numbers); each
engine then takes one separate metered run to record
``peak_memory_bytes``.

The Table 6.2 workload (and the ``--tiny`` smoke) additionally runs a
**constrained-memory scenario**: ``setm-columnar-disk`` under a
``memory_budget_bytes`` small enough to force at least two spill
partitions, differentially checked against ``setm`` and recorded with
its measured peak memory and per-iteration partition counts — the
out-of-core acceptance evidence, committed to ``BENCH_setm.json``.

The Table 6.2 workload and the largest QUEST workload also run a
**worker sweep**: ``setm-parallel`` at 1/2/4 workers, each run
differentially checked against ``setm`` and recorded with its partition
counts and its speedup over ``setm-columnar`` (the serial engine it
shares every non-counting pass with).  The host CPU count is recorded
alongside, and on a single-CPU host the ≥ 2-worker rows are tagged
``coordination_overhead_only`` with ``speedup_vs_columnar`` nulled —
pure coordination overhead must never be recorded as a parallel
regression (ROADMAP carries the multi-core re-run item).  ``--workers
N`` narrows the sweep to ``{1, N}`` and extends it to the tiny smoke
(with ``parallel_threshold=0`` so the pool path runs at smoke scale),
which is how CI exercises the pool on every push.

The Table 6.2 workload (and the tiny smoke under ``--workers``)
additionally runs the **spill-parallel sweep**: ``setm-spill-parallel``
under the same constrained memory budget across the worker counts —
the pooled counting of *on-disk* partitions.  Every run is
differentially checked against ``setm``, must actually have spilled
(≥ 2 partitions) and, above one worker, must actually have reached the
pool; speedups are measured against ``setm-columnar-disk`` at the same
budget and carry the same single-CPU tagging.

The Table 6.2 workload (and the tiny smoke under ``--transport``) also
runs the **transport sweep**: ``setm-parallel`` across the payload
transports (``pickle`` vs ``shm`` vs ``mmap``) at each sweep worker
count.  The ``pickle`` rows are the baseline; every other row records
``bytes_copied_reduction`` — the fraction of task/reply bytes that
left the pickle stream for shared memory or the spool — and the run
refuses to record a reduction below 50%.  Byte counters are
deterministic, so they are honest even on one CPU; wall-clock ratios
(``speedup_vs_pickle``) carry the same ``coordination_overhead_only``
tagging as every other sweep.  ``--transport T`` narrows the sweep to
``{pickle, T}`` and extends it to the tiny smoke, which is how CI
exercises the shm and mmap legs on every push.

The Table 6.2 workload (and the tiny smoke) also runs the **serve
scenario**: an in-process ``MiningService`` hosting the workload's
database, hammered by N concurrent clients with result caching
disabled so every request really mines.  Each run records p50/p95
request latency and throughput, normalized against the direct
single-threaded ``setm-columnar`` time for the same config; every
response's result document is byte-checked against the direct run's
serialization before anything is recorded.  Multi-client rows on a
1-CPU host carry the same ``coordination_overhead_only`` tagging with
``throughput_vs_direct`` nulled — queueing overhead must never be
recorded as a serving regression.

The Table 6.2 workload (and the tiny smoke) also runs the **ingest
scenario**: the workload written as a *wide* SALES CSV (extra columns
beside ``trans_id``/``item``, as a real export would have) and
stream-encoded in bounded chunks through ``repro.data.ingest``.  The
run must decode the file in at least 4 chunks, must reproduce the
whole-file encode byte-for-byte, must mine (``setm-columnar`` straight
over the ``EncodedDataset``) to the exact ``setm`` reference, and must
beat the whole-file path's peak ingest memory — all checked before
anything is recorded.  The recorded ``bytes_decoded_reduction`` (CSV
projects *fields*; the floor is 30%) is deterministic, honest on any
host.  When ``pyarrow`` is installed the same rows also run through a
Parquet file, where projection pushdown skips whole column chunks and
``bytes_read_reduction`` carries the same 30% floor; without pyarrow
the ``parquet`` leg records ``null`` with an explicit
``pyarrow_available: false`` tag — the same honesty discipline as
``coordination_overhead_only``.

The Table 6.2 workload (and the tiny smoke) also runs the
**incremental scenario**: the workload split into a base prefix plus
append batches, the base stream-encoded and mined once through
``setm-incremental`` with a state directory, then each batch appended
(``EncodedDataset.append_chunks``) and re-mined three ways — delta-only
against the saved state, a full rebuild through the same engine into a
fresh state directory (the ``delta_speedup`` denominator: both paths
end with the result *and* a state covering the grown dataset, so the
ratio is a like-for-like materialized-view refresh comparison), and
from scratch through plain ``setm-columnar`` (recorded transparently
as ``columnar_seconds``).  Every batch's delta result must be
byte-identical (patterns *and* iteration statistics) to both re-mines
before anything is recorded, and the scenario's ``aggregate_speedup``
(total rebuild time over total delta time across all batches, serial
vs serial — honest on any host) must clear the scenario's floor: 3x on
the retail workload, a reduced floor on the tiny smoke where fixed
state-handling costs dominate.  Per-batch speedups are recorded but
not individually floored — whether a batch crosses a support boundary
(triggering borderline recounts) is data-dependent, and the acceptance
bar is the scenario, not the luckiest batch.  Both the runner and
``--validate`` enforce the aggregate floor.

Unlike the ``pytest-benchmark`` suites in this directory (which
regenerate the paper's figures), this is a plain script so CI and
humans can run it without plugins::

    PYTHONPATH=src python benchmarks/run_bench.py            # full, ~1 min
    PYTHONPATH=src python benchmarks/run_bench.py --tiny     # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --validate BENCH_setm.json

Every run differentially checks that both engines found identical
patterns before recording a single number.  ``--validate`` checks an
existing results file against the schema (used by the CI smoke step;
deliberately no timing assertions — CI machines are noisy).
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.incremental import setm_incremental  # noqa: E402
from repro.core.setm import setm  # noqa: E402
from repro.core.setm_columnar import setm_columnar  # noqa: E402
from repro.core.setm_columnar_disk import setm_columnar_disk  # noqa: E402
from repro.core.setm_parallel import setm_parallel  # noqa: E402
from repro.core.setm_spill_parallel import setm_spill_parallel  # noqa: E402
from repro.core.columns import InstanceRelation  # noqa: E402
from repro.core.transactions import TransactionDatabase  # noqa: E402
from repro.data.ingest import stream_encode  # noqa: E402
from repro.data.formats import open_chunk_source  # noqa: E402
from repro.data.io import read_sales_csv, write_basket_file  # noqa: E402
from repro.data.quest import QuestConfig, generate_quest_dataset  # noqa: E402
from repro.data.retail import generate_retail_dataset  # noqa: E402
from repro.serve.protocol import result_payload  # noqa: E402
from repro.serve.service import MiningService  # noqa: E402

SCHEMA_VERSION = 8
ENGINES = {"setm": setm, "setm-columnar": setm_columnar}

#: Worker counts swept per workload (setm-parallel, differentially
#: checked per run).  Only the Table 6.2 retail workload and the
#: largest QUEST workload carry the sweep by default; ``--workers N``
#: narrows it to {1, N} and extends it to the tiny smoke.
WORKER_SWEEPS = {
    "table6.2-retail": (1, 2, 4),
    "quest-T10.I4.D10K": (1, 2, 4),
}

#: Workloads carrying the combined constrained-memory × worker sweep
#: (setm-spill-parallel under the workload's CONSTRAINED_BUDGETS entry).
SPILL_PARALLEL_SWEEPS = {
    "table6.2-retail": (1, 2, 4),
}

#: Workloads carrying the transport sweep (setm-parallel across payload
#: transports, ``pickle`` first — it is the reduction baseline).
TRANSPORT_SWEEPS = {
    "table6.2-retail": ("pickle", "shm", "mmap"),
}

#: Worker counts each transport is swept across (``--workers N``
#: narrows this to {1, N} alongside the worker sweep).
TRANSPORT_SWEEP_WORKERS = (1, 2, 4)

#: The acceptance floor for the non-pickle transports: at least this
#: fraction of the pickle transport's task+reply bytes must have left
#: the pickle stream (byte counters are deterministic — this holds on
#: any host, unlike wall-clock speedups).
TRANSPORT_REDUCTION_FLOOR = 0.5

#: Client counts swept through the in-process serve scenario (the tiny
#: smoke carries it so CI validates the schema branch on every push).
SERVE_SWEEPS = {
    "table6.2-retail": (1, 4),
    "quest-T5.I2.D300-tiny": (1, 4),
}

#: Requests each serve-scenario client issues inside the timed window.
SERVE_REQUESTS_PER_CLIENT = 8

#: Ingest-scenario parameters per workload: the decoder chunk size and
#: the encoder memory budget (both sized to force >= 4 decode chunks
#: and real spilling at the workload's scale).
INGEST_SCENARIOS = {
    "table6.2-retail": {"chunk_rows": 32768, "memory_budget_bytes": 2**20},
    "quest-T5.I2.D300-tiny": {
        "chunk_rows": 256, "memory_budget_bytes": 16 * 1024,
    },
}

#: Incremental-scenario parameters per workload: how much of the
#: workload forms the mined base prefix, how many append batches the
#: remainder splits into, the decode chunk size, and the per-workload
#: ``delta_speedup`` floor.  The retail floor is the PR's acceptance
#: bar (3x); the tiny smoke keeps a reduced floor because at smoke
#: scale fixed state-handling costs dominate the delta work.
INCREMENTAL_SCENARIOS = {
    "table6.2-retail": {
        "base_fraction": 0.96,
        "batches": 2,
        "chunk_rows": 32768,
        "speedup_floor": 3.0,
    },
    "quest-T5.I2.D300-tiny": {
        "base_fraction": 0.9,
        "chunk_rows": 256,
        "batches": 2,
        # At smoke scale (15-transaction batches, every batch growing
        # the catalog) fixed state I/O dominates the delta work, and
        # the smoke runs on noisy CI machines with --rounds 1 — so its
        # floor only guards against gross regressions (delta taking
        # multiples of the rebuild).  The 3x perf claim lives on the
        # retail workload, measured best-of-rounds on a quiet host.
        "speedup_floor": 0.5,
    },
}

#: The acceptance floor a non-tiny incremental scenario must carry:
#: delta-only re-mining must beat the from-scratch re-mine by at least
#: this factor on the Table 6.2 append workload.
INCREMENTAL_SPEEDUP_FLOOR = 3.0

#: Acceptance floor for the ingest scenario's deterministic savings:
#: the projected CSV fields must skip >= 30% of the decode bytes, and a
#: Parquet read (when pyarrow is present) must skip >= 30% of the file.
INGEST_REDUCTION_FLOOR = 0.3

#: The tiny smoke forces the pool path at smoke scale (its R'_k are far
#: below the engine's default parallel threshold).
TINY_WORKLOAD = "quest-T5.I2.D300-tiny"

#: Constrained-memory scenario budgets (bytes) per workload.  2 MiB on
#: the Table 6.2 retail workload forces 4 spill partitions on R'_2 (the
#: acceptance floor is 2); the tiny smoke uses 64 KiB for the same
#: reason at its scale.  Overridable with --memory-budget.
CONSTRAINED_BUDGETS = {
    "table6.2-retail": 2 * 2**20,
    "quest-T5.I2.D300-tiny": 64 * 1024,
}

#: The acceptance bar this PR's kernel was built against (recorded in
#: the output for context; never asserted here — see --validate).
TARGET_SPEEDUP = 3.0


def _workloads(tiny: bool):
    """Yield ``(name, database_factory, minsup)`` benchmark workloads."""
    if tiny:
        yield (
            "quest-T5.I2.D300-tiny",
            lambda: generate_quest_dataset(
                QuestConfig(
                    num_transactions=300, avg_transaction_len=5,
                    avg_pattern_len=2,
                )
            ),
            0.02,
        )
        return
    # The Table 6.2 workload: the full calibrated retail database at the
    # paper's 0.5% minimum-support grid point.
    yield ("table6.2-retail", generate_retail_dataset, 0.005)
    yield (
        "quest-T5.I2.D10K",
        lambda: generate_quest_dataset(
            QuestConfig(avg_transaction_len=5, avg_pattern_len=2)
        ),
        0.01,
    )
    yield (
        "quest-T10.I4.D10K",
        lambda: generate_quest_dataset(
            QuestConfig(avg_transaction_len=10, avg_pattern_len=4)
        ),
        0.01,
    )


def _bench_engine(
    runner, database, minsup: float, rounds: int, **options
) -> dict:
    """Best-of-``rounds`` measurements for one engine on one workload.

    Timing rounds run unmetered; one extra metered run records the
    loop's peak memory without contaminating the wall-clock numbers.
    """
    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = runner(database, minsup, measure_memory=False, **options)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    metered = runner(database, minsup, **options)
    candidate_rows = sum(
        stats.candidate_instances for stats in result.iterations
    )
    return {
        "result": result,
        "measurements": {
            "elapsed_seconds": round(elapsed, 6),
            "iteration_seconds": {
                str(k): round(seconds, 6)
                for k, seconds in result.extra.get(
                    "iteration_seconds", {}
                ).items()
            },
            "peak_r_prime_instances": max(
                stats.candidate_instances for stats in result.iterations
            ),
            "total_candidate_instances": candidate_rows,
            "rows_per_second": (
                round(candidate_rows / elapsed) if elapsed > 0 else None
            ),
            "patterns": sum(
                len(rel) for rel in result.count_relations.values()
            ),
            "max_pattern_length": result.max_pattern_length,
            "peak_memory_bytes": metered.extra["peak_memory_bytes"],
        },
        "metered_result": metered,
    }


def _bench_constrained(
    name: str,
    database,
    minsup: float,
    budget: int,
    reference,
    rounds: int,
) -> dict:
    """The out-of-core scenario: setm-columnar-disk under ``budget`` bytes.

    Refuses to record anything unless the budget actually forced at
    least two spill partitions and the results are identical to the
    reference engine's (patterns *and* iteration statistics).
    """
    bench = _bench_engine(
        setm_columnar_disk,
        database,
        minsup,
        rounds,
        memory_budget_bytes=budget,
    )
    metered = bench["metered_result"]
    spill = metered.extra["spill"]
    if spill["max_partitions"] < 2:
        raise SystemExit(
            f"constrained-memory scenario on {name}: budget {budget} forced "
            f"only {spill['max_partitions']} spill partitions (need >= 2)"
        )
    if not (
        reference.same_patterns_as(metered)
        and reference.iterations == metered.iterations
    ):
        raise SystemExit(
            f"constrained-memory scenario on {name}: setm-columnar-disk "
            "disagrees with setm; refusing to record"
        )
    print(
        f"  constrained ({budget >> 10} KiB budget): "
        f"{bench['measurements']['elapsed_seconds']:.3f}s, "
        f"partitions {spill['partitions']}, "
        f"peak {metered.extra['peak_memory_bytes']:,} bytes",
        flush=True,
    )
    return {
        "engine": "setm-columnar-disk",
        "memory_budget_bytes": budget,
        "elapsed_seconds": bench["measurements"]["elapsed_seconds"],
        "peak_memory_bytes": metered.extra["peak_memory_bytes"],
        "spill_partitions": {
            str(k): p for k, p in spill["partitions"].items()
        },
        "max_partitions": spill["max_partitions"],
        "spill_bytes_written": spill["bytes_written"],
        "agreement": True,
    }


def _tag_single_cpu(
    entry: dict, speedup_key: str, *, count_key: str = "workers"
) -> bool:
    """Refuse to record a ≥ 2-way "speedup" measured on one CPU.

    On a single-CPU host a multi-worker (or multi-client) run can only
    measure coordination overhead; recording its sub-1x ratio as a
    speedup would read as a regression in the committed baseline.
    Such rows get ``speedup_key`` nulled and an explicit
    ``coordination_overhead_only`` tag instead (ROADMAP carries the
    multi-core re-run item).  Returns True when the row was tagged.
    """
    if os.cpu_count() == 1 and entry[count_key] > 1:
        entry[speedup_key] = None
        entry["coordination_overhead_only"] = True
        return True
    return False


def _bench_spill_parallel(
    name: str,
    database,
    minsup: float,
    budget: int,
    sweep: tuple[int, ...],
    reference,
    spill_serial_elapsed: float,
    rounds: int,
) -> dict:
    """The combined scenario: ``setm-spill-parallel`` budget × workers.

    Every run is differentially checked against the ``setm`` reference,
    must actually have spilled (≥ 2 partitions — otherwise the budget
    measured nothing), and, above one worker, must actually have sent
    partitions to the pool.  Speedups are against ``setm-columnar-disk``
    at the *same* budget — the serial engine it shares the whole spill
    pipeline with — and carry the single-CPU tagging.
    """
    runs = []
    for workers in sweep:
        bench = _bench_engine(
            setm_spill_parallel,
            database,
            minsup,
            rounds,
            memory_budget_bytes=budget,
            workers=workers,
        )
        metered = bench["metered_result"]
        if not (
            reference.same_patterns_as(metered)
            and reference.iterations == metered.iterations
        ):
            raise SystemExit(
                f"spill-parallel sweep on {name}: setm-spill-parallel with "
                f"{workers} workers disagrees with setm; refusing to record"
            )
        spill = metered.extra["spill"]
        parallel = metered.extra["parallel"]
        if spill["max_partitions"] < 2:
            raise SystemExit(
                f"spill-parallel sweep on {name}: budget {budget} forced "
                f"only {spill['max_partitions']} partitions (need >= 2)"
            )
        if workers > 1 and not parallel["parallel_iterations"]:
            raise SystemExit(
                f"spill-parallel sweep on {name}: {workers} workers never "
                "reached the pool; nothing measured"
            )
        elapsed = bench["measurements"]["elapsed_seconds"]
        speedup = (
            round(spill_serial_elapsed / elapsed, 3) if elapsed > 0 else None
        )
        entry = {
            "workers": workers,
            "elapsed_seconds": elapsed,
            "peak_memory_bytes": bench["measurements"]["peak_memory_bytes"],
            "partitions": {
                str(k): p for k, p in spill["partitions"].items()
            },
            "parallel_iterations": parallel["parallel_iterations"],
            "spill_bytes_written": spill["bytes_written"],
            "speedup_vs_spill_serial": speedup,
            "agreement": True,
        }
        note = _tag_single_cpu(entry, "speedup_vs_spill_serial")
        print(
            f"  spill-parallel workers={workers}: {elapsed:.3f}s, "
            f"pooled iterations {parallel['parallel_iterations']}, "
            + (
                f"{entry['speedup_vs_spill_serial']}x vs setm-columnar-disk"
                if not note
                else "coordination overhead only (1 CPU)"
            ),
            flush=True,
        )
        runs.append(entry)
    return {
        "engine": "setm-spill-parallel",
        "memory_budget_bytes": budget,
        "cpus": os.cpu_count(),
        "runs": runs,
    }


def _bench_transport_sweep(
    name: str,
    database,
    minsup: float,
    transports: tuple[str, ...],
    sweep: tuple[int, ...],
    reference,
    *,
    parallel_threshold: int | None = None,
) -> dict:
    """The transport scenario: ``setm-parallel`` across payload transports.

    One timed run per (transport, workers) cell — the interesting
    numbers here are the *byte counters*, which are deterministic, so
    best-of-N timing rounds would only slow the bench down.  The
    ``pickle`` rows are the baseline: every other row's
    ``bytes_copied_reduction`` is the fraction of pickle-stream bytes
    (task payloads + reply buffers) the transport moved out-of-band,
    and anything below :data:`TRANSPORT_REDUCTION_FLOOR` on a pooled
    run aborts the bench.  Wall-clock ratios carry the standard
    single-CPU ``coordination_overhead_only`` tagging.
    """
    if transports[0] != "pickle":
        raise SystemExit(
            f"transport sweep on {name}: 'pickle' must come first "
            "(it is the bytes_copied_reduction baseline)"
        )
    options: dict = {"measure_memory": False}
    if parallel_threshold is not None:
        options["parallel_threshold"] = parallel_threshold
    pickle_rows: dict[int, dict] = {}  # workers -> baseline entry
    runs = []
    for transport in transports:
        for workers in sweep:
            started = time.perf_counter()
            result = setm_parallel(
                database,
                minsup,
                workers=workers,
                transport=transport,
                **options,
            )
            elapsed = round(time.perf_counter() - started, 6)
            if not (
                reference.same_patterns_as(result)
                and reference.iterations == result.iterations
            ):
                raise SystemExit(
                    f"transport sweep on {name}: setm-parallel over "
                    f"{transport!r} with {workers} workers disagrees with "
                    "setm; refusing to record"
                )
            block = result.extra["transport"]
            pickled_bytes = (
                block["task_bytes_inline"] + block["reply_bytes_inline"]
            )
            entry = {
                "transport": transport,
                "workers": workers,
                "mode": block["mode"],
                "elapsed_seconds": elapsed,
                "pickled_bytes": pickled_bytes,
                "task_bytes_inline": block["task_bytes_inline"],
                "task_bytes_shared": block["task_bytes_shared"],
                "task_bytes_spooled": block["task_bytes_spooled"],
                "reply_bytes_inline": block["reply_bytes_inline"],
                "reply_bytes_shared": block["reply_bytes_shared"],
                "zero_copy_bytes": block["zero_copy_bytes"],
                "bytes_copied_reduction": None,
                "speedup_vs_pickle": None,
                "agreement": True,
            }
            if transport == "pickle":
                pickle_rows[workers] = entry
            else:
                baseline = pickle_rows.get(workers)
                if workers > 1:
                    if baseline is None or baseline["pickled_bytes"] <= 0:
                        raise SystemExit(
                            f"transport sweep on {name}: no pickle-transport "
                            f"bytes at {workers} workers to compare against "
                            "(the pool never ran); nothing measured"
                        )
                    reduction = round(
                        1 - pickled_bytes / baseline["pickled_bytes"], 4
                    )
                    if reduction < TRANSPORT_REDUCTION_FLOOR:
                        raise SystemExit(
                            f"transport sweep on {name}: {transport!r} at "
                            f"{workers} workers moved only "
                            f"{reduction:.0%} of the pickle bytes "
                            "out-of-band (floor "
                            f"{TRANSPORT_REDUCTION_FLOOR:.0%}); "
                            "refusing to record"
                        )
                    entry["bytes_copied_reduction"] = reduction
                    if baseline["elapsed_seconds"] > 0 and elapsed > 0:
                        entry["speedup_vs_pickle"] = round(
                            baseline["elapsed_seconds"] / elapsed, 3
                        )
            tagged = _tag_single_cpu(entry, "speedup_vs_pickle")
            reduction = entry["bytes_copied_reduction"]
            print(
                f"  transport={transport} workers={workers}: {elapsed:.3f}s"
                + (
                    f", {reduction:.0%} fewer pickled bytes"
                    if reduction is not None
                    else ""
                )
                + (
                    ""
                    if not tagged
                    else " (timing is coordination overhead only, 1 CPU)"
                ),
                flush=True,
            )
            runs.append(entry)
    return {
        "engine": "setm-parallel",
        "cpus": os.cpu_count(),
        "parallel_threshold": parallel_threshold,
        "reduction_floor": TRANSPORT_REDUCTION_FLOOR,
        "runs": runs,
    }


def _bench_serve(
    name: str,
    database,
    minsup: float,
    sweep: tuple[int, ...],
    reference,
    direct_elapsed: float,
) -> dict:
    """The serving scenario: N concurrent clients vs the direct Miner.

    An in-process ``MiningService`` hosts the workload's database with
    result caching *disabled* (``cache_entries=0``) so every request
    pays the full mining cost — the honest comparison against the
    direct single-threaded ``setm-columnar`` run.  Each client issues
    ``SERVE_REQUESTS_PER_CLIENT`` back-to-back ``mine`` requests;
    every response's result document must serialize byte-identically
    to the direct run's before anything is recorded.
    """
    expected = json.dumps(result_payload(reference), sort_keys=True)
    payload = {
        "op": "mine",
        "dataset": name,
        "config": {
            "support": minsup,
            "algorithm": "setm-columnar",
            # Unmetered, like the direct timing rounds (tracemalloc
            # taxes every allocation and would poison the latencies).
            "options": {"measure_memory": False},
        },
    }
    direct_rps = 1.0 / direct_elapsed if direct_elapsed > 0 else None
    runs = []
    for clients in sweep:
        service = MiningService(
            {name: database},
            queue_depth=max(8, 2 * clients),
            workers=clients,
            default_timeout=600.0,
            cache_entries=0,
        )
        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(clients)

        def client_loop():
            try:
                barrier.wait(timeout=60)
                mine = []
                for _ in range(SERVE_REQUESTS_PER_CLIENT):
                    started = time.perf_counter()
                    status, document = service.handle(payload)
                    elapsed = time.perf_counter() - started
                    if status != 200:
                        raise RuntimeError(
                            f"request failed: {status} {document}"
                        )
                    served = json.dumps(
                        document["result"], sort_keys=True
                    )
                    if served != expected:
                        raise RuntimeError(
                            "served result differs from the direct run"
                        )
                    mine.append(elapsed)
                with lock:
                    latencies.extend(mine)
            except Exception as exc:  # recorded, re-raised by the driver
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")

        try:
            # Warm-up (and first differential check) outside the clock.
            status, document = service.handle(payload)
            if status != 200 or (
                json.dumps(document["result"], sort_keys=True) != expected
            ):
                raise SystemExit(
                    f"serve scenario on {name}: warm-up response "
                    "disagrees with the direct run; refusing to record"
                )
            threads = [
                threading.Thread(target=client_loop, daemon=True)
                for _ in range(clients)
            ]
            wall_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_started
        finally:
            service.drain()
        if failures:
            raise SystemExit(
                f"serve scenario on {name} with {clients} clients: "
                + "; ".join(failures)
            )
        total = clients * SERVE_REQUESTS_PER_CLIENT
        ordered = sorted(latencies)
        p50 = ordered[(total - 1) // 2]
        p95 = ordered[int(0.95 * (total - 1))]
        throughput = total / wall if wall > 0 else None
        entry = {
            "clients": clients,
            "requests": total,
            "p50_seconds": round(p50, 6),
            "p95_seconds": round(p95, 6),
            "throughput_rps": (
                round(throughput, 3) if throughput is not None else None
            ),
            "throughput_vs_direct": (
                round(throughput / direct_rps, 3)
                if throughput is not None and direct_rps
                else None
            ),
            "agreement": True,
        }
        note = _tag_single_cpu(
            entry, "throughput_vs_direct", count_key="clients"
        )
        print(
            f"  serve clients={clients}: p50 {entry['p50_seconds']:.3f}s, "
            f"p95 {entry['p95_seconds']:.3f}s, "
            f"{entry['throughput_rps']} req/s"
            + (
                f" ({entry['throughput_vs_direct']}x direct)"
                if not note
                else " (coordination overhead only, 1 CPU)"
            ),
            flush=True,
        )
        runs.append(entry)
    return {
        "engine": "setm-columnar",
        "cpus": os.cpu_count(),
        "direct_seconds_per_request": direct_elapsed,
        "requests_per_client": SERVE_REQUESTS_PER_CLIENT,
        "runs": runs,
    }


def _write_wide_sales_csv(database, path: Path) -> None:
    """The workload as a *wide* CSV: real exports carry extra columns.

    The ``store`` and ``basket_size`` columns are deterministic junk
    beside the projected ``trans_id``/``item`` pair — they are what the
    ingest scenario's ``bytes_decoded_reduction`` measures skipping.
    """
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["store", "trans_id", "basket_size", "item"])
        for txn in database:
            store = f"store-{txn.trans_id % 97:05d}"
            for item in txn.items:
                writer.writerow([store, txn.trans_id, len(txn.items), item])


def _metered_stream_encode(path: Path, fmt: str, chunk_rows: int, budget: int):
    """One stream-encode with its tracemalloc peak: ``(dataset, peak)``."""
    source = open_chunk_source(path, input_format=fmt, chunk_rows=chunk_rows)
    tracemalloc.start()
    try:
        dataset = stream_encode(source, memory_budget_bytes=budget)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return dataset, peak


def _ingest_leg(
    name: str,
    fmt: str,
    path: Path,
    chunk_rows: int,
    budget: int,
    minsup: float,
    reference,
    whole_file_peak: int,
    reference_keys: bytes,
) -> dict:
    """One format's pass through the ingest scenario, fully checked."""
    started = time.perf_counter()
    dataset, peak = _metered_stream_encode(path, fmt, chunk_rows, budget)
    elapsed = round(time.perf_counter() - started, 6)
    stats = dataset.stats
    if stats.chunks < 4:
        raise SystemExit(
            f"ingest scenario on {name}: {fmt} decoded in only "
            f"{stats.chunks} chunks (need >= 4); shrink chunk_rows"
        )
    if bytes(dataset.sales_relation().keys) != reference_keys:
        raise SystemExit(
            f"ingest scenario on {name}: {fmt} chunked encode differs "
            "from the whole-file encode; refusing to record"
        )
    mined = setm_columnar(dataset, minsup, measure_memory=False)
    if not (
        reference.same_patterns_as(mined)
        and reference.iterations == mined.iterations
    ):
        raise SystemExit(
            f"ingest scenario on {name}: mining the streamed {fmt} "
            "dataset disagrees with setm; refusing to record"
        )
    if peak >= whole_file_peak:
        raise SystemExit(
            f"ingest scenario on {name}: {fmt} streaming peak "
            f"({peak:,} bytes) did not beat the whole-file peak "
            f"({whole_file_peak:,} bytes); nothing saved"
        )
    dataset.close()
    entry = {
        "format": fmt,
        "chunk_rows": chunk_rows,
        "memory_budget_bytes": budget,
        "elapsed_seconds": elapsed,
        "chunks": stats.chunks,
        "rows": stats.rows,
        "spilled_chunks": stats.spilled_chunks,
        "bytes_total": stats.bytes_total,
        "bytes_read": stats.bytes_read,
        "bytes_decoded": stats.bytes_decoded,
        "bytes_read_reduction": stats.bytes_read_reduction,
        "bytes_decoded_reduction": stats.bytes_decoded_reduction,
        "peak_ingest_memory_bytes": peak,
        "peak_memory_reduction": round(1 - peak / whole_file_peak, 4),
        "agreement": True,
    }
    print(
        f"  ingest {fmt}: {stats.chunks} chunks, "
        f"{stats.bytes_decoded_reduction:.0%} fewer bytes decoded, "
        f"{stats.bytes_read_reduction:.0%} fewer bytes read, "
        f"peak {peak:,} vs {whole_file_peak:,} bytes",
        flush=True,
    )
    return entry


def _bench_ingest(
    name: str,
    database,
    minsup: float,
    reference,
    *,
    chunk_rows: int,
    memory_budget_bytes: int,
) -> dict:
    """The streaming-ingest scenario: bounded chunked encode, end to end.

    Every leg must decode in >= 4 chunks, reproduce the whole-file
    ``R_1`` bytes exactly, mine (``setm-columnar`` directly over the
    ``EncodedDataset``) to the ``setm`` reference, and beat the
    whole-file path's tracemalloc peak.  The CSV leg's decoded-byte
    saving comes from field projection over the wide CSV and must clear
    :data:`INGEST_REDUCTION_FLOOR`; the Parquet leg (optional
    ``pyarrow``) gets real read pushdown and holds
    ``bytes_read_reduction`` to the same floor.  Without pyarrow the
    Parquet leg records ``null`` plus ``pyarrow_available: false`` —
    never a fabricated number.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as tmp:
        csv_path = Path(tmp) / "sales-wide.csv"
        _write_wide_sales_csv(database, csv_path)

        # The whole-file baseline both legs must beat: read, encode,
        # build R_1 — the three O(dataset) residents of the classic path.
        tracemalloc.start()
        try:
            whole_db = read_sales_csv(csv_path)
            _, catalog = whole_db.encoded()
            whole_relation = InstanceRelation.sales_from_database(
                whole_db, catalog
            )
            _, whole_file_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        reference_keys = bytes(whole_relation.keys)
        del whole_db, whole_relation

        csv_leg = _ingest_leg(
            name,
            "csv",
            csv_path,
            chunk_rows,
            memory_budget_bytes,
            minsup,
            reference,
            whole_file_peak,
            reference_keys,
        )
        if csv_leg["bytes_decoded_reduction"] < INGEST_REDUCTION_FLOOR:
            raise SystemExit(
                f"ingest scenario on {name}: CSV field projection skipped "
                f"only {csv_leg['bytes_decoded_reduction']:.0%} of the "
                f"decode bytes (floor {INGEST_REDUCTION_FLOOR:.0%})"
            )

        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError:
            pa = None
        parquet_leg = None
        if pa is not None:
            parquet_path = Path(tmp) / "sales-wide.parquet"
            columns: dict[str, list] = {
                "store": [], "trans_id": [], "basket_size": [], "item": [],
            }
            for txn in database:
                store = f"store-{txn.trans_id % 97:05d}"
                for item in txn.items:
                    columns["store"].append(store)
                    columns["trans_id"].append(txn.trans_id)
                    columns["basket_size"].append(len(txn.items))
                    columns["item"].append(item)
            pq.write_table(pa.table(columns), parquet_path)
            parquet_leg = _ingest_leg(
                name,
                "parquet",
                parquet_path,
                chunk_rows,
                memory_budget_bytes,
                minsup,
                reference,
                whole_file_peak,
                reference_keys,
            )
            if parquet_leg["bytes_read_reduction"] < INGEST_REDUCTION_FLOOR:
                raise SystemExit(
                    f"ingest scenario on {name}: Parquet projection "
                    "pushdown skipped only "
                    f"{parquet_leg['bytes_read_reduction']:.0%} of the file "
                    f"(floor {INGEST_REDUCTION_FLOOR:.0%})"
                )
        else:
            print(
                "  ingest parquet: skipped (pyarrow not installed)",
                flush=True,
            )
    return {
        "reduction_floor": INGEST_REDUCTION_FLOOR,
        "pyarrow_available": pa is not None,
        "peak_whole_file_memory_bytes": whole_file_peak,
        "csv": csv_leg,
        "parquet": parquet_leg,
    }


def _bench_incremental(
    name: str,
    database,
    minsup: float,
    rounds: int,
    *,
    base_fraction: float,
    batches: int,
    chunk_rows: int,
    speedup_floor: float,
) -> dict:
    """The incremental scenario: delta-only re-mining under appends.

    The workload splits into a base prefix plus ``batches`` append
    batches.  The base is stream-encoded and mined once through
    ``setm-incremental`` with a state directory; each batch is then
    appended in place and re-mined three ways — delta-only against the
    saved state (restored from a snapshot between timing rounds, since
    a delta mine advances the state), a full rebuild through the same
    engine into a fresh state directory (the ``delta_speedup``
    denominator — both paths deliver the result plus a state covering
    the grown dataset), and from scratch through plain
    ``setm-columnar`` (recorded as ``columnar_seconds`` so the
    cross-engine cost stays visible).  Every batch refuses to record
    unless the delta result matches both re-mines byte for byte, and
    the whole scenario refuses to record unless the aggregate speedup
    (total rebuild time over total delta time) clears
    ``speedup_floor``.  All mines are serial, so the ratio is honest
    on any host — no ``coordination_overhead_only`` tagging needed.
    """
    txns = list(database)
    base_count = max(1, int(len(txns) * base_fraction))
    remaining = txns[base_count:]
    if len(remaining) < batches:
        raise SystemExit(
            f"incremental scenario on {name}: only {len(remaining)} "
            f"transactions left for {batches} append batches"
        )
    with tempfile.TemporaryDirectory(prefix="repro-bench-incr-") as tmp:
        root = Path(tmp)
        state_dir = root / "state"

        def _write_split(split, index):
            path = root / f"split{index}.basket"
            write_basket_file(
                TransactionDatabase(
                    (txn.trans_id, txn.items) for txn in split
                ),
                path,
            )
            return path

        base_path = _write_split(txns[:base_count], 0)
        dataset = stream_encode(
            open_chunk_source(base_path, chunk_rows=chunk_rows)
        )
        try:
            started = time.perf_counter()
            base_result = setm_incremental(
                dataset,
                minsup,
                state_dir=state_dir,
                measure_memory=False,
            )
            base_elapsed = round(time.perf_counter() - started, 6)
            if base_result.extra["incremental"]["mode"] != "full":
                raise SystemExit(
                    f"incremental scenario on {name}: base mine did not "
                    "run the full path"
                )
            print(
                f"  incremental base: {base_count:,} transactions mined in "
                f"{base_elapsed:.3f}s (state materialized)",
                flush=True,
            )

            step = len(remaining) / batches
            runs = []
            for batch in range(batches):
                split = remaining[
                    round(batch * step) : round((batch + 1) * step)
                ]
                path = _write_split(split, batch + 1)
                dataset.append_chunks(
                    open_chunk_source(path, chunk_rows=chunk_rows)
                )

                columnar_best = None
                columnar_result = None
                for _ in range(rounds):
                    started = time.perf_counter()
                    candidate = setm_columnar(
                        dataset, minsup, measure_memory=False
                    )
                    elapsed = time.perf_counter() - started
                    if columnar_best is None or elapsed < columnar_best:
                        columnar_best, columnar_result = elapsed, candidate

                # The full rebuild mines the grown dataset from scratch
                # through the same engine into a fresh state directory:
                # the honest refresh denominator, since both it and the
                # delta path end with the result *and* a current state.
                full_best = None
                full_result = None
                for attempt in range(rounds):
                    rebuild_dir = root / f"rebuild-{batch}-{attempt}"
                    started = time.perf_counter()
                    candidate = setm_incremental(
                        dataset,
                        minsup,
                        state_dir=rebuild_dir,
                        measure_memory=False,
                    )
                    elapsed = time.perf_counter() - started
                    shutil.rmtree(rebuild_dir)
                    if full_best is None or elapsed < full_best:
                        full_best, full_result = elapsed, candidate
                if full_result.extra["incremental"]["mode"] != "full":
                    raise SystemExit(
                        f"incremental scenario on {name}: batch {batch} "
                        "rebuild did not run the full path"
                    )

                # A delta mine advances the state to cover the grown
                # dataset, so timing rounds restore it from a snapshot.
                snapshot = root / f"state-pre-batch{batch}"
                shutil.copytree(state_dir, snapshot)
                delta_best = None
                delta_result = None
                for _ in range(rounds):
                    shutil.rmtree(state_dir)
                    shutil.copytree(snapshot, state_dir)
                    started = time.perf_counter()
                    candidate = setm_incremental(
                        dataset,
                        minsup,
                        state_dir=state_dir,
                        measure_memory=False,
                    )
                    elapsed = time.perf_counter() - started
                    if delta_best is None or elapsed < delta_best:
                        delta_best, delta_result = elapsed, candidate

                telemetry = delta_result.extra["incremental"]
                if telemetry["mode"] != "delta":
                    raise SystemExit(
                        f"incremental scenario on {name}: batch {batch} "
                        "never took the delta path; nothing measured"
                    )
                for label, reference in (
                    ("full-rebuild", full_result),
                    ("from-scratch columnar", columnar_result),
                ):
                    if not (
                        reference.same_patterns_as(delta_result)
                        and reference.iterations == delta_result.iterations
                    ):
                        raise SystemExit(
                            f"incremental scenario on {name}: batch "
                            f"{batch} delta re-mine disagrees with the "
                            f"{label} re-mine; refusing to record"
                        )
                if delta_best <= 0:
                    raise SystemExit(
                        f"incremental scenario on {name}: batch {batch} "
                        "delta mine measured no time; refusing to record"
                    )
                speedup = round(full_best / delta_best, 3)
                entry = {
                    "batch": batch,
                    "delta_transactions": telemetry["delta_transactions"],
                    "delta_rows": telemetry["delta_rows"],
                    "total_rows": telemetry["total_rows"],
                    "state_hits": telemetry["state_hits"],
                    "recount_fraction": telemetry["recount_fraction"],
                    "base_rows_rescanned": telemetry["base_rows_rescanned"],
                    "delta_seconds": round(delta_best, 6),
                    "full_remine_seconds": round(full_best, 6),
                    "columnar_seconds": round(columnar_best, 6),
                    "delta_speedup": speedup,
                    "agreement": True,
                }
                print(
                    f"  incremental batch {batch}: "
                    f"+{telemetry['delta_transactions']:,} transactions, "
                    f"delta {delta_best:.3f}s vs rebuild {full_best:.3f}s "
                    f"({speedup}x; columnar {columnar_best:.3f}s)",
                    flush=True,
                )
                runs.append(entry)
        finally:
            dataset.close()
    total_delta = sum(entry["delta_seconds"] for entry in runs)
    total_full = sum(entry["full_remine_seconds"] for entry in runs)
    aggregate = round(total_full / total_delta, 3) if total_delta else None
    if aggregate is None or aggregate < speedup_floor:
        raise SystemExit(
            f"incremental scenario on {name}: aggregate delta speedup "
            f"{aggregate} below the {speedup_floor}x floor; refusing "
            "to record"
        )
    print(
        f"  incremental aggregate: {aggregate}x (floor {speedup_floor}x)",
        flush=True,
    )
    return {
        "engine": "setm-incremental",
        "full_remine_engine": "setm-incremental (rebuild)",
        "base_transactions": base_count,
        "base_seconds": base_elapsed,
        "batches": batches,
        "chunk_rows": chunk_rows,
        "speedup_floor": speedup_floor,
        "aggregate_speedup": aggregate,
        "runs": runs,
    }


def _bench_worker_sweep(
    name: str,
    database,
    minsup: float,
    sweep: tuple[int, ...],
    reference,
    columnar_elapsed: float,
    rounds: int,
    *,
    parallel_threshold: int | None = None,
) -> dict:
    """The parallel scenario: ``setm-parallel`` across worker counts.

    Every run is differentially checked against the ``setm`` reference;
    the sweep's largest worker count must actually have sent iterations
    to the pool (otherwise the numbers would measure nothing).
    """
    options: dict = {}
    if parallel_threshold is not None:
        options["parallel_threshold"] = parallel_threshold
    runs = []
    for workers in sweep:
        bench = _bench_engine(
            setm_parallel, database, minsup, rounds, workers=workers, **options
        )
        metered = bench["metered_result"]
        if not (
            reference.same_patterns_as(metered)
            and reference.iterations == metered.iterations
        ):
            raise SystemExit(
                f"worker sweep on {name}: setm-parallel with "
                f"{workers} workers disagrees with setm; refusing to record"
            )
        parallel = metered.extra["parallel"]
        elapsed = bench["measurements"]["elapsed_seconds"]
        speedup = (
            round(columnar_elapsed / elapsed, 3) if elapsed > 0 else None
        )
        entry = {
            "workers": workers,
            "elapsed_seconds": elapsed,
            "iteration_seconds": bench["measurements"][
                "iteration_seconds"
            ],
            "peak_memory_bytes": bench["measurements"][
                "peak_memory_bytes"
            ],
            "partitions": {
                str(k): p for k, p in parallel["partitions"].items()
            },
            "parallel_iterations": parallel["parallel_iterations"],
            "speedup_vs_columnar": speedup,
            "agreement": True,
        }
        note = _tag_single_cpu(entry, "speedup_vs_columnar")
        print(
            f"  workers={workers}: {elapsed:.3f}s, "
            f"pooled iterations {parallel['parallel_iterations']}, "
            + (
                f"{entry['speedup_vs_columnar']}x vs setm-columnar"
                if not note
                else "coordination overhead only (1 CPU)"
            ),
            flush=True,
        )
        runs.append(entry)
    top = runs[-1]
    if sweep[-1] > 1 and not top["parallel_iterations"]:
        raise SystemExit(
            f"worker sweep on {name}: {sweep[-1]} workers never reached "
            "the pool (every iteration short-circuited); nothing measured"
        )
    return {
        "engine": "setm-parallel",
        "cpus": os.cpu_count(),
        "parallel_threshold": parallel_threshold,
        "runs": runs,
    }


def run(
    tiny: bool,
    rounds: int,
    memory_budget: int | None = None,
    workers: int | None = None,
    transport: str | None = None,
) -> dict:
    workloads = []
    for name, factory, minsup in _workloads(tiny):
        database = factory()
        print(
            f"[{name}] {database.num_transactions:,} transactions, "
            f"{database.num_sales_rows:,} rows, minsup {minsup:g}",
            flush=True,
        )
        engines: dict[str, dict] = {}
        results = {}
        for engine_name, runner in ENGINES.items():
            bench = _bench_engine(runner, database, minsup, rounds)
            results[engine_name] = bench["result"]
            engines[engine_name] = bench["measurements"]
            print(
                f"  {engine_name:>14}: "
                f"{bench['measurements']['elapsed_seconds']:.3f}s, "
                f"{bench['measurements']['patterns']} patterns",
                flush=True,
            )
        agreement = results["setm"].same_patterns_as(
            results["setm-columnar"]
        ) and results["setm"].iterations == results["setm-columnar"].iterations
        if not agreement:
            raise SystemExit(
                f"engine disagreement on {name}: refusing to record timings"
            )
        speedup = (
            engines["setm"]["elapsed_seconds"]
            / engines["setm-columnar"]["elapsed_seconds"]
            if engines["setm-columnar"]["elapsed_seconds"] > 0
            else None
        )
        print(f"  speedup: {speedup:.2f}x", flush=True)
        workload_entry = {
            "name": name,
            "minsup": minsup,
            "dataset": {
                "transactions": database.num_transactions,
                "sales_rows": database.num_sales_rows,
                "distinct_items": len(database.distinct_items()),
            },
            "engines": engines,
            "agreement": True,
            "speedup": round(speedup, 3) if speedup else None,
        }
        # --memory-budget overrides the budget of workloads that carry
        # the constrained scenario; it never adds the scenario to the
        # pure-timing workloads (where an arbitrary budget might not
        # force spilling and would abort the whole run).
        budget = CONSTRAINED_BUDGETS.get(name)
        if budget is not None and memory_budget is not None:
            budget = memory_budget
        if budget is not None:
            workload_entry["constrained_memory"] = _bench_constrained(
                name, database, minsup, budget, results["setm"], rounds
            )
        # --workers narrows the sweep to {1, N} and extends it to the
        # tiny smoke (with the pool forced on, since the smoke's R'_k
        # sit below the engine's default threshold).
        sweep = WORKER_SWEEPS.get(name, ())
        threshold = None
        if workers is not None:
            if name in WORKER_SWEEPS or name == TINY_WORKLOAD:
                sweep = tuple(sorted({1, workers}))
            if name == TINY_WORKLOAD:
                threshold = 0
        if sweep:
            workload_entry["worker_sweep"] = _bench_worker_sweep(
                name,
                database,
                minsup,
                sweep,
                results["setm"],
                engines["setm-columnar"]["elapsed_seconds"],
                rounds,
                parallel_threshold=threshold,
            )
        # The transport sweep: pickle vs shm vs mmap byte accounting
        # (--transport narrows it to {pickle, T} and extends it to the
        # tiny smoke, where the pool is forced on like the worker sweep).
        transport_sweep = TRANSPORT_SWEEPS.get(name, ())
        transport_threshold = None
        if transport is not None and (
            name in TRANSPORT_SWEEPS or name == TINY_WORKLOAD
        ):
            transport_sweep = tuple(
                dict.fromkeys(("pickle", transport))
            )
        if transport_sweep:
            transport_workers = TRANSPORT_SWEEP_WORKERS
            if workers is not None:
                transport_workers = tuple(sorted({1, workers}))
            if name == TINY_WORKLOAD:
                transport_threshold = 0
            workload_entry["transport_sweep"] = _bench_transport_sweep(
                name,
                database,
                minsup,
                transport_sweep,
                transport_workers,
                results["setm"],
                parallel_threshold=transport_threshold,
            )
        # The combined scenario rides on the constrained budget: pooled
        # counting of on-disk partitions, swept across worker counts.
        combined_sweep = SPILL_PARALLEL_SWEEPS.get(name, ())
        if workers is not None and (
            name in SPILL_PARALLEL_SWEEPS or name == TINY_WORKLOAD
        ):
            combined_sweep = tuple(sorted({1, workers}))
        if combined_sweep and budget is not None:
            workload_entry["spill_parallel"] = _bench_spill_parallel(
                name,
                database,
                minsup,
                budget,
                combined_sweep,
                results["setm"],
                workload_entry["constrained_memory"]["elapsed_seconds"],
                rounds,
            )
        # The serving scenario: concurrent clients through the
        # in-process MiningService, normalized against the direct
        # setm-columnar time measured above.
        serve_sweep = SERVE_SWEEPS.get(name, ())
        if serve_sweep:
            workload_entry["serve"] = _bench_serve(
                name,
                database,
                minsup,
                serve_sweep,
                results["setm-columnar"],
                engines["setm-columnar"]["elapsed_seconds"],
            )
        # The streaming-ingest scenario: bounded chunked encode from a
        # wide CSV (and Parquet when pyarrow is present), differentially
        # checked against the whole-file path before recording.
        ingest_params = INGEST_SCENARIOS.get(name)
        if ingest_params is not None:
            workload_entry["ingest"] = _bench_ingest(
                name, database, minsup, results["setm"], **ingest_params
            )
        # The incremental scenario: materialized count state + delta-only
        # re-mining under append batches, byte-checked per batch against
        # a from-scratch re-mine before recording.
        incremental_params = INCREMENTAL_SCENARIOS.get(name)
        if incremental_params is not None:
            workload_entry["incremental"] = _bench_incremental(
                name, database, minsup, rounds, **incremental_params
            )
        workloads.append(workload_entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/run_bench.py",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "tiny": tiny,
        "rounds": rounds,
        "target_speedup": TARGET_SPEEDUP,
        "workloads": workloads,
    }


def validate(document: dict) -> list[str]:
    """Schema errors in a results document (empty list == well-formed)."""
    errors: list[str] = []

    def need(mapping, key, kinds, where):
        if not isinstance(mapping, dict) or key not in mapping:
            errors.append(f"{where}: missing key {key!r}")
            return None
        value = mapping[key]
        if not isinstance(value, kinds):
            errors.append(
                f"{where}.{key}: expected {kinds}, got {type(value).__name__}"
            )
            return None
        return value

    if need(document, "schema_version", int, "$") != SCHEMA_VERSION:
        errors.append("$.schema_version: unsupported version")
    need(document, "generated_at", str, "$")
    need(document, "python", str, "$")
    need(document, "tiny", bool, "$")
    workloads = need(document, "workloads", list, "$")
    if not workloads:
        errors.append("$.workloads: must be a non-empty list")
        return errors
    for i, workload in enumerate(workloads):
        where = f"$.workloads[{i}]"
        need(workload, "name", str, where)
        need(workload, "minsup", (int, float), where)
        need(workload, "agreement", bool, where)
        dataset = need(workload, "dataset", dict, where)
        if dataset is not None:
            for key in ("transactions", "sales_rows", "distinct_items"):
                need(dataset, key, int, f"{where}.dataset")
        engines = need(workload, "engines", dict, where)
        if engines is not None:
            for engine_name in ("setm", "setm-columnar"):
                engine = need(engines, engine_name, dict, f"{where}.engines")
                if engine is None:
                    continue
                prefix = f"{where}.engines.{engine_name}"
                need(engine, "elapsed_seconds", (int, float), prefix)
                need(engine, "iteration_seconds", dict, prefix)
                need(engine, "peak_r_prime_instances", int, prefix)
                need(engine, "rows_per_second", (int, float), prefix)
                need(engine, "patterns", int, prefix)
                need(engine, "peak_memory_bytes", int, prefix)
        if "constrained_memory" in (workload or {}):
            constrained = need(workload, "constrained_memory", dict, where)
            if constrained is not None:
                prefix = f"{where}.constrained_memory"
                need(constrained, "engine", str, prefix)
                need(constrained, "memory_budget_bytes", int, prefix)
                need(constrained, "elapsed_seconds", (int, float), prefix)
                need(constrained, "peak_memory_bytes", int, prefix)
                need(constrained, "agreement", bool, prefix)
                partitions = need(
                    constrained, "spill_partitions", dict, prefix
                )
                max_partitions = need(
                    constrained, "max_partitions", int, prefix
                )
                if (
                    partitions is not None
                    and max_partitions is not None
                    and max_partitions < 2
                ):
                    errors.append(
                        f"{prefix}.max_partitions: scenario must force "
                        ">= 2 spill partitions"
                    )
        if "worker_sweep" in (workload or {}):
            sweep = need(workload, "worker_sweep", dict, where)
            if sweep is not None:
                prefix = f"{where}.worker_sweep"
                need(sweep, "engine", str, prefix)
                cpus = need(sweep, "cpus", int, prefix)
                runs = need(sweep, "runs", list, prefix)
                if not runs:
                    errors.append(f"{prefix}.runs: must be a non-empty list")
                for j, entry in enumerate(runs or ()):
                    run_prefix = f"{prefix}.runs[{j}]"
                    need(entry, "workers", int, run_prefix)
                    need(entry, "elapsed_seconds", (int, float), run_prefix)
                    need(entry, "agreement", bool, run_prefix)
                    need(entry, "partitions", dict, run_prefix)
                    need(entry, "parallel_iterations", list, run_prefix)
                    errors.extend(
                        _check_single_cpu_tag(
                            entry, cpus, "speedup_vs_columnar", run_prefix
                        )
                    )
        if "transport_sweep" in (workload or {}):
            sweep = need(workload, "transport_sweep", dict, where)
            if sweep is not None:
                prefix = f"{where}.transport_sweep"
                need(sweep, "engine", str, prefix)
                cpus = need(sweep, "cpus", int, prefix)
                floor = need(
                    sweep, "reduction_floor", (int, float), prefix
                )
                runs = need(sweep, "runs", list, prefix)
                if not runs:
                    errors.append(f"{prefix}.runs: must be a non-empty list")
                for j, entry in enumerate(runs or ()):
                    run_prefix = f"{prefix}.runs[{j}]"
                    transport = need(entry, "transport", str, run_prefix)
                    workers_value = need(entry, "workers", int, run_prefix)
                    need(entry, "elapsed_seconds", (int, float), run_prefix)
                    need(entry, "agreement", bool, run_prefix)
                    for counter in (
                        "pickled_bytes",
                        "task_bytes_inline",
                        "task_bytes_shared",
                        "task_bytes_spooled",
                        "reply_bytes_inline",
                        "reply_bytes_shared",
                        "zero_copy_bytes",
                    ):
                        need(entry, counter, int, run_prefix)
                    if (
                        transport in ("shm", "mmap")
                        and isinstance(workers_value, int)
                        and workers_value > 1
                    ):
                        reduction = entry.get("bytes_copied_reduction")
                        minimum = (
                            floor
                            if isinstance(floor, (int, float))
                            else TRANSPORT_REDUCTION_FLOOR
                        )
                        if (
                            not isinstance(reduction, (int, float))
                            or reduction < minimum
                        ):
                            errors.append(
                                f"{run_prefix}.bytes_copied_reduction: a "
                                f"pooled {transport} run must move at least "
                                f"{minimum:.0%} of the pickle-transport "
                                "bytes out-of-band"
                            )
                    errors.extend(
                        _check_single_cpu_tag(
                            entry, cpus, "speedup_vs_pickle", run_prefix
                        )
                    )
        if "spill_parallel" in (workload or {}):
            combined = need(workload, "spill_parallel", dict, where)
            if combined is not None:
                prefix = f"{where}.spill_parallel"
                need(combined, "engine", str, prefix)
                need(combined, "memory_budget_bytes", int, prefix)
                cpus = need(combined, "cpus", int, prefix)
                runs = need(combined, "runs", list, prefix)
                if not runs:
                    errors.append(f"{prefix}.runs: must be a non-empty list")
                for j, entry in enumerate(runs or ()):
                    run_prefix = f"{prefix}.runs[{j}]"
                    need(entry, "workers", int, run_prefix)
                    need(entry, "elapsed_seconds", (int, float), run_prefix)
                    need(entry, "agreement", bool, run_prefix)
                    need(entry, "partitions", dict, run_prefix)
                    pooled = need(
                        entry, "parallel_iterations", list, run_prefix
                    )
                    need(entry, "spill_bytes_written", int, run_prefix)
                    workers_value = entry.get("workers")
                    if (
                        isinstance(workers_value, int)
                        and workers_value > 1
                        and pooled == []
                    ):
                        errors.append(
                            f"{run_prefix}.parallel_iterations: a multi-"
                            "worker run must have reached the pool"
                        )
                    errors.extend(
                        _check_single_cpu_tag(
                            entry, cpus, "speedup_vs_spill_serial", run_prefix
                        )
                    )
        if "ingest" in (workload or {}):
            ingest = need(workload, "ingest", dict, where)
            if ingest is not None:
                prefix = f"{where}.ingest"
                floor = need(ingest, "reduction_floor", (int, float), prefix)
                if not isinstance(floor, (int, float)):
                    floor = INGEST_REDUCTION_FLOOR
                pyarrow_available = need(
                    ingest, "pyarrow_available", bool, prefix
                )
                need(
                    ingest, "peak_whole_file_memory_bytes", int, prefix
                )
                legs = {"csv": need(ingest, "csv", dict, prefix)}
                parquet = ingest.get("parquet")
                if parquet is None:
                    # The honesty tag: a missing Parquet leg must be
                    # explained by the environment, never silent.
                    if "parquet" not in ingest:
                        errors.append(f"{prefix}: missing key 'parquet'")
                    elif pyarrow_available is True:
                        errors.append(
                            f"{prefix}.parquet: null although pyarrow is "
                            "available — the leg must run"
                        )
                elif isinstance(parquet, dict):
                    legs["parquet"] = parquet
                else:
                    errors.append(
                        f"{prefix}.parquet: expected object or null"
                    )
                for leg_name, leg in legs.items():
                    if leg is None:
                        continue
                    leg_prefix = f"{prefix}.{leg_name}"
                    need(leg, "format", str, leg_prefix)
                    need(leg, "memory_budget_bytes", int, leg_prefix)
                    need(leg, "elapsed_seconds", (int, float), leg_prefix)
                    need(leg, "spilled_chunks", int, leg_prefix)
                    need(leg, "bytes_total", int, leg_prefix)
                    need(leg, "bytes_read", int, leg_prefix)
                    need(leg, "bytes_decoded", int, leg_prefix)
                    need(leg, "peak_ingest_memory_bytes", int, leg_prefix)
                    need(leg, "agreement", bool, leg_prefix)
                    chunks = need(leg, "chunks", int, leg_prefix)
                    if isinstance(chunks, int) and chunks < 4:
                        errors.append(
                            f"{leg_prefix}.chunks: the scenario must "
                            "decode in >= 4 chunks"
                        )
                    reduction_key = (
                        "bytes_decoded_reduction"
                        if leg_name == "csv"
                        else "bytes_read_reduction"
                    )
                    reduction = need(
                        leg, reduction_key, (int, float), leg_prefix
                    )
                    if (
                        isinstance(reduction, (int, float))
                        and reduction < floor
                    ):
                        errors.append(
                            f"{leg_prefix}.{reduction_key}: below the "
                            f"{floor:.0%} floor"
                        )
                    peak_reduction = need(
                        leg, "peak_memory_reduction", (int, float), leg_prefix
                    )
                    if (
                        isinstance(peak_reduction, (int, float))
                        and peak_reduction <= 0
                    ):
                        errors.append(
                            f"{leg_prefix}.peak_memory_reduction: streaming "
                            "must beat the whole-file ingest peak"
                        )
        if "incremental" in (workload or {}):
            incremental = need(workload, "incremental", dict, where)
            if incremental is not None:
                prefix = f"{where}.incremental"
                need(incremental, "engine", str, prefix)
                need(incremental, "full_remine_engine", str, prefix)
                need(incremental, "base_transactions", int, prefix)
                need(incremental, "base_seconds", (int, float), prefix)
                need(incremental, "batches", int, prefix)
                floor = need(
                    incremental, "speedup_floor", (int, float), prefix
                )
                if not isinstance(floor, (int, float)):
                    floor = INCREMENTAL_SPEEDUP_FLOOR
                if (
                    document.get("tiny") is not True
                    and isinstance(floor, (int, float))
                    and floor < INCREMENTAL_SPEEDUP_FLOOR
                ):
                    errors.append(
                        f"{prefix}.speedup_floor: a full bench must hold "
                        f"the {INCREMENTAL_SPEEDUP_FLOOR}x acceptance floor"
                    )
                aggregate = need(
                    incremental, "aggregate_speedup", (int, float), prefix
                )
                if (
                    isinstance(aggregate, (int, float))
                    and isinstance(floor, (int, float))
                    and aggregate < floor
                ):
                    errors.append(
                        f"{prefix}.aggregate_speedup: below the "
                        f"{floor}x floor"
                    )
                runs = need(incremental, "runs", list, prefix)
                if not runs:
                    errors.append(f"{prefix}.runs: must be a non-empty list")
                for j, entry in enumerate(runs or ()):
                    run_prefix = f"{prefix}.runs[{j}]"
                    need(entry, "delta_transactions", int, run_prefix)
                    need(entry, "delta_rows", int, run_prefix)
                    need(entry, "total_rows", int, run_prefix)
                    need(entry, "state_hits", int, run_prefix)
                    need(
                        entry, "recount_fraction", (int, float), run_prefix
                    )
                    need(entry, "delta_seconds", (int, float), run_prefix)
                    need(
                        entry, "full_remine_seconds", (int, float), run_prefix
                    )
                    need(entry, "columnar_seconds", (int, float), run_prefix)
                    need(entry, "agreement", bool, run_prefix)
                    # Per-batch speedups are recorded but not floored:
                    # borderline-recount batches are data-dependent and
                    # the acceptance bar is the scenario aggregate.
                    need(entry, "delta_speedup", (int, float), run_prefix)
                    delta_rows = entry.get("delta_rows")
                    total_rows = entry.get("total_rows")
                    if (
                        isinstance(delta_rows, int)
                        and isinstance(total_rows, int)
                        and delta_rows >= total_rows
                    ):
                        errors.append(
                            f"{run_prefix}: delta_rows must be a strict "
                            "subset of total_rows (otherwise nothing "
                            "incremental was measured)"
                        )
        if "serve" in (workload or {}):
            serve = need(workload, "serve", dict, where)
            if serve is not None:
                prefix = f"{where}.serve"
                need(serve, "engine", str, prefix)
                cpus = need(serve, "cpus", int, prefix)
                need(
                    serve, "direct_seconds_per_request", (int, float), prefix
                )
                need(serve, "requests_per_client", int, prefix)
                runs = need(serve, "runs", list, prefix)
                if not runs:
                    errors.append(f"{prefix}.runs: must be a non-empty list")
                for j, entry in enumerate(runs or ()):
                    run_prefix = f"{prefix}.runs[{j}]"
                    need(entry, "clients", int, run_prefix)
                    need(entry, "requests", int, run_prefix)
                    need(entry, "p50_seconds", (int, float), run_prefix)
                    need(entry, "p95_seconds", (int, float), run_prefix)
                    need(entry, "throughput_rps", (int, float), run_prefix)
                    need(entry, "agreement", bool, run_prefix)
                    p50 = entry.get("p50_seconds")
                    p95 = entry.get("p95_seconds")
                    if (
                        isinstance(p50, (int, float))
                        and isinstance(p95, (int, float))
                        and p95 < p50
                    ):
                        errors.append(
                            f"{run_prefix}: p95 below p50 is not a "
                            "latency distribution"
                        )
                    errors.extend(
                        _check_single_cpu_tag(
                            entry,
                            cpus,
                            "throughput_vs_direct",
                            run_prefix,
                            count_key="clients",
                        )
                    )
    return errors


def _check_single_cpu_tag(
    entry: dict,
    cpus: int | None,
    speedup_key: str,
    where: str,
    *,
    count_key: str = "workers",
) -> list[str]:
    """Schema errors for the single-CPU coordination-overhead tagging.

    A ≥ 2-worker (or ≥ 2-client) row measured on one CPU must carry
    ``coordination_overhead_only: true`` and a null speedup — a numeric
    "speedup" there would record pure coordination overhead as a
    regression (the stale-caveat failure mode schema v4 retired).
    """
    count = entry.get(count_key)
    if cpus != 1 or not isinstance(count, int) or count <= 1:
        return []
    errors = []
    if entry.get("coordination_overhead_only") is not True:
        errors.append(
            f"{where}: a >1-{count_key.rstrip('s')} run on a 1-CPU host "
            "must be tagged coordination_overhead_only"
        )
    if entry.get(speedup_key) is not None:
        errors.append(
            f"{where}.{speedup_key}: must be null on a 1-CPU host "
            "(coordination overhead is not a speedup)"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="setm vs setm-columnar performance baseline"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="one small synthetic workload (CI smoke; seconds, not minutes)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="measurement rounds per engine; best is recorded (default 3)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_setm.json",
        help="where to write the JSON results (default: repo root)",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="override the constrained-memory scenario budget in bytes "
             "for the workloads that carry the scenario "
             "(default: per-workload values in CONSTRAINED_BUDGETS)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="narrow the setm-parallel worker sweep to {1, N} and extend "
             "it to the tiny smoke (default: per-workload sweeps in "
             "WORKER_SWEEPS; the CI smoke passes --workers 2)",
    )
    parser.add_argument(
        "--transport", choices=["pickle", "shm", "mmap"], default=None,
        help="narrow the transport sweep to {pickle, TRANSPORT} and "
             "extend it to the tiny smoke (default: per-workload sweeps "
             "in TRANSPORT_SWEEPS; the CI smoke passes shm and mmap legs)",
    )
    parser.add_argument(
        "--validate", type=Path, default=None, metavar="PATH",
        help="validate an existing results file against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.validate is not None:
        document = json.loads(args.validate.read_text())
        errors = validate(document)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: well-formed (schema v{SCHEMA_VERSION})")
        return 0

    document = run(
        tiny=args.tiny,
        rounds=max(1, args.rounds),
        memory_budget=args.memory_budget,
        workers=args.workers,
        transport=args.transport,
    )
    errors = validate(document)
    if errors:  # pragma: no cover - the writer always matches its schema
        for error in errors:
            print(f"internal schema error: {error}", file=sys.stderr)
        return 1
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
