"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table, figure, or analysis)
and does three things:

1. times the underlying computation via pytest-benchmark;
2. prints the regenerated rows/series in the paper's layout;
3. writes the same text to ``benchmarks/results/<artifact>.txt`` so
   EXPERIMENTS.md can quote stable outputs.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.transactions import TransactionDatabase
from repro.data.retail import generate_retail_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's measured minimum-support grid (Section 6), as fractions.
PAPER_MINSUP_GRID = (0.001, 0.005, 0.01, 0.02, 0.05)

#: Figure 5/6 additionally show the 0.05% curve discussed in the text.
EXTENDED_MINSUP_GRID = (0.0005, *PAPER_MINSUP_GRID)


@pytest.fixture(scope="session")
def retail_db() -> TransactionDatabase:
    """The full-scale calibrated retail database (46,873 transactions)."""
    return generate_retail_dataset()


@pytest.fixture(scope="session")
def small_retail_db() -> TransactionDatabase:
    """A 1/10-scale retail database for the heavier ablations."""
    return generate_retail_dataset(scale=0.1)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a report block and persist it under benchmarks/results/."""

    def _emit(artifact: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
        (results_dir / f"{artifact}.txt").write_text(text + "\n")

    return _emit


def minsup_label(minsup: float) -> str:
    """Render a fraction as the paper's percent labels (0.1%, 5%...)."""
    return f"{minsup * 100:g}%"


@pytest.fixture(autouse=True, scope="module")
def unmetered_engines():
    """Benchmark timings must not pay the tracemalloc tax.

    Engines meter loop peak memory by default (``measure_memory=True``,
    ~10x overhead on the allocation-heavy tuple kernel).  The committed
    artifacts in ``results/`` quote wall-clock, so inside the benchmark
    modules every engine that exposes the knob defaults to unmetered;
    individual benches can still pass ``measure_memory=True``.
    (Module-scoped, not session-scoped: a combined ``pytest`` run over
    benchmarks *and* tests must see the defaults restored before the
    test packages execute.)
    """
    from repro.registry import engine_specs

    flipped = []
    for spec in engine_specs():
        defaults = spec.runner.__kwdefaults__
        if defaults and defaults.get("measure_memory") is True:
            defaults["measure_memory"] = False
            flipped.append(defaults)
    yield
    for defaults in flipped:
        defaults["measure_memory"] = True
