"""Section 3.2 — the nested-loop cost analysis, reproduced to the page.

Regenerates every number in the paper's back-of-envelope analysis of the
index-driven nested-loop plan on the hypothetical database (1,000 items,
200,000 transactions, 10 items each):

* index sizing: 4,000 + 14 pages / L = 3 for ``(item, trans_id)``;
  2,000 + 5 pages for ``(trans_id)``;
* ~40 leaf fetches and ~2,000 trans_id probes per item;
* ≈ 2,000,000 random page fetches ≈ 40,000 s ("more than 11 hours").

A scaled-down *empirical* run with real B+-trees confirms the model's
per-item access pattern.
"""

from __future__ import annotations

import pytest

from repro.analysis.cost_model import nested_loop_c2_cost
from repro.analysis.report import format_kv_block
from repro.core.nested_loop import nested_loop_mine_disk
from repro.data.hypothetical import (
    HypotheticalConfig,
    generate_hypothetical_database,
)


def test_nested_loop_model(benchmark, emit):
    cost = benchmark(nested_loop_c2_cost)

    emit(
        "analysis_32_nested_loop",
        format_kv_block(
            {
                "(item, trans_id) leaf pages": cost.item_index.leaf_pages,
                "(item, trans_id) non-leaf pages": cost.item_index.nonleaf_pages,
                "(item, trans_id) levels": cost.item_index.levels,
                "(trans_id) leaf pages": cost.tid_index.leaf_pages,
                "(trans_id) non-leaf pages": cost.tid_index.nonleaf_pages,
                "leaf fetches per item": cost.leaf_fetches_per_item,
                "matching trans_ids per item": cost.matching_tids_per_item,
                "total page fetches": cost.page_fetches,
                "modelled seconds": cost.seconds,
                "modelled hours": round(cost.hours, 2),
            },
            title="Section 3.2 — nested-loop strategy cost analysis",
        ),
    )

    assert cost.item_index.leaf_pages == 4000
    assert cost.item_index.nonleaf_pages == 14
    assert cost.item_index.levels == 3
    assert cost.tid_index.leaf_pages == 2000
    assert cost.tid_index.nonleaf_pages == 5
    assert cost.leaf_fetches_per_item == 40
    assert cost.matching_tids_per_item == 2000
    assert cost.page_fetches == pytest.approx(2_000_000, rel=0.03)
    assert cost.hours > 11


def test_nested_loop_empirical_scaled(benchmark, emit):
    """Run the real index plan at 1/100 scale and compare against the
    model evaluated at the same scale."""
    config = HypotheticalConfig(
        num_items=100, num_transactions=2000, items_per_transaction=10
    )
    db = generate_hypothetical_database(config)

    result = benchmark.pedantic(
        nested_loop_mine_disk,
        args=(db, 0.005),
        kwargs={"buffer_pages": 16, "max_length": 2},
        rounds=1,
        iterations=1,
    )
    io = result.extra["io"]
    model = nested_loop_c2_cost(config)

    emit(
        "analysis_32_empirical",
        format_kv_block(
            {
                "scale": "1/100 (100 items, 2,000 txns)",
                "measured page accesses": io.total_accesses,
                "modelled page fetches": model.page_fetches,
                "measured random reads": io.random_reads,
                "measured sequential reads": io.sequential_reads,
                "measured / modelled": round(
                    io.total_accesses / model.page_fetches, 3
                ),
            },
            title="Section 3.2 — empirical validation at 1/100 scale",
        ),
    )

    # The model assumes nothing is cached; the real run has a buffer pool,
    # so measured <= modelled, but they must share the order of magnitude.
    # (At laptop scale the pool also absorbs much of the randomness the
    # paper's model prices at 20 ms/fetch; the nested-vs-merge verdict is
    # asserted on equal footing in test_bench_join_strategies.)
    assert io.total_accesses <= model.page_fetches
    assert io.total_accesses >= model.page_fetches / 50
    assert io.random_reads > 0
