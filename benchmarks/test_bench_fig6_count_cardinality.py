"""Figure 6 — cardinality of the count relation C_i per iteration.

Paper claims reproduced here (Section 6.1):

* ``|C_1| = 59`` for every minimum support (the pseudocode's ``C_1``
  carries no HAVING clause, so it counts all 59 items);
* ``|C_4| = 0`` in all cases;
* for small minimum support, ``|C_i|`` *increases* before decreasing
  (the hump that makes low-minsup runs expensive);
* for large minimum support, ``|C_i|`` decreases from the start.
"""

from __future__ import annotations

from conftest import EXTENDED_MINSUP_GRID, minsup_label

from repro.analysis.report import format_figure_series
from repro.core.setm import setm
from repro.data.retail import PAPER_NUM_ITEMS


def sweep(retail_db):
    return {
        minsup_label(minsup): setm(retail_db, minsup)
        for minsup in EXTENDED_MINSUP_GRID
    }


def test_fig6_count_cardinalities(benchmark, retail_db, emit):
    results = benchmark.pedantic(
        sweep, args=(retail_db,), rounds=1, iterations=1
    )

    series = {
        label: result.c_cardinalities() for label, result in results.items()
    }
    emit(
        "fig6_count_cardinality",
        format_figure_series(
            series,
            x_label="iteration",
            title=(
                "Figure 6 — cardinality of C_i per iteration "
                "(columns: minimum support)"
            ),
        ),
    )

    for label, result in results.items():
        cardinalities = dict(result.c_cardinalities())
        # |C_1| = 59 in all cases.
        assert cardinalities[1] == PAPER_NUM_ITEMS, label

    # |C_4| = 0 at every paper minsup.
    for minsup in EXTENDED_MINSUP_GRID:
        if minsup < 0.001:
            continue
        cardinalities = dict(results[minsup_label(minsup)].c_cardinalities())
        assert cardinalities.get(4, 0) == 0

    # Small minsup: the hump — |C_2| far exceeds |C_1|.
    low = dict(results["0.1%"].c_cardinalities())
    assert low[2] > low[1]

    # Large minsup: monotone decrease from the start.
    high = dict(results["5%"].c_cardinalities())
    values = [high[k] for k in sorted(high)]
    assert values == sorted(values, reverse=True)
