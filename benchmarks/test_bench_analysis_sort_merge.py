"""Section 4.3 — the sort-merge I/O analysis, reproduced to the page.

Regenerates:

* ``‖R_1‖ = 4,000`` and ``‖R_2‖ ≈ 27,000`` pages;
* total page accesses ``3·‖R_1‖ + 4·‖R_2‖ = 120,000``;
* modelled time 1,200 s at 10 ms per sequential access (the paper calls
  this "10 minutes"; 1,200 s is 20 — the slip is recorded, the comparison
  against 40,000 s for the nested-loop plan is unaffected);
* the ≈ 34x strategy gap that justified SETM.
"""

from __future__ import annotations

import pytest

from repro.analysis.cost_model import (
    nested_loop_c2_cost,
    sort_merge_page_accesses,
    sort_merge_relation_pages,
    strategy_speedup,
)
from repro.analysis.report import format_kv_block


def full_analysis():
    pages = sort_merge_relation_pages()
    cost = sort_merge_page_accesses(pages, 3)
    nested = nested_loop_c2_cost()
    return pages, cost, nested


def test_sort_merge_model(benchmark, emit):
    pages, cost, nested = benchmark(full_analysis)

    emit(
        "analysis_43_sort_merge",
        format_kv_block(
            {
                "||R_1|| pages": pages[1],
                "||R_2|| pages": pages[2],
                "merge-scan reads": cost.merge_scan_reads,
                "result writes": cost.result_writes,
                "sort accesses": cost.sort_accesses,
                "total page accesses": cost.page_accesses,
                "modelled seconds": cost.seconds,
                "nested-loop modelled seconds": nested.seconds,
                "speedup (nested / sort-merge)": round(
                    strategy_speedup(nested, cost), 1
                ),
            },
            title="Section 4.3 — sort-merge strategy cost analysis",
        ),
    )

    assert pages[1] == 4000
    assert pages[2] == pytest.approx(27_000, rel=0.01)
    assert cost.page_accesses == pytest.approx(120_000, rel=0.01)
    assert cost.seconds == pytest.approx(1200, rel=0.01)
    # "In comparison, the nested-loop strategy required more than 11
    # hours" — the gap is what matters.
    assert strategy_speedup(nested, cost) == pytest.approx(34, rel=0.05)
