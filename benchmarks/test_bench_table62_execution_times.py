"""Section 6.2 table — SETM execution time versus minimum support.

The paper's table (IBM RS/6000 350, 41.1 MHz, main-memory C):

    ======================  =====================
    Minimum Support (%)      Execution Time (s)
    ======================  =====================
    0.1                      6.90
    0.5                      5.30
    1                        4.64
    2                        4.22
    5                        3.97
    ======================  =====================

Absolute times are hardware-bound; the claims that survive the decades —
and that this bench asserts — are the *shape*:

* execution time decreases monotonically as minimum support grows;
* the algorithm is **stable**: the paper's max/min ratio is 6.90/3.97 ≈
  1.74; we allow up to 3x before calling the behaviour unstable.
"""

from __future__ import annotations

import pytest
from conftest import PAPER_MINSUP_GRID, minsup_label

from repro.analysis.report import format_table
from repro.core.setm import setm

#: The paper's reported numbers, for side-by-side reporting.
PAPER_TIMES = {0.001: 6.90, 0.005: 5.30, 0.01: 4.64, 0.02: 4.22, 0.05: 3.97}

_measured: dict[float, float] = {}


@pytest.mark.parametrize("minsup", PAPER_MINSUP_GRID)
def test_table62_execution_time(benchmark, retail_db, minsup):
    benchmark.group = "table-6.2 execution time"
    benchmark.name = f"setm minsup={minsup_label(minsup)}"
    result = benchmark.pedantic(
        setm, args=(retail_db, minsup), rounds=3, iterations=1
    )
    assert result.count_relations[2], "mining must find patterns"
    _measured[minsup] = benchmark.stats.stats.min


def test_table62_shape(benchmark, retail_db, emit):
    """Aggregate the per-minsup timings and assert the paper's shape."""
    benchmark.group = "table-6.2 execution time"
    benchmark.name = "setm full-grid sweep"

    import time

    def measure(minsup, rounds=1):
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            setm(retail_db, minsup)
            best = min(best, time.perf_counter() - started)
        return best

    def fill_missing():
        for minsup in PAPER_MINSUP_GRID:  # direct runs if order changed
            if minsup not in _measured:
                _measured[minsup] = measure(minsup)
        return dict(_measured)

    benchmark.pedantic(fill_missing, rounds=1, iterations=1)

    # One-shot timings are noise-sensitive (anything sharing the process
    # perturbs them); before asserting the paper's shape, re-measure any
    # adjacent pair that looks non-monotone and keep the per-point best.
    for minsup, next_minsup in zip(PAPER_MINSUP_GRID, PAPER_MINSUP_GRID[1:]):
        if _measured[next_minsup] > _measured[minsup] * 1.15:
            _measured[minsup] = min(_measured[minsup], measure(minsup, 3))
            _measured[next_minsup] = min(
                _measured[next_minsup], measure(next_minsup, 3)
            )

    rows = [
        (
            minsup_label(minsup),
            PAPER_TIMES[minsup],
            round(_measured[minsup], 3),
        )
        for minsup in PAPER_MINSUP_GRID
    ]
    emit(
        "table62_execution_times",
        format_table(
            [
                "Minimum Support",
                "Paper 1995 (s)",
                "Measured (s)",
            ],
            rows,
            title="Section 6.2 — execution times of Algorithm SETM",
        ),
    )

    times = [_measured[minsup] for minsup in PAPER_MINSUP_GRID]
    # Monotone decrease with rising minimum support (mild tolerance for
    # timer noise between adjacent grid points).
    for earlier, later in zip(times, times[1:]):
        assert later <= earlier * 1.15

    # Stability: the paper's ratio is 1.74; anything under 3x is "almost
    # insensitive to the chosen minimum support".
    assert max(times) / min(times) < 3.0
