"""Ablation — nested-loop vs sort-merge, measured on the same data.

The paper compares the two strategies analytically (Sections 3.2 and
4.3); this bench runs both *physical* implementations — the index-probing
nested-loop plan over real B+-trees and the sort/merge-scan pipeline over
heap files — on identical scaled instances of the hypothetical database.

Scale matters: the paper's blow-up needs its 1,000-item catalogue.  With
1,000 items, an item matches ~1% of transactions, which is about one
transaction per ``(trans_id)``-index leaf — so every probe of the inner
index lands on a *different* leaf and pays a random fetch, exactly the
per-probe charge of Section 3.2.  (Shrink the catalogue and the probes
cluster per leaf, hiding the effect — which is itself worth knowing.)

Assertions: both plans find identical patterns; the nested-loop plan
performs several times the page accesses and — with random fetches priced
at 20 ms vs 10 ms — several times the modelled I/O time.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.nested_loop import nested_loop_mine_disk
from repro.core.setm_disk import setm_disk
from repro.data.hypothetical import (
    HypotheticalConfig,
    generate_hypothetical_database,
)


def compare_at(transactions: int):
    config = HypotheticalConfig(
        num_items=1000,
        num_transactions=transactions,
        items_per_transaction=10,
    )
    db = generate_hypothetical_database(config)
    # 0.5% minimum support, the paper's analysis setting; every item
    # (~1% frequency) qualifies for C_1, driving the full outer loop.
    nested = nested_loop_mine_disk(
        db, 0.005, buffer_pages=8, max_length=2
    )
    merged = setm_disk(
        db,
        0.005,
        buffer_pages=16,
        sort_memory_pages=64,
        max_length=2,
    )
    assert nested.same_patterns_as(merged)
    return nested.extra["io"], merged.extra["io"]


def run_comparison():
    return {n: compare_at(n) for n in (2500, 10_000)}


def test_join_strategy_ablation(benchmark, emit):
    outcomes = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = []
    for transactions, (nested_io, merged_io) in outcomes.items():
        access_ratio = nested_io.total_accesses / max(
            1, merged_io.total_accesses
        )
        time_ratio = nested_io.estimated_seconds() / max(
            1e-9, merged_io.estimated_seconds()
        )
        rows.append(
            (
                transactions,
                nested_io.total_accesses,
                merged_io.total_accesses,
                round(access_ratio, 1),
                round(nested_io.estimated_seconds(), 1),
                round(merged_io.estimated_seconds(), 1),
                round(time_ratio, 1),
            )
        )
    emit(
        "ablation_join_strategies",
        format_table(
            [
                "transactions",
                "nested accesses",
                "merge accesses",
                "access ratio",
                "nested model s",
                "merge model s",
                "time ratio",
            ],
            rows,
            title=(
                "Ablation — nested-loop (Section 3) vs sort-merge "
                "(Section 4) at paper selectivity (1,000 items, "
                "10 items/txn, minsup 0.5%)"
            ),
        ),
    )

    for _, nested_accesses, merged_accesses, access_ratio, _, _, time_ratio in rows:
        # Sort-merge wins on raw page accesses...
        assert access_ratio >= 3.0
        # ...and even more on modelled time (random vs sequential pricing).
        assert time_ratio >= 4.0
        assert nested_accesses > merged_accesses
