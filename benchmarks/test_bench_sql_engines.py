"""Ablation — the same SETM SQL on three execution substrates.

The paper's pitch is that mining runs on "general query languages such as
SQL".  This bench runs the identical mining task via:

* the in-memory reference implementation (no SQL);
* the generated SQL on the bundled engine (sort-merge plans);
* the generated SQL on stdlib sqlite3.

All three must agree exactly; the bench records their relative cost (the
price of generality, on 2020s software rather than a 1995 RDBMS).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.setm import setm
from repro.core.setm_sql import setm_sql
from repro.data.retail import generate_retail_dataset
from repro.sqlbridge.sqlite_miner import sqlite_mine

ENGINES = {
    "in-memory": setm,
    "sql-native": setm_sql,
    "sql-sqlite": sqlite_mine,
}

_timings: dict[str, float] = {}


@pytest.fixture(scope="module")
def bench_db():
    return generate_retail_dataset(scale=0.05)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_sql_engine(benchmark, bench_db, engine):
    benchmark.group = "SQL substrates retail(1/20) minsup=1%"
    result = benchmark.pedantic(
        ENGINES[engine], args=(bench_db, 0.01), rounds=3, iterations=1
    )
    assert result.count_relations[2]
    _timings[engine] = benchmark.stats.stats.min


def test_sql_engine_agreement(benchmark, bench_db, emit):
    benchmark.group = "SQL substrates retail(1/20) minsup=1%"
    benchmark.name = "agreement sweep (all substrates)"
    results = benchmark.pedantic(
        lambda: {
            name: engine(bench_db, 0.01) for name, engine in ENGINES.items()
        },
        rounds=1,
        iterations=1,
    )
    reference = results["in-memory"]
    for result in results.values():
        assert result.same_patterns_as(reference)

    rows = [
        (
            name,
            round(_timings.get(name, 0.0), 4),
            round(
                _timings.get(name, 0.0)
                / max(_timings.get("in-memory", 1e-9), 1e-9),
                1,
            ),
        )
        for name in ENGINES
    ]
    emit(
        "ablation_sql_engines",
        format_table(
            ["substrate", "time (s)", "x in-memory"],
            rows,
            title=(
                "Ablation — identical mining via in-memory SETM, the "
                "bundled SQL engine, and sqlite3 (retail 1/20, minsup 1%)"
            ),
        ),
    )
