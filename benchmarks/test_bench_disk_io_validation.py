"""Empirical §4.3 — measured page accesses of disk SETM vs the formula.

The paper derives its 120,000-access figure analytically; this bench runs
the *actual* paged engine on scaled instances and compares measured page
accesses with the formula evaluated on the run's own relation sizes.
Two claims are checked:

* measured I/O stays within a small constant of the model (the model
  idealizes sort run-generation and the filter pass);
* I/O grows *linearly* with the database (doubling transactions roughly
  doubles accesses) — the property that makes SETM viable where the
  nested-loop plan's blow-up is quadratic-ish.
"""

from __future__ import annotations


from repro.analysis.cost_model import sort_merge_page_accesses
from repro.analysis.report import format_table
from repro.core.setm_disk import setm_disk
from repro.data.hypothetical import (
    HypotheticalConfig,
    generate_hypothetical_database,
)


def model_bound(result) -> int:
    pages = {
        1: result.extra["page_counts"][1],
        **result.extra["r_prime_page_counts"],
    }
    terminal = max(stats.k for stats in result.iterations)
    if terminal < 2:
        return 0
    # include_terminal_sort: the real engine sorts the (non-empty) R'_n
    # before discovering no pattern qualifies; see the flag's docstring.
    return sort_merge_page_accesses(
        pages, terminal, include_terminal_sort=True
    ).page_accesses


def run_scales():
    rows = []
    for factor in (400, 800, 1600):
        config = HypotheticalConfig(
            num_items=80, num_transactions=factor, items_per_transaction=6
        )
        db = generate_hypothetical_database(config)
        result = setm_disk(db, 0.02, buffer_pages=8, sort_memory_pages=8)
        rows.append((factor, result))
    return rows


def test_disk_io_tracks_model(benchmark, emit):
    runs = benchmark.pedantic(run_scales, rounds=1, iterations=1)

    table_rows = []
    for transactions, result in runs:
        measured = result.extra["io"].total_accesses
        bound = model_bound(result)
        table_rows.append(
            (
                transactions,
                bound,
                measured,
                round(measured / bound, 2),
                round(result.extra["modelled_seconds"], 2),
            )
        )
    emit(
        "empirical_43_io_validation",
        format_table(
            [
                "transactions",
                "formula accesses",
                "measured accesses",
                "measured/formula",
                "modelled seconds",
            ],
            table_rows,
            title=(
                "Empirical §4.3 — measured page accesses vs the cost "
                "formula (scaled hypothetical DB)"
            ),
        ),
    )

    for _, bound, measured, ratio, _ in table_rows:
        # The engine's external sort pays run generation (a second
        # read+write pass) that the model's "pipelining mode" waives, so
        # measured runs up to ~2x over; 4x is the alarm threshold.
        assert bound / 4 <= measured <= 4 * bound, ratio

    # Linear growth: 4x transactions -> roughly 4x accesses (2x-8x band).
    small = table_rows[0][2]
    large = table_rows[-1][2]
    assert 2.0 <= large / small <= 8.0
