"""Ablation — SETM vs AIS (the paper's [4]) vs Apriori (its successor).

Two workloads:

* the calibrated retail data (the paper's own evaluation data);
* a Quest T5.I2 workload (the style the AIS/Apriori literature used).

Assertions encode the historical record:

* all algorithms find identical pattern sets;
* AIS and SETM consider the same candidate space (SETM's R'_k instances
  group to exactly AIS's per-pass counters), both lacking Apriori's
  pruning;
* Apriori counts no more candidate patterns than either;
* Apriori's hash tree beats the structure-free counting scan it was
  invented to replace (``apriori-scan`` row).
"""

from __future__ import annotations

import functools

import pytest

from repro.analysis.report import format_table
from repro.baselines.ais import ais
from repro.baselines.apriori import apriori
from repro.core.setm import setm
from repro.data.quest import QuestConfig, generate_quest_dataset

ENGINES = {
    "setm": setm,
    "ais": ais,
    "apriori": apriori,
    "apriori-scan": functools.partial(apriori, counting="scan"),
}

_timings: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_baseline_on_retail(benchmark, small_retail_db, engine):
    benchmark.group = "baselines retail(1/10) minsup=0.5%"
    result = benchmark.pedantic(
        ENGINES[engine], args=(small_retail_db, 0.005), rounds=3, iterations=1
    )
    assert result.count_relations[2]
    _timings[("retail", engine)] = benchmark.stats.stats.min


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_baseline_on_quest(benchmark, engine):
    db = generate_quest_dataset(
        QuestConfig(num_transactions=2000, avg_transaction_len=5,
                    avg_pattern_len=2)
    )
    benchmark.group = "baselines quest T5.I2.D2K minsup=1%"
    result = benchmark.pedantic(
        ENGINES[engine], args=(db, 0.01), rounds=3, iterations=1
    )
    assert result.count_relations[1]
    _timings[("quest", engine)] = benchmark.stats.stats.min


def test_baseline_agreement_and_candidates(benchmark, small_retail_db, emit):
    benchmark.group = "baselines retail(1/10) minsup=0.5%"
    benchmark.name = "agreement sweep (all engines)"
    results = benchmark.pedantic(
        lambda: {
            name: engine(small_retail_db, 0.005)
            for name, engine in ENGINES.items()
        },
        rounds=1,
        iterations=1,
    )
    reference = results["setm"]
    for result in results.values():
        assert result.same_patterns_as(reference)

    rows = []
    for name, result in results.items():
        candidates = sum(
            stats.candidate_patterns
            for stats in result.iterations
            if stats.k >= 2
        )
        instances = sum(
            stats.candidate_instances
            for stats in result.iterations
            if stats.k >= 2
        )
        rows.append(
            (
                name,
                candidates,
                instances,
                sum(len(rel) for rel in result.count_relations.values()),
                round(_timings.get(("retail", name), 0.0), 4),
            )
        )
    emit(
        "ablation_baselines",
        format_table(
            [
                "algorithm",
                "candidate patterns (k>=2)",
                "candidate instances (k>=2)",
                "frequent patterns",
                "retail time (s)",
            ],
            rows,
            title=(
                "Ablation — SETM vs AIS vs Apriori on retail(1/10), "
                "minsup 0.5%"
            ),
        ),
    )

    by_name = {row[0]: row for row in rows}
    # SETM and AIS consider the same candidate pattern space...
    assert by_name["setm"][1] == by_name["ais"][1]
    # ...and Apriori's pruning considers no more than either.
    assert by_name["apriori"][1] <= by_name["setm"][1]
    # Hash-tree counting and the naive scan count the same candidates.
    assert by_name["apriori"][1] == by_name["apriori-scan"][1]
