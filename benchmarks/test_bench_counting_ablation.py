"""Ablation — design choices inside SETM itself.

Two knobs DESIGN.md calls out:

* **counting strategy**: the paper counts by sorting ``R'_k`` on its item
  columns and scanning ("generate counts ... a simple sequential scan");
  a hash aggregate is the modern alternative.  Both must agree; the bench
  records the gap.
* **buffer pool size** (disk variant): the paper assumes ``C_k`` stays
  resident and non-leaf pages are cached; shrinking the pool below that
  shows up directly as page accesses.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.setm import setm
from repro.core.setm_disk import setm_disk

_count_timings: dict[str, float] = {}


@pytest.mark.parametrize("count_via", ["sort", "hash"])
def test_counting_strategy(benchmark, small_retail_db, count_via):
    benchmark.group = "counting strategy retail(1/10) minsup=0.2%"
    result = benchmark.pedantic(
        setm,
        args=(small_retail_db, 0.002),
        kwargs={"count_via": count_via},
        rounds=3,
        iterations=1,
    )
    assert result.count_relations[2]
    _count_timings[count_via] = benchmark.stats.stats.min


def test_counting_strategies_agree(benchmark, small_retail_db, emit):
    benchmark.group = "counting strategy retail(1/10) minsup=0.2%"
    benchmark.name = "agreement check (both strategies)"

    def both():
        return (
            setm(small_retail_db, 0.002, count_via="sort"),
            setm(small_retail_db, 0.002, count_via="hash"),
        )

    via_sort, via_hash = benchmark.pedantic(both, rounds=1, iterations=1)
    assert via_sort.same_patterns_as(via_hash)

    emit(
        "ablation_counting",
        format_table(
            ["counting", "time (s)"],
            [
                (name, round(timing, 4))
                for name, timing in sorted(_count_timings.items())
            ],
            title=(
                "Ablation — sort-scan counting (paper) vs hash "
                "aggregation, retail(1/10) at 0.2%"
            ),
        ),
    )


def test_buffer_pool_sensitivity(benchmark, small_retail_db, emit):
    """Page accesses as the buffer pool shrinks (disk SETM)."""

    def sweep():
        return {
            pages: setm_disk(
                small_retail_db, 0.01, buffer_pages=pages
            ).extra["io"].total_accesses
            for pages in (4, 16, 64, 4096)
        }

    accesses = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "ablation_buffer_pool",
        format_table(
            ["buffer pages", "page accesses"],
            sorted(accesses.items()),
            title=(
                "Ablation — disk SETM page accesses vs buffer pool size "
                "(retail 1/10, minsup 1%)"
            ),
        ),
    )

    # More memory can only help.
    ordered = [accesses[pages] for pages in sorted(accesses)]
    assert ordered == sorted(ordered, reverse=True)
