"""Ablation — design choices inside SETM itself.

Three knobs DESIGN.md and the columnar kernel call out:

* **counting strategy** (``count_via``): the paper counts by sorting
  ``R'_k`` on its item columns and scanning ("generate counts ... a
  simple sequential scan"); a hash aggregate is the modern alternative.
  The faithful engine's ``count_via="hash"`` is one
  :class:`collections.Counter` pass (a single hash per row); the
  columnar engine's ``"hash"`` counts packed integer keys, and its
  ``"sort"`` is a key-free integer sort (vectorized ``np.unique`` when
  numpy is available).  All must agree; the bench records the gaps —
  across *representations* as well as strategies.
* **representation** (tuples vs columnar): the same Figure 4 loop over
  row tuples vs dictionary-encoded array columns; see
  ``benchmarks/run_bench.py`` for the committed cross-workload baseline.
* **buffer pool size** (disk variant): the paper assumes ``C_k`` stays
  resident and non-leaf pages are cached; shrinking the pool below that
  shows up directly as page accesses.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.setm import setm
from repro.core.setm_columnar import setm_columnar
from repro.core.setm_disk import setm_disk

_count_timings: dict[str, float] = {}


@pytest.mark.parametrize(
    ("engine", "count_via"),
    [
        ("setm", "sort"),
        ("setm", "hash"),
        ("setm-columnar", "sort"),
        ("setm-columnar", "hash"),
    ],
)
def test_counting_strategy(benchmark, small_retail_db, engine, count_via):
    benchmark.group = "counting strategy retail(1/10) minsup=0.2%"
    benchmark.name = f"{engine} count_via={count_via}"
    runner = setm if engine == "setm" else setm_columnar
    result = benchmark.pedantic(
        runner,
        args=(small_retail_db, 0.002),
        kwargs={"count_via": count_via},
        rounds=3,
        iterations=1,
    )
    assert result.count_relations[2]
    _count_timings[f"{engine}/{count_via}"] = benchmark.stats.stats.min


def test_counting_strategies_agree(benchmark, small_retail_db, emit):
    benchmark.group = "counting strategy retail(1/10) minsup=0.2%"
    benchmark.name = "agreement check (all strategies)"

    def all_of_them():
        return (
            setm(small_retail_db, 0.002, count_via="sort"),
            setm(small_retail_db, 0.002, count_via="hash"),
            setm_columnar(small_retail_db, 0.002, count_via="sort"),
            setm_columnar(small_retail_db, 0.002, count_via="hash"),
        )

    results = benchmark.pedantic(all_of_them, rounds=1, iterations=1)
    reference = results[0]
    for other in results[1:]:
        assert reference.same_patterns_as(other)

    emit(
        "ablation_counting",
        format_table(
            ["engine/counting", "time (s)"],
            [
                (name, round(timing, 4))
                for name, timing in sorted(_count_timings.items())
            ],
            title=(
                "Ablation — sort-scan counting (paper) vs hash "
                "aggregation, tuple vs columnar, retail(1/10) at 0.2%"
            ),
        ),
    )


def test_buffer_pool_sensitivity(benchmark, small_retail_db, emit):
    """Page accesses as the buffer pool shrinks (disk SETM)."""

    def sweep():
        return {
            pages: setm_disk(
                small_retail_db, 0.01, buffer_pages=pages
            ).extra["io"].total_accesses
            for pages in (4, 16, 64, 4096)
        }

    accesses = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "ablation_buffer_pool",
        format_table(
            ["buffer pages", "page accesses"],
            sorted(accesses.items()),
            title=(
                "Ablation — disk SETM page accesses vs buffer pool size "
                "(retail 1/10, minsup 1%)"
            ),
        ),
    )

    # More memory can only help.
    ordered = [accesses[pages] for pages in sorted(accesses)]
    assert ordered == sorted(ordered, reverse=True)
