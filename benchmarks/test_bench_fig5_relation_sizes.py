"""Figure 5 — size of relation R_i (Kbytes) per iteration, per minsup.

Paper claims reproduced here (Section 6.1):

* ``|R_1| = 115,568`` tuples in every run (the starting relation is the
  same for all minimum supports);
* ``R_4`` is empty in all cases (no frequent 4-patterns at ≥ 0.1%);
* the general trend is that ``R_i`` *shrinks* with the iteration number,
  and the drop from ``R_1`` to ``R_2`` is sharp for large minimum
  support;
* for small enough minimum support (≤ 0.1%) the size can first *increase*
  (``R_2`` outweighs ``R_1``) and only then decrease.
"""

from __future__ import annotations

from conftest import EXTENDED_MINSUP_GRID, minsup_label

from repro.analysis.report import format_figure_series
from repro.core.setm import setm
from repro.data.retail import PAPER_NUM_SALES_ROWS


def sweep(retail_db):
    return {
        minsup_label(minsup): setm(retail_db, minsup)
        for minsup in EXTENDED_MINSUP_GRID
    }


def test_fig5_relation_sizes(benchmark, retail_db, emit):
    results = benchmark.pedantic(
        sweep, args=(retail_db,), rounds=1, iterations=1
    )

    series = {
        label: result.r_sizes_kbytes() for label, result in results.items()
    }
    emit(
        "fig5_relation_sizes",
        format_figure_series(
            series,
            x_label="iteration",
            title=(
                "Figure 5 — size of R_i in Kbytes per iteration "
                "(columns: minimum support)"
            ),
        ),
    )

    for label, result in results.items():
        sizes = dict(result.r_sizes_kbytes())
        # |R_1| identical across minsups (Section 6.1).
        assert result.iterations[0].candidate_instances == PAPER_NUM_SALES_ROWS

        # Monotone decrease from iteration 2 onwards.
        tail = [sizes[k] for k in sorted(sizes) if k >= 2]
        assert tail == sorted(tail, reverse=True), label

    # R_4 = 0 at every paper minsup (>= 0.1%).
    for minsup in EXTENDED_MINSUP_GRID:
        if minsup < 0.001:
            continue
        sizes = dict(results[minsup_label(minsup)].r_sizes_kbytes())
        assert sizes.get(4, 0.0) == 0.0

    # Small minsup: R_2 exceeds R_1 (increase-then-decrease shape).
    low = dict(results["0.1%"].r_sizes_kbytes())
    assert low[2] > low[1]

    # Large minsup: sharp decrease from R_1 to R_2.
    high = dict(results["5%"].r_sizes_kbytes())
    assert high[2] < 0.5 * high[1]

    # The sharp decrease is *delayed* for smaller minimum supports: the
    # R_2/R_1 ratio grows monotonically as minsup shrinks.
    ratios = [
        dict(results[minsup_label(m)].r_sizes_kbytes())[2]
        / dict(results[minsup_label(m)].r_sizes_kbytes())[1]
        for m in EXTENDED_MINSUP_GRID
    ]
    assert ratios == sorted(ratios, reverse=True)
