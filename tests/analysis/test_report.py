"""Tests for the report formatting helpers."""

from __future__ import annotations

from repro.analysis.report import (
    format_figure_series,
    format_kv_block,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(
            ["Minimum Support (%)", "Execution Time (s)"],
            [(0.1, 6.90), (5, 3.97)],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All rows equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(["a"], [(1,)], title="Table 6.2")
        assert text.splitlines()[0] == "Table 6.2"

    def test_number_formatting(self):
        text = format_table(["n"], [(1234567,)])
        assert "1,234,567" in text

    def test_float_formatting(self):
        assert "3.14" in format_table(["x"], [(3.14159,)])


class TestFormatFigureSeries:
    def test_curves_align_on_x(self):
        text = format_figure_series(
            {
                "0.1%": [(1, 10), (2, 20), (3, 5)],
                "5%": [(1, 10), (2, 2)],
            },
            x_label="iteration",
        )
        lines = text.splitlines()
        assert lines[0].split() == ["iteration", "0.1%", "5%"]
        assert len(lines) == 2 + 3  # header + rule + three x values

    def test_missing_points_render_blank(self):
        text = format_figure_series(
            {"a": [(1, 1)], "b": [(2, 2)]},
        )
        # x=2 row has no 'a' value: two columns, one blank cell.
        row = text.splitlines()[-1]
        assert "2" in row

    def test_empty_series(self):
        text = format_figure_series({"a": []})
        assert "a" in text


class TestFormatKvBlock:
    def test_aligned_keys(self):
        text = format_kv_block(
            {"leaf pages": 4000, "levels": 3}, title="Index"
        )
        lines = text.splitlines()
        assert lines[0] == "Index"
        colons = [line.index(":") for line in lines[1:]]
        assert len(set(colons)) == 1

    def test_empty(self):
        assert format_kv_block({}) == ""
