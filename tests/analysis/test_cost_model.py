"""The Sections 3.2 / 4.3 analyses must reproduce every published number."""

from __future__ import annotations

import pytest

from repro.analysis.btree_model import size_btree
from repro.analysis.cost_model import (
    nested_loop_c2_cost,
    sort_merge_page_accesses,
    sort_merge_relation_pages,
    strategy_speedup,
)
from repro.data.hypothetical import HypotheticalConfig


class TestBTreeModel:
    def test_item_transid_index_matches_paper(self):
        # "The number of leaf pages in the B+-tree index on (item,
        #  trans-id) is 2,000,000/500 ~ 4,000 ... L = 3 ... the number of
        #  non-leaf pages in this index is (1 + 4,000/333) = 14."
        sizing = size_btree(2_000_000, leaf_entry_fields=2, key_fields=2)
        assert sizing.leaf_capacity == 500
        assert sizing.nonleaf_capacity == 333
        assert sizing.leaf_pages == 4000
        assert sizing.nonleaf_pages == 14
        assert sizing.levels == 3

    def test_transid_index_matches_paper(self):
        # "the number of leaf pages is 2,000 and the number of non-leaf
        #  pages is 5."
        sizing = size_btree(2_000_000, leaf_entry_fields=1, key_fields=1)
        assert sizing.leaf_pages == 2000
        assert sizing.nonleaf_pages == 5

    def test_empty_tree(self):
        sizing = size_btree(0, leaf_entry_fields=2, key_fields=2)
        assert sizing.leaf_pages == 1
        assert sizing.levels == 1
        assert sizing.nonleaf_pages == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            size_btree(-1, leaf_entry_fields=2, key_fields=2)

    def test_total_pages(self):
        sizing = size_btree(2_000_000, leaf_entry_fields=2, key_fields=2)
        assert sizing.total_pages == 4014


class TestNestedLoopCost:
    def test_per_item_costs_match_paper(self):
        # "This requires 1% x 4,000 leaf page fetches, i.e., ~40 page
        #  fetches.  The result consists of about 2,000 transaction-ids."
        cost = nested_loop_c2_cost()
        assert cost.leaf_fetches_per_item == 40
        assert cost.matching_tids_per_item == 2000

    def test_total_page_fetches_about_two_million(self):
        # "the first step alone will require about 1000 x (40 + 2000 x 1)
        #  ~ 2,000,000 page fetches"
        cost = nested_loop_c2_cost()
        assert cost.page_fetches == 1000 * (40 + 2000)
        assert cost.page_fetches == pytest.approx(2_000_000, rel=0.03)

    def test_time_is_more_than_eleven_hours(self):
        # "the time for the first step alone is ~ 40,000 seconds, which is
        #  more than 11 hours!"
        cost = nested_loop_c2_cost()
        assert cost.seconds == pytest.approx(40_000, rel=0.03)
        assert cost.hours > 11

    def test_scales_with_configuration(self):
        small = nested_loop_c2_cost(
            HypotheticalConfig(num_items=100, num_transactions=20_000)
        )
        assert small.page_fetches < nested_loop_c2_cost().page_fetches


class TestSortMergeCost:
    def test_relation_pages_match_paper(self):
        # "||R_1|| = 4,000 and ||R_2|| = 27,000" (we keep the exact 27,028;
        #  the paper rounds).
        pages = sort_merge_relation_pages()
        assert pages[1] == 4000
        assert pages[2] == pytest.approx(27_000, rel=0.01)

    def test_total_accesses_formula(self):
        # "3 x 4,000 + 4 x 27,000 = 120,000"
        pages = {1: 4000, 2: 27_000}
        cost = sort_merge_page_accesses(pages, 3)
        assert cost.page_accesses == 3 * 4000 + 4 * 27_000 == 120_000

    def test_decomposition_sums_to_total(self):
        pages = sort_merge_relation_pages()
        cost = sort_merge_page_accesses(pages, 3)
        assert (
            cost.merge_scan_reads + cost.result_writes + cost.sort_accesses
            == cost.page_accesses
        )

    def test_modelled_time_is_twelve_hundred_seconds(self):
        # "the total time spent on I/O operations is 1200 seconds".  (The
        #  paper calls this "10 minutes"; 1,200 s is 20 — we reproduce the
        #  seconds figure and record the slip in EXPERIMENTS.md.)
        cost = sort_merge_page_accesses({1: 4000, 2: 27_000}, 3)
        assert cost.seconds == pytest.approx(1200.0)

    def test_longer_runs_accumulate(self):
        pages = {1: 100, 2: 50, 3: 20}
        cost = sort_merge_page_accesses(pages, 4)
        # merge reads: 3*100 + (100+50+20); writes: 50+20+0; sort: 2*(50+20)
        assert cost.merge_scan_reads == 3 * 100 + 170
        assert cost.result_writes == 70
        assert cost.sort_accesses == 140

    def test_terminal_iteration_validated(self):
        with pytest.raises(ValueError):
            sort_merge_page_accesses({1: 10}, 1)


class TestSpeedup:
    def test_paper_scale_gap(self):
        # 40,000 s vs 1,200 s: the sort-merge strategy wins by ~34x.
        nested = nested_loop_c2_cost()
        merged = sort_merge_page_accesses(sort_merge_relation_pages(), 3)
        assert strategy_speedup(nested, merged) == pytest.approx(34, rel=0.03)
