"""Golden EXPLAIN snapshots: the planner's decision matrix, pinned.

Each scenario is a ``(query, synthesized DatasetStats, pinned
cpu_count)`` triple — plans are a pure function of those inputs, so the
rendered EXPLAIN text is committed under ``tests/query/golden/`` and
compared byte-for-byte.  A planner change that moves any engine choice,
threshold, option, or reason string shows up as a reviewable text diff.

Regenerate after an *intentional* planner change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/query/test_planner_golden.py

and commit the diff.

On top of the snapshots, :class:`TestPinnedChoices` asserts the three
load-bearing selections directly (so the intent survives even a golden
regeneration): a 64 KiB budget over a ~625 KiB dataset must select an
out-of-core engine, ``workers = 2`` must select a parallel engine, and
an existing materialized ``MiningState`` must select the incremental
engine — each with a recorded reason.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.errors import PlanError
from repro.query import DatasetStats, parse_query, plan_query, render_plan

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Pinned host CPU count: plans must not depend on the real machine.
CPUS = 4

#: ~625 KiB at the planner's 16 B/row model — comfortably above a
#: 64 KiB budget and below a 2 MiB one.
BIG = DatasetStats(
    name="sales",
    num_transactions=10_000,
    num_sales_rows=40_000,
    estimated_bytes=40_000 * 16,
)

SMALL = DatasetStats(
    name="sales",
    num_transactions=100,
    num_sales_rows=300,
    estimated_bytes=300 * 16,
)

STREAMED = DatasetStats(
    name="sales",
    num_transactions=10_000,
    num_sales_rows=40_000,
    estimated_bytes=40_000 * 16,
    streamed=True,
    generation=2,
)

WITH_STATE = DatasetStats(
    name="sales",
    num_transactions=10_000,
    num_sales_rows=40_000,
    estimated_bytes=40_000 * 16,
    state_generation=3,
)


@dataclass(frozen=True)
class Scenario:
    name: str
    query: str
    stats: DatasetStats


SCENARIOS = [
    Scenario(
        "default",
        "MINE ITEMSETS FROM sales WHERE support >= 0.05",
        SMALL,
    ),
    Scenario(
        "default_support",
        "MINE RULES FROM sales",
        SMALL,
    ),
    Scenario(
        "budget_spill",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "WITH memory_budget = '64K'",
        BIG,
    ),
    Scenario(
        "budget_fits",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "WITH memory_budget = '2M'",
        BIG,
    ),
    Scenario(
        "workers_parallel",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 WITH workers = 2",
        BIG,
    ),
    Scenario(
        "workers_serial",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 WITH workers = 1",
        BIG,
    ),
    Scenario(
        "spill_parallel",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "WITH workers = 2, memory_budget = '64K'",
        BIG,
    ),
    Scenario(
        "state_fresh",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "WITH state = 'state'",
        BIG,
    ),
    Scenario(
        "state_present",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "WITH state = 'state'",
        WITH_STATE,
    ),
    Scenario(
        "state_plus_workers_relaxed",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "WITH state = 'state', workers = 2",
        WITH_STATE,
    ),
    Scenario(
        "lhs_has_post_filter",
        "MINE RULES FROM sales WHERE support >= 0.005 "
        "AND confidence >= 0.6 AND lhs HAS 'beer' AND length <= 4",
        BIG,
    ),
    Scenario(
        "using_engine_override_warns",
        "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
        "USING ENGINE 'setm' WITH workers = 2",
        BIG,
    ),
    Scenario(
        "absolute_support_streamed_ingest",
        "MINE ITEMSETS FROM sales WHERE support >= 25 "
        "WITH chunk_rows = 5000, input_format = 'csv'",
        STREAMED,
    ),
]


def _render(scenario: Scenario) -> str:
    plan = plan_query(
        parse_query(scenario.query), scenario.stats, cpu_count=CPUS
    )
    return render_plan(plan) + "\n"


class TestGoldenPlans:
    def test_scenario_names_are_unique(self):
        names = [s.name for s in SCENARIOS]
        assert len(names) == len(set(names))

    def test_no_stale_golden_files(self):
        expected = {f"{s.name}.txt" for s in SCENARIOS}
        actual = {p.name for p in GOLDEN_DIR.glob("*.txt")}
        assert actual == expected, (
            "golden files and scenarios drifted apart; regenerate with "
            "REPRO_UPDATE_GOLDEN=1"
        )

    @pytest.mark.parametrize(
        "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
    )
    def test_plan_matches_golden(self, scenario):
        rendered = _render(scenario)
        path = GOLDEN_DIR / f"{scenario.name}.txt"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(rendered, encoding="utf-8")
            return
        assert path.exists(), (
            f"missing golden file {path.name}; generate it with "
            "REPRO_UPDATE_GOLDEN=1"
        )
        assert rendered == path.read_text(encoding="utf-8"), scenario.name


def _plan(text: str, stats: DatasetStats):
    return plan_query(parse_query(text), stats, cpu_count=CPUS)


class TestPinnedChoices:
    """The three load-bearing selections, asserted independently of the
    snapshot files (regenerating goldens cannot silently change these)."""

    def test_64k_budget_selects_a_spill_engine_with_reason(self):
        plan = _plan(
            "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
            "WITH memory_budget = '64K'",
            BIG,
        )
        assert plan.engine == "setm-columnar-disk"
        reasons = {
            (d.topic, d.choice): d.reason for d in plan.decisions()
        }
        assert ("capability", "out_of_core") in reasons
        assert "exceeds the 64 KiB memory_budget" in (
            reasons[("capability", "out_of_core")]
        )
        assert plan.config.options["memory_budget_bytes"] == 64 * 1024

    def test_workers_2_selects_a_parallel_engine_with_reason(self):
        plan = _plan(
            "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
            "WITH workers = 2",
            BIG,
        )
        assert plan.engine == "setm-parallel"
        reasons = {
            (d.topic, d.choice): d.reason for d in plan.decisions()
        }
        assert ("capability", "parallel") in reasons
        assert "workers = 2 requested" in reasons[("capability", "parallel")]
        assert plan.config.options["workers"] == 2

    def test_existing_state_selects_the_incremental_engine_with_reason(self):
        plan = _plan(
            "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
            "WITH state = 'state'",
            WITH_STATE,
        )
        assert plan.engine == "setm-incremental"
        reasons = {
            (d.topic, d.choice): d.reason for d in plan.decisions()
        }
        assert ("capability", "incremental") in reasons
        assert "generation 3" in reasons[("capability", "incremental")]
        assert plan.config.state_dir == "state"

    def test_both_budget_and_workers_selects_spill_parallel(self):
        plan = _plan(
            "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
            "WITH workers = 2, memory_budget = '64K'",
            BIG,
        )
        assert plan.engine == "setm-spill-parallel"

    def test_unsatisfiable_combination_relaxes_lowest_priority_first(self):
        plan = _plan(
            "MINE ITEMSETS FROM sales WHERE support >= 0.01 "
            "WITH state = 'state', workers = 2",
            WITH_STATE,
        )
        # No registered engine is incremental + parallel: the planner
        # must keep incremental and drop parallel, saying so.
        assert plan.engine == "setm-incremental"
        relaxed = [
            d for d in plan.decisions() if d.choice == "relaxed parallel"
        ]
        assert relaxed and "lowest-priority" in relaxed[0].reason

    def test_unknown_using_engine_is_a_plan_error(self):
        with pytest.raises(PlanError, match="unknown engine"):
            _plan(
                "MINE ITEMSETS FROM sales USING ENGINE 'warp-drive'", SMALL
            )
