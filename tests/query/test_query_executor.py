"""Executor plumbing: source resolution, post-filters, session reuse."""

from __future__ import annotations

import json

import pytest

from repro.data.example import paper_example_database
from repro.errors import PlanError
from repro.miner import Miner
from repro.query import (
    explain_query,
    parse_query,
    resolve_database,
    run_query,
)


@pytest.fixture(scope="module")
def example_db():
    return paper_example_database()


class TestResolveDatabase:
    def test_path_without_loader_is_a_plan_error(self):
        query = parse_query("MINE RULES FROM '/tmp/x.basket'")
        with pytest.raises(PlanError, match="hosted datasets"):
            resolve_database(query, {})

    def test_unknown_name_lists_the_available_datasets(self, example_db):
        query = parse_query("MINE RULES FROM nope")
        with pytest.raises(PlanError, match="available datasets: a, b"):
            resolve_database(query, {"a": example_db, "b": example_db})

    def test_bare_database_source_is_used_directly(self, example_db):
        query = parse_query("MINE RULES FROM anything")
        assert resolve_database(query, example_db) is example_db

    def test_loader_receives_the_quoted_path(self, example_db):
        query = parse_query("MINE RULES FROM 'x.basket'")
        seen = []

        def loader(path):
            seen.append(path)
            return example_db

        assert resolve_database(query, {}, loader=loader) is example_db
        assert seen == ["x.basket"]


class TestRunQuery:
    def test_session_reuse_hits_the_result_cache(self, example_db):
        miner = Miner(example_db)
        text = "MINE ITEMSETS FROM ex WHERE support >= 0.3"
        run_query(text, {"ex": example_db}, miner=miner)
        before = miner.cache_info()["hits"]
        run_query(text, {"ex": example_db}, miner=miner)
        assert miner.cache_info()["hits"] == before + 1

    def test_itemsets_query_has_no_rules(self, example_db):
        document = run_query(
            "MINE ITEMSETS FROM ex WHERE support >= 0.3",
            {"ex": example_db},
        )
        assert document["rules"] is None
        assert document["result"]["num_patterns"] == 13

    def test_rhs_has_filters_consequents_only(self, example_db):
        document = run_query(
            "MINE RULES FROM ex WHERE support >= 0.3 "
            "AND confidence >= 0.5 AND rhs HAS 'D'",
            {"ex": example_db},
        )
        assert document["rules"]
        for rule in document["rules"]:
            assert "D" in rule["consequent"]

    def test_items_has_matches_stringified_labels(self):
        """Queries quote items as strings; int-labelled datasets must
        still match (label 3 vs item '3')."""
        from repro.core.transactions import TransactionDatabase

        db = TransactionDatabase(
            [(1, (1, 2, 3)), (2, (2, 3)), (3, (3,)), (4, (1, 2))]
        )
        document = run_query(
            "MINE ITEMSETS FROM d WHERE support >= 0.5 AND items HAS '3'",
            {"d": db},
        )
        assert document["result"]["patterns"]
        for entry in document["result"]["patterns"]:
            assert 3 in entry["items"]

    def test_canonical_query_is_echoed(self, example_db):
        document = run_query(
            "mine itemsets from ex where support >= 0.3",
            {"ex": example_db},
        )
        assert (
            document["query"] == "MINE ITEMSETS FROM ex WHERE support >= 0.3"
        )

    def test_length_cap_is_pushed_down(self, example_db):
        document = run_query(
            "MINE ITEMSETS FROM ex WHERE support >= 0.3 AND length <= 2",
            {"ex": example_db},
        )
        assert document["result"]["max_pattern_length"] == 2
        assert all(
            len(entry["items"]) <= 2
            for entry in document["result"]["patterns"]
        )


class TestExplain:
    def test_explain_is_deterministic_text(self, example_db):
        text = "MINE ITEMSETS FROM ex WHERE support >= 0.3"
        first = explain_query(text, {"ex": example_db}, cpu_count=2)
        second = explain_query(text, {"ex": example_db}, cpu_count=2)
        assert first == second
        assert first.splitlines()[0] == text

    def test_document_is_json_serializable(self, example_db):
        document = run_query(
            "MINE RULES FROM ex WHERE support >= 0.3 AND confidence >= 0.5",
            {"ex": example_db},
        )
        json.dumps(document)
