"""Grammar-fuzz tier for the ``MINE`` parser.

Two properties lock the front-end down:

* **Round-trip** — for any well-formed :class:`MineQuery` AST, rendering
  it to canonical text and re-parsing yields an *identical* AST.  The
  ASTs are generated structurally (every target, threshold combination,
  HAS side, engine override, and WITH option the grammar admits), so the
  renderer and parser cannot drift apart.
* **Typed errors only** — for arbitrary garbage (random text, token
  soup, mutated valid queries), ``parse_query`` either returns a
  ``MineQuery`` or raises :class:`~repro.errors.QueryParseError`
  carrying the offending position; no other exception type ever
  escapes, and the position always lands inside the input.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import INPUT_FORMATS
from repro.errors import QueryParseError, ReproError
from repro.query import HasConstraint, MineQuery, WithOption, parse_query
from repro.query.lexer import KEYWORDS
from repro.query.parser import WITH_OPTIONS

# -- AST generators ----------------------------------------------------------------

_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

identifiers = st.builds(
    lambda a, b: a + b,
    st.sampled_from(_LETTERS + "_"),
    st.text(alphabet=_LETTERS + "0123456789_-.", max_size=12),
).filter(lambda s: s.upper() not in KEYWORDS)

#: Quoted-literal bodies: arbitrary unicode — quotes escape as ``''``.
strings = st.text(min_size=1, max_size=20)

supports = st.one_of(
    st.integers(min_value=1, max_value=10**6),
    st.floats(
        min_value=0.0,
        max_value=1.0,
        exclude_min=True,
        allow_nan=False,
        allow_infinity=False,
    ),
)

confidences = st.floats(
    min_value=0.0,
    max_value=1.0,
    exclude_min=True,
    allow_nan=False,
    allow_infinity=False,
)


def _with_value(name: str) -> st.SearchStrategy:
    if name in ("workers", "chunk_rows"):
        return st.integers(min_value=1, max_value=64)
    if name == "memory_budget":
        return st.one_of(
            st.integers(min_value=1, max_value=2**32),
            st.builds(
                lambda n, unit: f"{n}{unit}",
                st.integers(min_value=1, max_value=4096),
                st.sampled_from(["", "K", "M", "G", "k", "m", "g"]),
            ),
        )
    if name == "transport":
        return st.sampled_from(["auto", "pickle", "shm", "mmap"])
    if name == "input_format":
        return st.sampled_from(list(INPUT_FORMATS))
    assert name == "state"
    return strings


@st.composite
def queries(draw) -> MineQuery:
    """A structurally valid :class:`MineQuery` covering the full grammar."""
    target = draw(st.sampled_from(["rules", "itemsets"]))
    is_path = draw(st.booleans())
    dataset = draw(strings if is_path else identifiers)
    support = draw(st.none() | supports)
    confidence = draw(st.none() | confidences) if target == "rules" else None
    length = draw(st.none() | st.integers(min_value=1, max_value=12))
    sides = ("lhs", "rhs", "items") if target == "rules" else ("items",)
    has = tuple(
        HasConstraint(draw(st.sampled_from(sides)), draw(strings))
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    )
    engine = draw(st.none() | strings)
    names = draw(
        st.lists(
            st.sampled_from(sorted(WITH_OPTIONS)),
            unique=True,
            max_size=len(WITH_OPTIONS),
        )
    )
    with_options = tuple(
        WithOption(name, draw(_with_value(name))) for name in names
    )
    return MineQuery(
        target=target,
        dataset=dataset,
        dataset_is_path=is_path,
        support=support,
        confidence=confidence,
        length=length,
        has=has,
        engine=engine,
        with_options=with_options,
    )


class TestRoundTrip:
    """render → parse is the identity on well-formed ASTs."""

    @settings(max_examples=250, deadline=None)
    @given(query=queries())
    def test_render_reparse_identical(self, query):
        assert parse_query(query.render()) == query

    @settings(max_examples=100, deadline=None)
    @given(query=queries())
    def test_rendering_is_canonical(self, query):
        """The canonical text is a fixed point: re-rendering the
        re-parsed AST reproduces it byte-for-byte."""
        rendered = query.render()
        assert parse_query(rendered).render() == rendered


# -- fuzzers: typed errors only ----------------------------------------------------

#: Valid lexemes, recombined at random — stresses the *parser* past the
#: lexer (every soup tokenizes; few soups parse).
_LEXEMES = (
    list(KEYWORDS)
    + ["support", "confidence", "length", "lhs", "rhs", "items", "workers"]
    + [">=", "<=", ">", "<", "=", ","]
    + ["0.5", "3", "1e-3", "'beer'", "''", "'it''s'", "sales", "x_1"]
)


def _assert_parses_or_fails_typed(text: str) -> None:
    try:
        query = parse_query(text)
    except QueryParseError as error:
        assert isinstance(error, ReproError)
        assert error.position is not None
        assert 0 <= error.position <= len(text)
        assert error.line is not None and error.line >= 1
        assert error.column is not None and error.column >= 1
    else:  # pragma: no cover - rare for random inputs
        assert isinstance(query, MineQuery)


class TestFuzz:
    @settings(max_examples=300, deadline=None)
    @given(text=st.text(max_size=80))
    def test_random_text_never_raises_untyped(self, text):
        _assert_parses_or_fails_typed(text)

    @settings(max_examples=300, deadline=None)
    @given(
        soup=st.lists(st.sampled_from(_LEXEMES), min_size=1, max_size=12)
    )
    def test_token_soup_never_raises_untyped(self, soup):
        _assert_parses_or_fails_typed(" ".join(soup))

    @settings(max_examples=200, deadline=None)
    @given(
        query=queries(),
        junk=st.text(min_size=1, max_size=6),
        cut=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_mutated_valid_queries_never_raise_untyped(
        self, query, junk, cut
    ):
        rendered = query.render()
        at = int(cut * len(rendered))
        _assert_parses_or_fails_typed(rendered[:at] + junk + rendered[at:])

    def test_non_string_input_fails_typed(self):
        with pytest.raises(QueryParseError):
            parse_query(None)
        with pytest.raises(QueryParseError):
            parse_query(42)


class TestSemantics:
    """Deterministic spot checks of rules the grammar cannot express."""

    def test_error_position_points_at_the_offending_token(self):
        text = "MINE RULES FROM sales WHERE support >= 0.5 AND support >= 0.6"
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert "duplicate support" in str(error)
        assert text[error.position :].startswith("support >= 0.6")
        assert error.line == 1
        assert error.column == error.position + 1

    @pytest.mark.parametrize(
        "text, needle",
        [
            ("MINE RULES FROM", "dataset name or quoted path"),
            ("MINE RULES FROM sales WHERE support > 0.5", "support takes only '>='"),
            ("MINE RULES FROM sales WHERE support >= 1.5", "in (0, 1]"),
            ("MINE RULES FROM sales WHERE support >= 0", "absolute support"),
            ("MINE ITEMSETS FROM s WHERE confidence >= 0.5", "only to MINE RULES"),
            ("MINE ITEMSETS FROM s WHERE lhs HAS 'a'", "only to MINE RULES"),
            ("MINE RULES FROM s WHERE length <= 0", "integer >= 1"),
            ("MINE RULES FROM s WHERE lhs HAS ''", "must not be empty"),
            ("MINE RULES FROM s USING ENGINE setm", "quoted engine name"),
            ("MINE RULES FROM s WITH bogus = 1", "unknown WITH option"),
            ("MINE RULES FROM s WITH workers = 0", "integer >= 1"),
            ("MINE RULES FROM s WITH workers = 2, workers = 3", "duplicate WITH"),
            ("MINE RULES FROM s WITH memory_budget = '64X'", "byte count"),
            ("MINE RULES FROM s trailing", "expected end of query"),
            ("MINE RULES FROM s WHERE support >= 'a'", "a number for support"),
        ],
    )
    def test_typed_message(self, text, needle):
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(text)
        assert needle in str(excinfo.value)

    def test_keywords_are_case_insensitive_and_normalize(self):
        a = parse_query("mine rules from sales where support >= 0.5")
        b = parse_query("MINE RULES FROM sales WHERE support >= 0.5")
        assert a == b
        assert a.render() == "MINE RULES FROM sales WHERE support >= 0.5"

    def test_quoted_items_escape_round_trip(self):
        query = parse_query("MINE ITEMSETS FROM s WHERE items HAS 'it''s'")
        assert query.has == (HasConstraint("items", "it's"),)
        assert parse_query(query.render()) == query
