"""Cross-engine agreement: every implementation finds the same patterns.

This is the load-bearing guarantee of the reproduction: the in-memory
SETM, the disk SETM, the SQL SETM on two engines, the nested-loop
formulation in three forms, and the AIS/Apriori baselines are all the
*same function* computed eight ways.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ALGORITHMS, mine_frequent_itemsets
from repro.baselines.bruteforce import bruteforce
from repro.core.setm import setm
from repro.core.setm_sql import setm_sql
from repro.core.transactions import TransactionDatabase
from repro.data.quest import QuestConfig, generate_quest_dataset
from repro.sqlbridge.sqlite_miner import sqlite_mine

databases = st.lists(
    st.frozensets(st.integers(min_value=1, max_value=10), min_size=1, max_size=5),
    min_size=1,
    max_size=15,
).map(
    lambda baskets: TransactionDatabase(
        (tid, tuple(basket)) for tid, basket in enumerate(baskets, start=1)
    )
)

ALL_ENGINES = sorted(set(ALGORITHMS) - {"bruteforce"})


class TestAllEnginesOnExample:
    @pytest.mark.parametrize("algorithm", ALL_ENGINES)
    def test_engine_matches_oracle(self, algorithm, example_db):
        result = mine_frequent_itemsets(
            example_db, 0.30, algorithm=algorithm
        )
        assert result.same_patterns_as(bruteforce(example_db, 0.30))


class TestAllEnginesOnRetail:
    @pytest.mark.parametrize(
        "algorithm",
        [
            "setm",
            "setm-columnar",
            "setm-columnar-disk",
            "setm-disk",
            "setm-sqlite",
            "nested-loop",
            "apriori",
            "ais",
        ],
    )
    def test_engine_matches_setm(self, algorithm, small_retail_db):
        reference = setm(small_retail_db, 0.02)
        result = mine_frequent_itemsets(
            small_retail_db, 0.02, algorithm=algorithm
        )
        assert result.same_patterns_as(reference)


class TestQuestWorkload:
    def test_sql_engines_agree_on_quest_data(self):
        db = generate_quest_dataset(
            QuestConfig(num_transactions=400, avg_transaction_len=6)
        )
        reference = setm(db, 0.02)
        assert sqlite_mine(db, 0.02).same_patterns_as(reference)
        assert setm_sql(db, 0.02).same_patterns_as(reference)


class TestPropertyAgreement:
    @settings(max_examples=15, deadline=None)
    @given(db=databases, minsup=st.sampled_from([0.2, 0.5]))
    def test_sqlite_agrees_with_setm(self, db, minsup):
        assert sqlite_mine(db, minsup).same_patterns_as(setm(db, minsup))

    @settings(max_examples=10, deadline=None)
    @given(db=databases)
    def test_sql_nested_loop_agrees(self, db):
        result = setm_sql(db, 0.3, strategy="nested-loop")
        assert result.same_patterns_as(setm(db, 0.3))


class TestApiDispatch:
    def test_unknown_algorithm_lists_choices(self, example_db):
        with pytest.raises(ValueError, match="apriori"):
            mine_frequent_itemsets(example_db, 0.3, algorithm="magic")

    def test_options_forwarded(self, example_db):
        result = mine_frequent_itemsets(
            example_db, 0.3, algorithm="setm", max_length=2
        )
        assert result.max_pattern_length == 2

    def test_mine_association_rules_end_to_end(self, example_db):
        from repro.api import mine_association_rules

        result, rules = mine_association_rules(
            example_db, 0.30, 0.70, algorithm="setm-sqlite"
        )
        assert len(rules) == 11  # 8 from C_2 + 3 from C_3 (Section 5)
