"""Disk SETM's measured I/O must track the Section 4.3 cost model.

The paper's formula idealizes two things our implementation really pays
for: the external sort's run generation (the model charges one
read+write pass per sort, assuming "pipelining mode") and the
counting/filter scans (folded into the sort in the model's plan).  The
measured page-access count must therefore land in a small constant
envelope of the bound evaluated on the run's own relation sizes —
within it, the model and the engine describe the same linear-in-‖R‖
behaviour.  EXPERIMENTS.md records the measured ratio.
"""

from __future__ import annotations

import pytest

from repro.analysis.cost_model import sort_merge_page_accesses
from repro.core.setm_disk import setm_disk
from repro.data.hypothetical import (
    HypotheticalConfig,
    generate_hypothetical_database,
)
from repro.data.retail import generate_retail_dataset
from repro.storage.page import PageFormat


def bound_from_run(result) -> int:
    """Evaluate the Section 4.3 formula on the run's own ‖R'_k‖ pages.

    The formula's worst case assumes R_k = R'_k, so we feed it the
    pre-filter page counts, which dominate the filtered ones.
    """
    r_prime_pages = dict(result.extra["r_prime_page_counts"])
    pages = {1: result.extra["page_counts"][1], **r_prime_pages}
    terminal = max(stats.k for stats in result.iterations)
    if terminal < 2:
        return 0
    return sort_merge_page_accesses(
        pages, terminal, include_terminal_sort=True
    ).page_accesses


class TestScaledHypothetical:
    @pytest.fixture(scope="class")
    def run(self):
        config = HypotheticalConfig(
            num_items=60, num_transactions=800, items_per_transaction=6
        )
        db = generate_hypothetical_database(config)
        return setm_disk(db, 0.02, buffer_pages=8, sort_memory_pages=8)

    def test_measured_io_within_model_envelope(self, run):
        measured = run.extra["io"].total_accesses
        bound = bound_from_run(run)
        assert bound / 3 <= measured <= 3 * bound

    def test_sequential_dominates_random(self, run):
        """SETM's promise: page access is overwhelmingly sequential."""
        io = run.extra["io"]
        assert io.sequential_reads + io.sequential_writes > (
            io.random_reads + io.random_writes
        )


class TestScaledRetail:
    def test_measured_io_within_model_envelope(self):
        db = generate_retail_dataset(scale=0.02)
        run = setm_disk(db, 0.01, buffer_pages=8, sort_memory_pages=8)
        measured = run.extra["io"].total_accesses
        bound = bound_from_run(run)
        assert bound / 3 <= measured <= 3 * bound


class TestPageAccounting:
    def test_r_prime_pages_match_candidate_instances(self):
        db = generate_retail_dataset(scale=0.02)
        run = setm_disk(db, 0.01)
        for stats in run.iterations:
            if stats.k < 2:
                continue
            expected = PageFormat(stats.k + 1).pages_needed(
                stats.candidate_instances
            )
            assert run.extra["r_prime_page_counts"][stats.k] == expected
